// Ablation: DQL bootstrap discount γ.
//
// The paper's Eq. 4 omits a discount factor; our implementation exposes
// it (DESIGN.md §5).  This sweep trains DRAS-DQL at several γ values and
// reports scheduling quality, quantifying how sensitive the published
// algorithm is to this unstated hyper-parameter.
#include <iostream>

#include "bench_common.h"
#include "exec/parallel_runner.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(15);
  const auto test_trace = scenario.trace(1000, 151515);
  const auto reward = scenario.reward();

  benchx::print_preamble("Ablation: DQL discount factor (DRAS-DQL)",
                         scenario, 1000);

  // Each task trains and evaluates one gamma; tasks share nothing, so
  // results are identical under any --jobs N.
  const std::vector<double> gammas = {0.0, 0.9, 0.99, 1.0};
  dras::exec::ParallelRunner runner(obs_session.jobs());
  const auto evaluations = runner.map(
      gammas.size(),
      [&](std::size_t i) {
        auto cfg = scenario.preset.agent_config(
            dras::core::AgentKind::DQL, dras::util::derive_seed(9, "gamma"));
        cfg.gamma = gammas[i];
        dras::core::DrasAgent agent(cfg);
        benchx::train_dras_agent(agent, scenario, 24, 500);
        return dras::train::evaluate(scenario.preset.nodes, test_trace,
                                     agent, &reward);
      },
      "gamma");

  std::cout << "csv:gamma,avg_wait_s,max_wait_s,utilization\n";
  std::vector<std::vector<std::string>> table;
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    const auto& evaluation = evaluations[i];
    table.push_back(
        {format("gamma={:.2f}", gammas[i]),
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         format("{:.3f}", evaluation.summary.utilization)});
    std::cout << format("csv:{:.2f},{:.1f},{:.1f},{:.4f}\n", gammas[i],
                        evaluation.summary.avg_wait,
                        evaluation.summary.max_wait,
                        evaluation.summary.utilization);
  }
  dras::metrics::print_table(
      std::cout, {"gamma", "avg wait", "max wait", "utilization"}, table);
  return 0;
}
