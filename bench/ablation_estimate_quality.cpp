// Extension ablation: user runtime-estimate quality vs backfilling.
//
// EASY-style scheduling plans everything — reservations, backfill
// legality, kill bounds — on user-supplied estimates, and real users are
// systematically imprecise (the DRAS authors' CLUSTER'17 companion work
// studies exactly this).  This sweep rewrites one workload's estimates
// under four behaviour models (oracle, uniform pessimism, round-number
// requests, always-request-the-maximum) and measures FCFS/EASY and a
// trained DRAS-PG on each.
//
// Expected shape: pessimistic estimates shrink visible backfill holes, so
// backfilled-job counts and wait times degrade from Exact → MaxedOut.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"
#include "workload/estimates.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;
  using dras::workload::EstimateModel;

  const auto scenario = benchx::Scenario::theta_mini(18);
  constexpr std::size_t kTestJobs = 1200;
  const auto base_trace = scenario.trace(kTestJobs, 181818);

  benchx::print_preamble("Ablation: runtime-estimate quality", scenario,
                         kTestJobs);

  // DRAS-DQL: the agent the paper finds strongest on system-level
  // metrics, and the more seed-stable of the two at mini scale.
  dras::core::DrasAgent dras(scenario.preset.agent_config(
      dras::core::AgentKind::DQL, dras::util::derive_seed(13, "estimates")));
  benchx::train_dras_agent(dras, scenario, 24, 500);

  std::cout << "csv:model,mean_overestimate,method,avg_wait_s,max_wait_s,"
               "backfilled_jobs,utilization\n";
  std::vector<std::vector<std::string>> table;
  for (const EstimateModel model :
       {EstimateModel::Exact, EstimateModel::Factor, EstimateModel::Rounded,
        EstimateModel::MaxedOut}) {
    dras::workload::EstimateOptions options;
    options.model = model;
    options.max_factor = 3.0;
    options.walltime_limit = scenario.preset.max_walltime;
    options.seed = 21;
    const auto trace = dras::workload::apply_estimates(base_trace, options);
    const double pessimism = dras::workload::mean_overestimate(trace);

    dras::sched::FcfsEasy fcfs;
    const std::vector<dras::sim::Scheduler*> roster = {&fcfs, &dras};
    const auto evaluations = benchx::evaluate_roster(
        roster, scenario.preset.nodes, trace, nullptr, obs_session.jobs());
    for (const auto& evaluation : evaluations) {
      std::size_t backfilled = 0;
      for (const auto& rec : evaluation.result.jobs)
        if (rec.mode == dras::sim::ExecMode::Backfilled) ++backfilled;
      table.push_back(
          {std::string(to_string(model)), format("{:.2f}x", pessimism),
           evaluation.method,
           dras::metrics::format_duration(evaluation.summary.avg_wait),
           dras::metrics::format_duration(evaluation.summary.max_wait),
           format("{}", backfilled),
           format("{:.3f}", evaluation.summary.utilization)});
      std::cout << format("csv:{},{:.3f},{},{:.1f},{:.1f},{},{:.4f}\n",
                          to_string(model), pessimism, evaluation.method,
                          evaluation.summary.avg_wait,
                          evaluation.summary.max_wait, backfilled,
                          evaluation.summary.utilization);
    }
  }
  dras::metrics::print_table(std::cout,
                             {"estimates", "pessimism", "method", "avg wait",
                              "max wait", "backfilled", "utilization"},
                             table);
  return 0;
}
