// Extension: the classic priority heuristics vs DRAS.
//
// RLScheduler (SC'20, the paper's §II-A related work) benchmarks RL
// schedulers against hand-tuned priority functions — SJF, WFP3, F1 —
// rather than only FCFS.  This bench runs that wider roster (all with
// EASY backfilling) plus a trained DRAS-PG/DQL pair on the capability
// scenario, giving context for how much of DRAS's margin comes from
// learning versus from a good hand-tuned priority.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "sched/priority_sched.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(16);
  constexpr std::size_t kTestJobs = 1200;
  const auto test_trace = scenario.trace(kTestJobs, 161616);
  const auto reward = scenario.reward();

  benchx::print_preamble("Extension: priority-heuristic roster vs DRAS",
                         scenario, kTestJobs);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);

  auto sjf = dras::sched::make_sjf();
  auto ljf = dras::sched::make_ljf();
  auto wfp3 = dras::sched::make_wfp3();
  auto f1 = dras::sched::make_f1();
  std::vector<dras::sim::Scheduler*> roster = {
      &methods.fcfs(), &sjf, &ljf, &wfp3, &f1, &methods.dras_pg(),
      &methods.dras_dql()};

  const auto evaluations = benchx::evaluate_roster(
      roster, scenario.preset.nodes, test_trace, &reward,
      obs_session.jobs());

  std::cout << "csv:method,avg_wait_s,max_wait_s,avg_slowdown,"
               "utilization\n";
  std::vector<std::vector<std::string>> table;
  for (const auto& evaluation : evaluations) {
    table.push_back(
        {evaluation.method,
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         format("{:.2f}", evaluation.summary.avg_slowdown),
         format("{:.3f}", evaluation.summary.utilization)});
    std::cout << format("csv:{},{:.1f},{:.1f},{:.3f},{:.4f}\n",
                        evaluation.method, evaluation.summary.avg_wait,
                        evaluation.summary.max_wait,
                        evaluation.summary.avg_slowdown,
                        evaluation.summary.utilization);
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "avg wait", "max wait", "slowdown", "utilization"}, table);
  return 0;
}
