// Extension ablation: reservation depth (EASY → conservative spectrum).
//
// Depth 1 is the paper's single-reservation EASY behaviour; deeper
// ledgers give every blocked job a planned start (conservative
// backfilling).  Deeper reservations tighten the starvation bound at the
// cost of backfill opportunity — the classic EASY-vs-conservative
// trade-off, measured here for FCFS and for a trained DRAS-PG.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(17);
  constexpr std::size_t kTestJobs = 1200;
  const auto test_trace = scenario.trace(kTestJobs, 171717);
  const auto reward = scenario.reward();

  benchx::print_preamble("Ablation: reservation depth (EASY vs conservative)",
                         scenario, kTestJobs);

  // One trained DRAS-PG shared across depths (the policy is depth-agnostic;
  // only the environment's ledger changes).
  dras::core::DrasAgent dras(scenario.preset.agent_config(
      dras::core::AgentKind::PG, dras::util::derive_seed(11, "depth")));
  benchx::train_dras_agent(dras, scenario, 24, 500);

  std::cout << "csv:method,depth,avg_wait_s,max_wait_s,backfilled_jobs,"
               "utilization\n";
  std::vector<std::vector<std::string>> table;
  for (const int depth : {1, 2, 4, 8}) {
    for (const bool use_dras : {false, true}) {
      dras::sched::FcfsEasy fcfs;
      dras::sim::Scheduler* method =
          use_dras ? static_cast<dras::sim::Scheduler*>(&dras) : &fcfs;
      dras::sim::Simulator sim(scenario.preset.nodes, depth);
      double total_reward = 0.0;
      sim.set_action_observer(
          [&](const dras::sim::SchedulingContext& ctx,
              const dras::sim::Job& job) {
            total_reward += reward.step_reward(ctx, job);
          });
      const auto result = sim.run(test_trace, *method);
      const auto summary = dras::metrics::summarize(result);
      std::size_t backfilled = 0;
      for (const auto& rec : result.jobs)
        if (rec.mode == dras::sim::ExecMode::Backfilled) ++backfilled;
      table.push_back(
          {std::string(method->name()), format("{}", depth),
           dras::metrics::format_duration(summary.avg_wait),
           dras::metrics::format_duration(summary.max_wait),
           format("{}", backfilled),
           format("{:.3f}", summary.utilization)});
      std::cout << format("csv:{},{},{:.1f},{:.1f},{},{:.4f}\n",
                          method->name(), depth, summary.avg_wait,
                          summary.max_wait, backfilled, summary.utilization);
    }
  }
  dras::metrics::print_table(std::cout,
                             {"method", "depth", "avg wait", "max wait",
                              "backfilled jobs", "utilization"},
                             table);
  return 0;
}
