// Ablation: the capability-reward weights (Eq. 1).
//
// §III-A: "The weights can be tuned by system administrators based on the
// site priority.  For example, the higher w1 value could meet a more
// stringent requirement on job starvation."  This sweep trains DRAS-PG
// under different (w1, w2, w3) mixes and reports maximum wait (the
// starvation metric w1 targets) plus average wait and utilisation.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(13);
  const auto test_trace = scenario.trace(1000, 131313);

  benchx::print_preamble("Ablation: Eq. 1 reward weights (DRAS-PG)",
                         scenario, 1000);

  struct Mix {
    std::string label;
    dras::core::RewardWeights weights;
  };
  const std::vector<Mix> mixes = {
      {"w=(1/3,1/3,1/3) paper", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"w=(0.8,0.1,0.1) anti-starvation", {0.8, 0.1, 0.1}},
      {"w=(0.1,0.8,0.1) capability-first", {0.1, 0.8, 0.1}},
      {"w=(0.1,0.1,0.8) utilisation-first", {0.1, 0.1, 0.8}},
  };

  std::cout << "csv:weights,avg_wait_s,max_wait_s,large_avg_wait_s,"
               "utilization\n";
  std::vector<std::vector<std::string>> table;
  for (const Mix& mix : mixes) {
    auto cfg = scenario.preset.agent_config(
        dras::core::AgentKind::PG, dras::util::derive_seed(5, mix.label));
    cfg.reward_weights = mix.weights;
    dras::core::DrasAgent agent(cfg);
    benchx::train_dras_agent(agent, scenario, 24, 500);

    const dras::core::RewardFunction reward(dras::core::RewardKind::Capability,
                                            mix.weights);
    const auto evaluation = dras::train::evaluate(scenario.preset.nodes,
                                                  test_trace, agent, &reward);
    const int edges[] = {128};
    const auto by_size =
        dras::metrics::by_size_bucket(evaluation.result.jobs, edges);
    table.push_back(
        {mix.label,
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         dras::metrics::format_duration(by_size[1].avg_wait),
         format("{:.3f}", evaluation.summary.utilization)});
    std::cout << format("csv:{},{:.1f},{:.1f},{:.1f},{:.4f}\n", mix.label,
                        evaluation.summary.avg_wait,
                        evaluation.summary.max_wait, by_size[1].avg_wait,
                        evaluation.summary.utilization);
  }
  dras::metrics::print_table(std::cout,
                             {"weights", "avg wait", "max wait",
                              "large-job avg wait", "utilization"},
                             table);
  return 0;
}
