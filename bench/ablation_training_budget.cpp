// Ablation: training budget vs scheduling quality.
//
// DESIGN.md notes (and our Fig. 7 debugging showed) that the DRAS-PG
// starvation tail shrinks as training grows: an under-trained stochastic
// policy occasionally fails to re-select a reserved whole-machine job.
// This sweep trains DRAS-PG with increasing episode budgets and reports
// average and maximum wait on a fixed test trace.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(12);
  const auto test_trace = scenario.trace(1000, 121212);
  const auto reward = scenario.reward();

  benchx::print_preamble("Ablation: training budget (DRAS-PG)", scenario,
                         1000);

  // FCFS reference.
  dras::sched::FcfsEasy fcfs;
  const auto fcfs_eval = dras::train::evaluate(scenario.preset.nodes,
                                               test_trace, fcfs, &reward);

  std::cout << "csv:episodes,avg_wait_s,max_wait_s,utilization\n";
  std::cout << format("csv:FCFS,{:.1f},{:.1f},{:.4f}\n",
                      fcfs_eval.summary.avg_wait, fcfs_eval.summary.max_wait,
                      fcfs_eval.summary.utilization);

  std::vector<std::vector<std::string>> table;
  table.push_back({"FCFS (ref)",
                   dras::metrics::format_duration(fcfs_eval.summary.avg_wait),
                   dras::metrics::format_duration(fcfs_eval.summary.max_wait),
                   format("{:.3f}", fcfs_eval.summary.utilization)});
  for (const std::size_t episodes : {2u, 6u, 14u, 30u}) {
    dras::core::DrasAgent agent(scenario.preset.agent_config(
        dras::core::AgentKind::PG, dras::util::derive_seed(3, "budget")));
    benchx::train_dras_agent(agent, scenario, episodes, 500);
    const auto evaluation = dras::train::evaluate(scenario.preset.nodes,
                                                  test_trace, agent, &reward);
    table.push_back(
        {format("DRAS-PG @{} episodes", episodes),
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         format("{:.3f}", evaluation.summary.utilization)});
    std::cout << format("csv:{},{:.1f},{:.1f},{:.4f}\n", episodes,
                        evaluation.summary.avg_wait,
                        evaluation.summary.max_wait,
                        evaluation.summary.utilization);
  }
  dras::metrics::print_table(
      std::cout, {"config", "avg wait", "max wait", "utilization"}, table);
  return 0;
}
