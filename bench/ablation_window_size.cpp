// Ablation: window size W (§III-B).
//
// The window is DRAS's starvation valve — only the W oldest jobs are
// eligible for selection.  A tiny window collapses DRAS toward FCFS; a
// huge window grows the action space and slows learning.  This sweep
// trains DRAS-PG at several window sizes and reports the §IV-E metrics.
#include <iostream>

#include "bench_common.h"
#include "exec/parallel_runner.h"
#include "metrics/report.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(14);
  const auto test_trace = scenario.trace(1000, 141414);
  const auto reward = scenario.reward();

  benchx::print_preamble("Ablation: window size W (DRAS-PG)", scenario,
                         1000);

  // Each task trains and evaluates one window size; tasks share nothing,
  // so results are identical under any --jobs N.
  const std::vector<std::size_t> windows = {2, 5, 10, 20};
  dras::exec::ParallelRunner runner(obs_session.jobs());
  const auto evaluations = runner.map(
      windows.size(),
      [&](std::size_t i) {
        auto cfg = scenario.preset.agent_config(
            dras::core::AgentKind::PG, dras::util::derive_seed(7, "window"));
        cfg.window = windows[i];
        dras::core::DrasAgent agent(cfg);
        benchx::train_dras_agent(agent, scenario, 24, 500);
        return dras::train::evaluate(scenario.preset.nodes, test_trace,
                                     agent, &reward);
      },
      "window");

  std::cout << "csv:window,avg_wait_s,max_wait_s,utilization\n";
  std::vector<std::vector<std::string>> table;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto& evaluation = evaluations[i];
    table.push_back(
        {format("W={}", windows[i]),
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         format("{:.3f}", evaluation.summary.utilization)});
    std::cout << format("csv:{},{:.1f},{:.1f},{:.4f}\n", windows[i],
                        evaluation.summary.avg_wait,
                        evaluation.summary.max_wait,
                        evaluation.summary.utilization);
  }
  dras::metrics::print_table(
      std::cout, {"window", "avg wait", "max wait", "utilization"}, table);
  return 0;
}
