#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ckpt/manager.h"
#include "exec/parallel_evaluator.h"
#include "exec/parallel_runner.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "util/args.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dras::benchx {

namespace {

/// Fingerprint the bench invocation: every flag except --run-dir (the
/// output location) and the parallelism knobs, whose values do not
/// change results (see the exec/rollout determinism contracts).
std::string bench_fingerprint(int argc, const char* const* argv) {
  std::string canonical;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--run-dir" || arg == "--jobs" ||
        arg == "--rollout-workers") {
      ++i;  // skip the flag's value too
      continue;
    }
    canonical += arg;
    canonical += ';';
  }
  char fingerprint[16];
  std::snprintf(fingerprint, sizeof(fingerprint), "%08x",
                util::crc32(canonical));
  return fingerprint;
}

}  // namespace

ObsSession::ObsSession(int argc, const char* const* argv) {
  const util::Args args(argc, argv, {"profile", "warm-start-relaxed"});
  profile_ = args.flag("profile");
  metrics_out_ = args.get("metrics-out", "");
  if (args.has("trace-out")) {
    const auto format = args.get("trace-format", "chrome") == "jsonl"
                            ? obs::TraceFormat::Jsonl
                            : obs::TraceFormat::ChromeJson;
    tracer_ = std::make_unique<obs::EventTracer>(
        obs::make_sink(args.get("trace-out", ""), /*atomic=*/true), format);
    obs::set_default_tracer(tracer_.get());
  }
  if (args.has("run-dir")) {
    obs::RunInfo info;
    info.tool = argc > 0 ? std::filesystem::path(argv[0]).filename().string()
                         : "bench";
    info.argv.assign(argv, argv + argc);
    info.config_fingerprint = bench_fingerprint(argc, argv);
    recorder_ = std::make_unique<obs::RunRecorder>(args.get("run-dir", ""),
                                                   std::move(info));
    if (!tracer_) {
      tracer_ = std::make_unique<obs::EventTracer>(
          std::make_unique<obs::FileSink>(recorder_->trace_path()),
          obs::TraceFormat::ChromeJson);
      obs::set_default_tracer(tracer_.get());
    }
  }
  if (profile_ || !metrics_out_.empty() || recorder_ != nullptr)
    obs::set_enabled(true);
  const long long jobs = args.get_int("jobs", 0);
  jobs_ = jobs <= 0 ? exec::default_concurrency()
                    : static_cast<std::size_t>(jobs);
  seeds_ = static_cast<std::size_t>(std::max(1LL, args.get_int("seeds", 1)));
  rollout_requested_ =
      args.has("rollout-workers") || args.has("rollout-batch");
  rollout_workers_ =
      static_cast<std::size_t>(args.get_int("rollout-workers", 1));
  rollout_batch_ =
      static_cast<std::size_t>(args.get_int("rollout-batch", 0));
  warm_start_ = args.get("warm-start", "");
  warm_start_relaxed_ = args.flag("warm-start-relaxed");
  save_warm_start_ = args.get("save-warm-start", "");
}

std::unique_ptr<rollout::RolloutPool> ObsSession::make_rollout_pool()
    const {
  if (!rollout_requested_) return nullptr;
  rollout::RolloutOptions options;
  options.workers = rollout_workers_;
  options.batch = rollout_batch_;
  options.tracer = tracer_.get();
  return std::make_unique<rollout::RolloutPool>(options);
}

ObsSession::~ObsSession() {
  if (recorder_) {
    try {
      util::atomic_write_file(recorder_->metrics_path(),
                              obs::metrics_to_json(obs::Registry::global()));
    } catch (const std::exception& e) {
      util::log_warn("cannot write metrics to {}: {}",
                     recorder_->metrics_path().string(), e.what());
    }
    recorder_->finish(0);
  }
  if (tracer_) {
    obs::set_default_tracer(nullptr);
    tracer_->close();
  }
  if (!metrics_out_.empty()) {
    const bool as_csv =
        metrics_out_.size() >= 4 &&
        metrics_out_.rfind(".csv") == metrics_out_.size() - 4;
    try {
      util::atomic_write_file(
          metrics_out_,
          as_csv ? obs::metrics_to_csv(obs::Registry::global())
                 : obs::metrics_to_json(obs::Registry::global()));
    } catch (const std::exception& e) {
      util::log_warn("cannot write metrics to {}: {}", metrics_out_,
                     e.what());
    }
  }
  if (profile_) std::cerr << obs::metrics_to_text(obs::Registry::global());
}

Scenario Scenario::theta_mini(std::uint64_t seed) {
  return Scenario{core::theta_mini(), workload::theta_mini_workload(), seed};
}

Scenario Scenario::cori_mini(std::uint64_t seed) {
  return Scenario{core::cori_mini(), workload::cori_mini_workload(), seed};
}

sim::Trace Scenario::trace(std::size_t jobs, std::uint64_t trace_seed,
                           double load_scale) const {
  workload::GenerateOptions options;
  options.num_jobs = jobs;
  options.seed = trace_seed;
  options.load_scale = load_scale;
  return workload::generate_trace(model, options);
}

sim::Trace Scenario::real_trace(std::size_t jobs) const {
  return trace(jobs, workload::kRealTraceSeed);
}

MethodSet::MethodSet(const Scenario& scenario) {
  random_ = std::make_unique<sched::RandomPolicy>(
      util::derive_seed(scenario.seed, "random-policy"));
  optimization_ = std::make_unique<sched::KnapsackOpt>(scenario.reward());

  sched::DecimaConfig decima_cfg;
  decima_cfg.total_nodes = scenario.preset.nodes;
  decima_cfg.window = scenario.preset.window;
  decima_cfg.fc1 = scenario.preset.fc1;
  decima_cfg.fc2 = scenario.preset.fc2;
  decima_cfg.time_scale = scenario.preset.max_walltime;
  decima_cfg.reward_kind = scenario.preset.reward;
  decima_cfg.seed = util::derive_seed(scenario.seed, "decima");
  decima_ = std::make_unique<sched::DecimaPG>(decima_cfg);

  dras_pg_ = std::make_unique<core::DrasAgent>(scenario.preset.agent_config(
      core::AgentKind::PG, util::derive_seed(scenario.seed, "dras-pg")));
  dras_dql_ = std::make_unique<core::DrasAgent>(scenario.preset.agent_config(
      core::AgentKind::DQL, util::derive_seed(scenario.seed, "dras-dql")));
}

namespace {
std::vector<train::Jobset> build_bench_curriculum(
    const Scenario& scenario, std::size_t episodes,
    std::size_t jobs_per_episode, std::uint64_t curriculum_seed) {
  const auto real = scenario.real_trace(jobs_per_episode * 4);
  train::CurriculumOptions options;
  // Short three-phase curriculum scaled to the episode budget.
  options.sampled_sets = std::max<std::size_t>(1, episodes / 3);
  options.real_sets = std::max<std::size_t>(1, episodes / 3);
  options.synthetic_sets =
      std::max<std::size_t>(1, episodes - 2 * (episodes / 3));
  options.jobs_per_set = jobs_per_episode;
  options.seed = curriculum_seed != 0
                     ? curriculum_seed
                     : util::derive_seed(scenario.seed, "bench-curriculum");
  return train::build_curriculum(scenario.model, real, options);
}
}  // namespace

void train_dras_agent(core::DrasAgent& agent, const Scenario& scenario,
                      std::size_t episodes, std::size_t jobs_per_episode,
                      std::uint64_t curriculum_seed,
                      rollout::RolloutPool* rollout,
                      obs::RunRecorder* recorder,
                      const sim::FaultConfig* faults) {
  auto jobsets = build_bench_curriculum(scenario, episodes,
                                        jobs_per_episode, curriculum_seed);
  train::TrainerOptions trainer_options;
  trainer_options.validate_each_episode = false;
  if (faults != nullptr) trainer_options.faults = *faults;
  train::Trainer trainer(agent, scenario.preset.nodes, {}, trainer_options);
  if (rollout != nullptr || recorder != nullptr) {
    train::Curriculum curriculum(std::move(jobsets));
    train::RunOptions run_options;
    run_options.rollout = rollout;
    run_options.run = recorder;
    (void)trainer.run(curriculum, run_options);
  } else {
    (void)trainer.run(jobsets);
  }
  agent.set_training(false);
}

std::optional<std::filesystem::path> load_warm_start(
    const std::filesystem::path& dir, core::DrasAgent& agent,
    bool relaxed) {
  const auto newest = ckpt::newest_checkpoint(dir / agent.name());
  if (!newest) return std::nullopt;
  ckpt::load_agent_from_checkpoint(*newest, agent, relaxed);
  return newest;
}

std::filesystem::path save_warm_start(const std::filesystem::path& dir,
                                      core::DrasAgent& agent,
                                      std::size_t episode) {
  ckpt::CheckpointManagerOptions options;
  options.dir = dir / agent.name();
  std::filesystem::create_directories(options.dir);
  ckpt::CheckpointManager manager(options);
  ckpt::TrainingState state;
  state.agent = &agent;
  state.telemetry = false;  // a warm start adopts parameters, not counters
  return manager.save(state, episode);
}

void MethodSet::train_agents(const Scenario& scenario, std::size_t episodes,
                             std::size_t jobs_per_episode) {
  const auto curriculum =
      build_bench_curriculum(scenario, episodes, jobs_per_episode, 0);
  train::TrainerOptions trainer_options;
  trainer_options.validate_each_episode = false;
  for (core::DrasAgent* agent : {dras_pg_.get(), dras_dql_.get()}) {
    train::Trainer trainer(*agent, scenario.preset.nodes, {},
                           trainer_options);
    (void)trainer.run(curriculum);
    agent->set_training(false);
  }
  // Decima-PG trains on the same jobsets.
  for (const auto& jobset : curriculum) {
    sim::Simulator simulator(scenario.preset.nodes);
    (void)simulator.run(jobset.trace, *decima_);
  }
  decima_->set_training(false);
}

std::vector<sim::Scheduler*> MethodSet::all() {
  return {&fcfs_,        &bin_packing_, random_.get(), optimization_.get(),
          decima_.get(), dras_pg_.get(), dras_dql_.get()};
}

std::vector<train::Evaluation> evaluate_roster(
    const std::vector<sim::Scheduler*>& roster, int total_nodes,
    const sim::Trace& trace, const core::RewardFunction* reward,
    std::size_t jobs) {
  train::EvalOptions options;
  options.reward = reward;
  return evaluate_roster(roster, total_nodes, trace, options, jobs);
}

std::vector<train::Evaluation> evaluate_roster(
    const std::vector<sim::Scheduler*>& roster, int total_nodes,
    const sim::Trace& trace, const train::EvalOptions& options,
    std::size_t jobs) {
  const sim::Trace* traces[] = {&trace};
  return exec::ParallelEvaluator(jobs).evaluate_grid(
      total_nodes, traces, std::span<sim::Scheduler* const>(roster),
      options);
}

std::vector<train::Evaluation> evaluate_all(MethodSet& methods,
                                            const Scenario& scenario,
                                            const sim::Trace& trace,
                                            std::size_t jobs) {
  const auto reward = scenario.reward();
  return evaluate_roster(methods.all(), scenario.preset.nodes, trace,
                         &reward, jobs);
}

void print_preamble(const std::string& experiment, const Scenario& scenario,
                    std::size_t trace_jobs) {
  std::cout << "# " << experiment << "\n";
  std::cout << util::format(
      "# scenario={} nodes={} window={} reward={} jobs={} seed={}\n",
      scenario.preset.name, scenario.preset.nodes, scenario.preset.window,
      core::to_string(scenario.preset.reward), trace_jobs, scenario.seed);
  std::cout << "# (scaled-down model per DESIGN.md; shapes, not absolute "
               "values, are the reproduction target)\n";
}

std::vector<SweepCell> seed_sweep_grid(
    const std::vector<Scenario>& scenarios, std::size_t seeds,
    std::uint64_t base_trace_seed) {
  std::vector<SweepCell> grid;
  grid.reserve(scenarios.size() * std::max<std::size_t>(seeds, 1));
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (std::size_t r = 0; r < std::max<std::size_t>(seeds, 1); ++r) {
      SweepCell cell;
      cell.scenario_index = s;
      cell.seed_index = r;
      cell.scenario = scenarios[s];
      if (r == 0) {
        cell.trace_seed = base_trace_seed;
      } else {
        // Derive both seeds from the scenario's own: repetitions of
        // different scenarios never share a stream even at equal r.
        cell.scenario.seed =
            exec::task_seed(scenarios[s].seed, "seed-sweep-train", r);
        cell.trace_seed =
            exec::task_seed(scenarios[s].seed ^ base_trace_seed,
                            "seed-sweep-trace", r);
      }
      grid.push_back(std::move(cell));
    }
  }
  return grid;
}

std::vector<MethodBands> evaluation_bands(
    const std::vector<std::vector<train::Evaluation>>& per_seed) {
  std::vector<MethodBands> bands;
  if (per_seed.empty()) return bands;
  const std::size_t methods = per_seed.front().size();
  const auto band_of = [&](const auto& metric_of) {
    MetricBand band;
    const double n = static_cast<double>(per_seed.size());
    for (const auto& evaluations : per_seed) band.mean += metric_of(evaluations);
    band.mean /= n;
    if (per_seed.size() > 1) {
      double ss = 0.0;
      for (const auto& evaluations : per_seed) {
        const double d = metric_of(evaluations) - band.mean;
        ss += d * d;
      }
      band.stddev = std::sqrt(ss / (n - 1.0));  // sample stddev
    }
    return band;
  };
  for (std::size_t m = 0; m < methods; ++m) {
    MethodBands method_bands;
    method_bands.method = per_seed.front()[m].method;
    method_bands.avg_wait = band_of(
        [m](const auto& e) { return e[m].summary.avg_wait; });
    method_bands.max_wait = band_of(
        [m](const auto& e) { return e[m].summary.max_wait; });
    method_bands.avg_slowdown = band_of(
        [m](const auto& e) { return e[m].summary.avg_slowdown; });
    method_bands.avg_response = band_of(
        [m](const auto& e) { return e[m].summary.avg_response; });
    method_bands.utilization = band_of(
        [m](const auto& e) { return e[m].summary.utilization; });
    bands.push_back(std::move(method_bands));
  }
  return bands;
}

}  // namespace dras::benchx
