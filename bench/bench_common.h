// Shared support for the figure/table reproduction benches.
//
// Every bench binary is self-contained: it builds its workloads from the
// statistical models (DESIGN.md §1), trains the learned agents on a short
// curriculum, evaluates every method on an identical test trace, and
// prints both a human-readable table and machine-readable CSV rows.
#pragma once

#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dras_agent.h"
#include "obs/run_manifest.h"
#include "obs/trace.h"
#include "core/presets.h"
#include "rollout/rollout_pool.h"
#include "sched/bin_packing.h"
#include "sched/decima_pg.h"
#include "sched/fcfs_easy.h"
#include "sched/knapsack_opt.h"
#include "sched/random_policy.h"
#include "train/curriculum.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "workload/jobset.h"
#include "workload/models.h"
#include "workload/synthetic.h"

namespace dras::benchx {

/// One experiment scenario: a scaled system preset plus its matching
/// workload model (theta-mini by default; cori-mini for capacity runs).
struct Scenario {
  core::SystemPreset preset;
  workload::WorkloadModel model;
  std::uint64_t seed = 1;

  static Scenario theta_mini(std::uint64_t seed = 1);
  static Scenario cori_mini(std::uint64_t seed = 1);

  [[nodiscard]] core::RewardFunction reward() const {
    return core::RewardFunction(preset.reward);
  }
  /// Generate a trace from this scenario's model.
  [[nodiscard]] sim::Trace trace(std::size_t jobs, std::uint64_t seed,
                                 double load_scale = 1.0) const;
  /// The designated stand-in "real" trace (DESIGN.md §1).
  [[nodiscard]] sim::Trace real_trace(std::size_t jobs) const;
};

/// The full method roster of §IV-A.  Owns every scheduler.
class MethodSet {
 public:
  explicit MethodSet(const Scenario& scenario);

  /// Train DRAS-PG, DRAS-DQL and Decima-PG for `episodes` episodes each on
  /// sampled jobsets of `jobs_per_episode` jobs, then freeze all agents.
  void train_agents(const Scenario& scenario, std::size_t episodes,
                    std::size_t jobs_per_episode);

  /// All methods in the paper's presentation order.
  [[nodiscard]] std::vector<sim::Scheduler*> all();
  [[nodiscard]] core::DrasAgent& dras_pg() { return *dras_pg_; }
  [[nodiscard]] core::DrasAgent& dras_dql() { return *dras_dql_; }
  [[nodiscard]] sched::DecimaPG& decima() { return *decima_; }
  [[nodiscard]] sched::FcfsEasy& fcfs() { return fcfs_; }

 private:
  sched::FcfsEasy fcfs_;
  sched::BinPacking bin_packing_;
  std::unique_ptr<sched::RandomPolicy> random_;
  std::unique_ptr<sched::KnapsackOpt> optimization_;
  std::unique_ptr<sched::DecimaPG> decima_;
  std::unique_ptr<core::DrasAgent> dras_pg_;
  std::unique_ptr<core::DrasAgent> dras_dql_;
};

/// Train one DRAS agent on a short three-phase curriculum (§III-C) built
/// from the scenario's stand-in real trace, then freeze it.  Shared by
/// MethodSet::train_agents and the ablation benches so every experiment
/// trains the same way.  A non-null `recorder` (ObsSession::run_recorder)
/// gets every committed round appended to its rounds.jsonl — purely
/// observational, results are unchanged.  A non-null `faults` trains the
/// agent under injected node failures (sim/fault.h; per-episode streams
/// derived from faults->seed) — pass rollout = nullptr with it, or build
/// the pool with the same RolloutOptions::faults, since an existing
/// pool's fault config cannot be changed here.
void train_dras_agent(core::DrasAgent& agent, const Scenario& scenario,
                      std::size_t episodes, std::size_t jobs_per_episode,
                      std::uint64_t curriculum_seed = 0,
                      rollout::RolloutPool* rollout = nullptr,
                      obs::RunRecorder* recorder = nullptr,
                      const sim::FaultConfig* faults = nullptr);

/// Warm start: load the agent's parameters from the newest checkpoint
/// under `<dir>/<agent-name>`.  Returns the checkpoint used, or nullopt
/// when the directory holds none.  A checkpoint written with a different
/// agent configuration is rejected (util::SerializationError) — the
/// fingerprint guard, see ckpt::load_agent_from_checkpoint.  With
/// `relaxed` (--warm-start-relaxed) a same-topology checkpoint from a
/// different preset loads anyway, with the fingerprint diff logged.
std::optional<std::filesystem::path> load_warm_start(
    const std::filesystem::path& dir, core::DrasAgent& agent,
    bool relaxed = false);

/// Save an agent-only checkpoint under `<dir>/<agent-name>` for a later
/// --warm-start.  Returns the path written.
std::filesystem::path save_warm_start(const std::filesystem::path& dir,
                                      core::DrasAgent& agent,
                                      std::size_t episode);

/// Evaluate every method on the same trace; returns results in roster
/// order.  Reward accounting uses the scenario's reward function.  With
/// `jobs` > 1 the roster evaluates concurrently via
/// exec::ParallelEvaluator (each worker runs a private clone); the
/// determinism contract guarantees output identical to jobs = 1.
[[nodiscard]] std::vector<train::Evaluation> evaluate_all(
    MethodSet& methods, const Scenario& scenario, const sim::Trace& trace,
    std::size_t jobs = 1);

/// Evaluate an explicit policy roster on one trace, in roster order, up
/// to `jobs` at a time (see evaluate_all for the determinism contract).
[[nodiscard]] std::vector<train::Evaluation> evaluate_roster(
    const std::vector<sim::Scheduler*>& roster, int total_nodes,
    const sim::Trace& trace, const core::RewardFunction* reward,
    std::size_t jobs);

/// Same, with full evaluation options — the failure benches use this to
/// inject a sim::FaultConfig per fault-rate cell.
[[nodiscard]] std::vector<train::Evaluation> evaluate_roster(
    const std::vector<sim::Scheduler*>& roster, int total_nodes,
    const sim::Trace& trace, const train::EvalOptions& options,
    std::size_t jobs);

/// Print the standard bench preamble (config echo, per DESIGN.md §4).
void print_preamble(const std::string& experiment, const Scenario& scenario,
                    std::size_t trace_jobs);

/// One cell of a (scenario x seed) sweep: a scenario whose training seed
/// has been re-derived for `seed_index`, plus the matching test-trace
/// seed.  Cells are independent by construction — each draws its
/// curriculum and workload from streams derived via exec::task_seed — so
/// they can run concurrently under ParallelRunner with output identical
/// to a serial loop.
struct SweepCell {
  std::size_t scenario_index = 0;
  std::size_t seed_index = 0;
  Scenario scenario;
  std::uint64_t trace_seed = 0;
};

/// Build the (scenario x seed) grid, scenario-major.  seed_index 0 keeps
/// each scenario's original training seed and `base_trace_seed`
/// unchanged, so the first repetition of a sweep reproduces the
/// single-seed run bit-for-bit; further repetitions derive decorrelated
/// seed streams from the scenario seed.
[[nodiscard]] std::vector<SweepCell> seed_sweep_grid(
    const std::vector<Scenario>& scenarios, std::size_t seeds,
    std::uint64_t base_trace_seed);

/// Mean and sample standard deviation of one metric across seeds (the
/// error bar; stddev is 0 with a single seed).
struct MetricBand {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Per-method §IV-E metric bands across the seed repetitions of one
/// scenario.
struct MethodBands {
  std::string method;
  MetricBand avg_wait, max_wait, avg_slowdown, avg_response, utilization;
};

/// Aggregate one scenario's per-seed evaluation vectors (roster order
/// must match across seeds — evaluate_all guarantees it) into mean ±
/// stddev bands per method.
[[nodiscard]] std::vector<MethodBands> evaluation_bands(
    const std::vector<std::vector<train::Evaluation>>& per_seed);

/// Shared telemetry + execution plumbing for the bench harnesses.  Parses
/// `--trace-out FILE`, `--trace-format chrome|jsonl`, `--metrics-out FILE`,
/// `--profile`, `--run-dir DIR`, `--jobs N`, `--rollout-workers N`,
/// `--rollout-batch B`,
/// `--warm-start DIR` and `--save-warm-start DIR` from argv; when
/// requested, installs the
/// process-default tracer (every Simulator the bench creates feeds it) and
/// enables the metrics registry.  `--run-dir DIR` turns on the full
/// observatory: run.json manifest + rounds.jsonl + trace.json +
/// metrics.json in DIR, consumable by tools/dras_report.  The destructor
/// finalizes the trace,
/// dumps metrics and prints the --profile table to stderr.  With none of
/// the flags present this is a no-op (and jobs() defaults to hardware
/// concurrency).
class ObsSession {
 public:
  ObsSession(int argc, const char* const* argv);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  [[nodiscard]] obs::EventTracer* tracer() const noexcept {
    return tracer_.get();
  }
  /// Run recorder from --run-dir, or nullptr.  Wire into
  /// train::RunOptions::run (and call set_final_score / note) to fill
  /// the manifest; the destructor finishes it.
  [[nodiscard]] obs::RunRecorder* run_recorder() const noexcept {
    return recorder_.get();
  }
  /// Worker budget from --jobs N (N >= 1); --jobs 0 or absent = hardware
  /// concurrency.
  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Seed repetitions from --seeds N (default 1).  Benches that support
  /// sweeps run their (scenario x seed) grid over a ParallelRunner and
  /// report mean ± stddev error bars; --seeds 1 is the byte-identical
  /// single-run path.
  [[nodiscard]] std::size_t seeds() const noexcept { return seeds_; }

  /// Data-parallel rollout pool from --rollout-workers/--rollout-batch,
  /// or nullptr when neither flag was given (legacy serial training).
  [[nodiscard]] std::unique_ptr<rollout::RolloutPool> make_rollout_pool()
      const;

  /// Checkpoint directory from --warm-start DIR; empty when absent.
  /// Feed to load_warm_start() before training learned agents.
  [[nodiscard]] const std::filesystem::path& warm_start() const noexcept {
    return warm_start_;
  }

  /// --warm-start-relaxed: accept a same-topology checkpoint whose
  /// config fingerprint differs (cross-preset transfer); the diff is
  /// logged.  Pass to load_warm_start()'s `relaxed` parameter.
  [[nodiscard]] bool warm_start_relaxed() const noexcept {
    return warm_start_relaxed_;
  }

  /// Checkpoint directory from --save-warm-start DIR; empty when absent.
  /// Feed to save_warm_start() after training learned agents — a later
  /// run of the *same bench* consumes it via --warm-start (the config
  /// fingerprint rejects checkpoints from a different bench setup).
  [[nodiscard]] const std::filesystem::path& save_warm_start_dir()
      const noexcept {
    return save_warm_start_;
  }

 private:
  std::unique_ptr<obs::EventTracer> tracer_;
  std::unique_ptr<obs::RunRecorder> recorder_;
  std::string metrics_out_;
  bool profile_ = false;
  std::size_t jobs_ = 1;
  std::size_t seeds_ = 1;
  bool rollout_requested_ = false;
  std::size_t rollout_workers_ = 1;
  std::size_t rollout_batch_ = 0;
  std::filesystem::path warm_start_;
  bool warm_start_relaxed_ = false;
  std::filesystem::path save_warm_start_;
};

}  // namespace dras::benchx
