// Fig. 2 + Table II reproduction: job characterisation of Theta and Cori.
//
// Outer circle of Fig. 2 = share of jobs per size category; inner circle
// = share of core-hours.  The qualitative signature to reproduce: on
// Theta (capability) core-hours concentrate in large jobs while counts
// concentrate in the smallest allowed sizes; on Cori (capacity) counts
// are dominated by 1-few-node jobs.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace {

void characterize(const dras::workload::WorkloadModel& model,
                  std::size_t jobs, std::span<const int> boundaries) {
  using dras::util::format;
  dras::workload::GenerateOptions options;
  options.num_jobs = jobs;
  options.seed = dras::workload::kRealTraceSeed;
  const auto trace = dras::workload::generate_trace(model, options);

  const auto summary = dras::workload::summarize_trace(trace);
  std::cout << format(
      "\n## {} — {} jobs over {}, max job {} nodes, max runtime {}\n",
      model.name, summary.jobs,
      dras::metrics::format_duration(summary.span_seconds), summary.max_size,
      dras::metrics::format_duration(summary.max_runtime));

  const auto buckets = dras::workload::size_distribution(trace, boundaries);
  double total_hours = 0.0;
  for (const auto& bucket : buckets) total_hours += bucket.core_hours;

  std::vector<std::vector<std::string>> table;
  for (const auto& bucket : buckets) {
    if (bucket.jobs == 0) continue;
    table.push_back(
        {bucket.label(), format("{}", bucket.jobs),
         dras::metrics::format_percent(static_cast<double>(bucket.jobs) /
                                       summary.jobs),
         format("{:.0f}", bucket.core_hours),
         dras::metrics::format_percent(bucket.core_hours / total_hours)});
    std::cout << format("csv:{},{},{},{:.2f},{:.2f}\n", model.name,
                        bucket.label(), bucket.jobs,
                        100.0 * bucket.jobs / summary.jobs,
                        100.0 * bucket.core_hours / total_hours);
  }
  dras::metrics::print_table(
      std::cout,
      {"size", "jobs", "jobs% (outer)", "core-hours", "core-hours% (inner)"},
      table);
}

}  // namespace

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  std::cout << "# Fig. 2 / Table II: job characterisation (statistical "
               "models standing in for the proprietary logs)\n";
  std::cout << "csv:system,size_bucket,jobs,jobs_pct,core_hours_pct\n";

  const int theta_edges[] = {256, 512, 1024, 2048};
  characterize(dras::workload::theta_workload(), 50000, theta_edges);

  const int cori_edges[] = {1, 4, 16, 64, 256};
  characterize(dras::workload::cori_workload(), 50000, cori_edges);

  // Table II echo.
  std::cout << "\n## Table II summary\n";
  for (const auto& model : {dras::workload::theta_workload(),
                            dras::workload::cori_workload()}) {
    std::cout << dras::util::format(
        "{}: {} nodes, max job length {}, mean inter-arrival {:.0f}s, "
        "offered load {:.2f}\n",
        model.name, model.system_nodes,
        dras::metrics::format_duration(model.max_runtime),
        model.mean_interarrival, model.offered_load());
  }
  return 0;
}
