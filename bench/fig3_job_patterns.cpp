// Fig. 3 reproduction: job patterns of the Theta training dataset —
// hourly job arrivals, daily job arrivals, job-size distribution, and
// job-runtime distribution of the (stand-in) training trace.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"
#include "workload/jobset.h"
#include "workload/models.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  const auto model = dras::workload::theta_mini_workload();

  // The training split of the stand-in "real" trace (paper: first two
  // months of the Theta log).
  dras::workload::GenerateOptions options;
  options.num_jobs = 6000;
  options.seed = dras::workload::kRealTraceSeed;
  const auto full = dras::workload::generate_trace(model, options);
  const auto split = dras::workload::split_trace(full, 0.6, 0.2);
  const auto& training = split.train;

  std::cout << "# Fig. 3: job patterns of the Theta training dataset "
               "(scaled model)\n";
  std::cout << format("# training jobs: {}\n", training.size());

  std::cout << "\n## hourly job arrivals\ncsv:hour,arrivals\n";
  const auto hourly = dras::workload::hourly_arrivals(training);
  for (std::size_t h = 0; h < hourly.size(); ++h)
    std::cout << format("csv:{},{}\n", h, hourly[h]);

  std::cout << "\n## daily job arrivals (0 = Monday)\ncsv:day,arrivals\n";
  const auto daily = dras::workload::daily_arrivals(training);
  for (std::size_t d = 0; d < daily.size(); ++d)
    std::cout << format("csv:{},{}\n", d, daily[d]);

  std::cout << "\n## job size distribution\ncsv:size,jobs\n";
  std::vector<int> edges;
  for (const auto& cat : model.size_mix) edges.push_back(cat.size);
  const auto sizes = dras::workload::size_distribution(
      training, std::span<const int>(edges.data(), edges.size() - 1));
  for (const auto& bucket : sizes)
    if (bucket.jobs > 0)
      std::cout << format("csv:{},{}\n", bucket.label(), bucket.jobs);

  std::cout << "\n## job runtime distribution\ncsv:runtime_upper,jobs\n";
  const double runtime_edges[] = {1800, 3600, 2 * 3600, 4 * 3600,
                                  8 * 3600, 16 * 3600};
  const auto runtimes =
      dras::workload::runtime_histogram(training, runtime_edges);
  for (std::size_t i = 0; i < runtimes.size(); ++i) {
    const std::string label =
        i < std::size(runtime_edges)
            ? dras::metrics::format_duration(runtime_edges[i])
            : "longer";
    std::cout << format("csv:{},{}\n", label, runtimes[i]);
  }

  // Sanity signature of Fig. 3: weekday arrivals exceed weekend arrivals,
  // and working-hours arrivals exceed night arrivals.
  std::size_t weekday = 0, weekend = 0;
  for (std::size_t d = 0; d < 5; ++d) weekday += daily[d];
  weekend = daily[5] + daily[6];
  std::size_t day_hours = 0, night_hours = 0;
  for (std::size_t h = 9; h < 18; ++h) day_hours += hourly[h];
  for (std::size_t h = 0; h < 6; ++h) night_hours += hourly[h];
  std::cout << format(
      "\nshape check: weekday/day arrivals {} (avg/day {:.0f}) vs weekend {} "
      "(avg/day {:.0f}); 9-18h {} vs 0-6h {}\n",
      weekday, weekday / 5.0, weekend, weekend / 2.0, day_hours, night_hours);
  return (weekday / 5.0 > weekend / 2.0 && day_hours > night_hours) ? 0 : 1;
}
