// Fig. 4 reproduction: quality and convergence of DRAS-PG trained with
// different jobset orderings (§III-C, §IV-D).
//
// The paper's finding: sampled → real → synthetic converges fastest and
// best; starting from real jobsets converges to a worse model; starting
// from synthetic jobsets converges slowly.  This bench trains one agent
// per ordering on identical jobset pools and prints the per-episode
// validation reward curves.
//
// Extra knobs: --rollout-workers N / --rollout-batch B train each agent
// through the data-parallel rollout engine (batch > 1 changes the math
// from per-episode to per-round updates; workers never changes results
// at a fixed batch), --warm-start DIR seeds each agent from the newest
// checkpoint under DIR/<agent-name> before training, and
// --save-warm-start DIR keeps the sampled-first agent (the paper's best
// ordering) for a later --warm-start run.  All three orderings share
// one agent config, so only one is saved — the dir stays unambiguous.
#include <iostream>

#include "bench_common.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::train::JobsetPhase;
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(11);
  constexpr std::size_t kJobsPerSet = 300;
  constexpr std::size_t kSetsPerPhase = 5;
  const auto validation = scenario.trace(250, 424242);

  benchx::print_preamble("Fig. 4: convergence vs jobset training order",
                         scenario, kJobsPerSet);

  struct Ordering {
    std::string name;
    std::vector<JobsetPhase> order;
  };
  const std::vector<Ordering> orderings = {
      {"sampled-real-synthetic",
       {JobsetPhase::Sampled, JobsetPhase::Real, JobsetPhase::Synthetic}},
      {"real-sampled-synthetic",
       {JobsetPhase::Real, JobsetPhase::Sampled, JobsetPhase::Synthetic}},
      {"synthetic-sampled-real",
       {JobsetPhase::Synthetic, JobsetPhase::Sampled, JobsetPhase::Real}},
  };

  const auto rollout = obs_session.make_rollout_pool();
  if (rollout != nullptr)
    std::cout << format("# rollout: {} workers, batch {}\n",
                        rollout->workers(), rollout->batch());

  std::cout << "csv:ordering,episode,phase,validation_reward,avg_wait_s\n";
  std::vector<double> final_rewards;
  for (const auto& ordering : orderings) {
    const auto real = scenario.real_trace(kJobsPerSet * kSetsPerPhase);
    dras::train::CurriculumOptions options;
    options.sampled_sets = kSetsPerPhase;
    options.real_sets = kSetsPerPhase;
    options.synthetic_sets = kSetsPerPhase;
    options.jobs_per_set = kJobsPerSet;
    options.seed = 77;  // identical pools; only the order differs
    options.order = ordering.order;
    dras::train::Curriculum curriculum(
        dras::train::build_curriculum(scenario.model, real, options));

    dras::core::DrasAgent agent(scenario.preset.agent_config(
        dras::core::AgentKind::PG, dras::util::derive_seed(1, "fig4")));
    if (!obs_session.warm_start().empty()) {
      const auto loaded =
          benchx::load_warm_start(obs_session.warm_start(), agent,
                                  obs_session.warm_start_relaxed());
      std::cout << format("# warm start [{}]: {}\n", ordering.name,
                          loaded ? loaded->string() : "no checkpoint found");
    }
    dras::train::Trainer trainer(agent, scenario.preset.nodes, validation);
    dras::train::RunOptions run_options;
    run_options.rollout = rollout.get();
    const auto results = trainer.run(curriculum, run_options);
    double last = 0.0;
    for (const auto& result : results) {
      std::cout << format("csv:{},{},{},{:.3f},{:.1f}\n", ordering.name,
                          result.episode, to_string(result.phase),
                          result.validation_reward,
                          result.validation_summary.avg_wait);
      last = result.validation_reward;
    }
    final_rewards.push_back(last);
    std::cout << format("# {} final validation reward {:.3f}\n",
                        ordering.name, last);
    if (!obs_session.save_warm_start_dir().empty() &&
        &ordering == &orderings.front()) {
      const auto saved = benchx::save_warm_start(
          obs_session.save_warm_start_dir(), agent, results.size());
      std::cout << format("# warm start saved [{}]: {}\n", ordering.name,
                          saved.string());
    }
  }

  std::cout << format(
      "\nshape check: sampled-first final reward {:.3f} vs real-first "
      "{:.3f} vs synthetic-first {:.3f}\n",
      final_rewards[0], final_rewards[1], final_rewards[2]);
  return 0;
}
