// Fig. 5 reproduction: total reward collected on the validation dataset by
// every scheduling method, per training episode.
//
// The learned agents (DRAS-PG, DRAS-DQL, Decima-PG) train one jobset per
// episode and are evaluated frozen on the validation trace after each; the
// static methods (FCFS, BinPacking, Random, Optimization) are horizontal
// lines.  The paper's signature: DRAS starts near Random and climbs past
// the heuristics as it converges.
//
// Extra knobs: --rollout-workers N / --rollout-batch B collect the DRAS
// agents' training episodes through the data-parallel rollout engine
// (one reduced update per per-episode round here, so curves stay
// per-episode), --warm-start DIR seeds each DRAS agent from the
// newest checkpoint under DIR/<agent-name>, and --save-warm-start DIR
// writes the trained agents back out for a later --warm-start run.
#include <iostream>
#include <span>

#include "bench_common.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(5);
  constexpr std::size_t kEpisodes = 12;
  constexpr std::size_t kJobsPerSet = 300;
  const auto validation = scenario.trace(250, 909090);

  benchx::print_preamble("Fig. 5: learning curves on the validation set",
                         scenario, kJobsPerSet);

  benchx::MethodSet methods(scenario);
  const auto reward = scenario.reward();

  // Build the shared training curriculum once.
  const auto real = scenario.real_trace(kJobsPerSet * 4);
  dras::train::CurriculumOptions curriculum_options;
  curriculum_options.sampled_sets = kEpisodes / 3;
  curriculum_options.real_sets = kEpisodes / 3;
  curriculum_options.synthetic_sets = kEpisodes - 2 * (kEpisodes / 3);
  curriculum_options.jobs_per_set = kJobsPerSet;
  curriculum_options.seed = 31;
  const auto curriculum =
      dras::train::build_curriculum(scenario.model, real,
                                    curriculum_options);

  // Static methods: constant validation reward.
  const auto validation_reward = [&](dras::sim::Scheduler& method) {
    return dras::train::evaluate(scenario.preset.nodes, validation, method,
                                 &reward)
        .total_reward;
  };
  const double fcfs_line = validation_reward(methods.fcfs());
  std::vector<std::pair<std::string, double>> static_lines = {
      {"FCFS", fcfs_line}};
  {
    auto all = methods.all();
    // BinPacking (1), Random (2), Optimization (3).
    static_lines.emplace_back("BinPacking", validation_reward(*all[1]));
    static_lines.emplace_back("Random", validation_reward(*all[2]));
    static_lines.emplace_back("Optimization", validation_reward(*all[3]));
  }

  std::cout << "csv:method,episode,validation_reward\n";
  for (const auto& [name, value] : static_lines)
    for (std::size_t e = 0; e < kEpisodes; ++e)
      std::cout << format("csv:{},{},{:.3f}\n", name, e, value);

  const auto rollout = obs_session.make_rollout_pool();
  if (rollout != nullptr)
    std::cout << format("# rollout: {} workers\n", rollout->workers());
  if (!obs_session.warm_start().empty()) {
    for (auto* agent : {&methods.dras_pg(), &methods.dras_dql()}) {
      const auto loaded =
          benchx::load_warm_start(obs_session.warm_start(), *agent,
                                  obs_session.warm_start_relaxed());
      std::cout << format("# warm start [{}]: {}\n", agent->name(),
                          loaded ? loaded->string() : "no checkpoint found");
    }
  }

  // Learned methods: train one jobset per episode, evaluate frozen.
  double dras_pg_final = 0.0, random_line = static_lines[2].second;
  for (std::size_t e = 0; e < kEpisodes; ++e) {
    const auto& jobset = curriculum[e % curriculum.size()];
    for (auto* agent : {&methods.dras_pg(), &methods.dras_dql()}) {
      if (rollout != nullptr) {
        // One-slot round through the rollout engine: clone, roll out,
        // apply the reduced update — the frozen original never trains
        // in place.
        (void)rollout->collect(*agent, scenario.preset.nodes,
                               std::span(&jobset, 1), e);
      } else {
        agent->set_training(true);
        dras::sim::Simulator sim(scenario.preset.nodes);
        (void)sim.run(jobset.trace, *agent);
        agent->set_training(false);
      }
      const double value = validation_reward(*agent);
      std::cout << format("csv:{},{},{:.3f}\n", agent->name(), e, value);
      if (agent->name() == "DRAS-PG") dras_pg_final = value;
    }
    methods.decima().set_training(true);
    {
      dras::sim::Simulator sim(scenario.preset.nodes);
      (void)sim.run(jobset.trace, methods.decima());
    }
    methods.decima().set_training(false);
    std::cout << format("csv:{},{},{:.3f}\n", methods.decima().name(), e,
                        validation_reward(methods.decima()));
  }

  if (!obs_session.save_warm_start_dir().empty()) {
    for (auto* agent : {&methods.dras_pg(), &methods.dras_dql()}) {
      const auto saved = benchx::save_warm_start(
          obs_session.save_warm_start_dir(), *agent, kEpisodes);
      std::cout << format("# warm start saved [{}]: {}\n", agent->name(),
                          saved.string());
    }
  }

  std::cout << format(
      "\nshape check: DRAS-PG final {:.3f} vs Random {:.3f} vs FCFS "
      "{:.3f}\n",
      dras_pg_final, random_line, fcfs_line);
  return 0;
}
