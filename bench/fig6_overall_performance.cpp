// Fig. 6 reproduction: overall scheduling performance Kiviat axes on the
// Theta-style (capability) and Cori-style (capacity) scenarios.
//
// For each method we print the raw §IV-E metrics and the normalised
// Kiviat axes (reciprocal metrics min-max scaled to [0,1]; 1 = best among
// methods).  Paper signature: DRAS agents have the largest area; FCFS
// wins max-wait but loses average wait; BinPacking/Random are worst
// overall.
#include <iostream>

#include "bench_common.h"
#include "metrics/kiviat.h"
#include "metrics/report.h"
#include "util/format.h"

namespace {

void run_scenario(const dras::benchx::Scenario& scenario,
                  std::size_t jobs) {
  using dras::util::format;
  constexpr std::size_t kTrainEpisodes = 30;
  constexpr std::size_t kTrainJobs = 500;
  constexpr std::size_t kTestJobs = 1200;

  dras::benchx::print_preamble(
      format("Fig. 6 ({}): overall performance", scenario.preset.name),
      scenario, kTestJobs);

  dras::benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, kTrainEpisodes, kTrainJobs);
  const auto test_trace = scenario.trace(kTestJobs, 616161);
  const auto evaluations =
      dras::benchx::evaluate_all(methods, scenario, test_trace, jobs);

  std::vector<std::string> names;
  std::vector<dras::metrics::Summary> summaries;
  for (const auto& evaluation : evaluations) {
    names.push_back(evaluation.method);
    summaries.push_back(evaluation.summary);
  }
  const auto axes = dras::metrics::kiviat_axes(names, summaries);

  std::vector<std::vector<std::string>> table;
  std::cout << format(
      "csv:scenario,method,avg_wait_s,max_wait_s,avg_slowdown,avg_response_s"
      ",utilization,kiviat_mean\n");
  for (std::size_t i = 0; i < evaluations.size(); ++i) {
    const auto& s = summaries[i];
    table.push_back({names[i], format("{:.0f}", s.avg_wait),
                     format("{:.0f}", s.max_wait),
                     format("{:.2f}", s.avg_slowdown),
                     format("{:.0f}", s.avg_response),
                     format("{:.3f}", s.utilization),
                     format("{:.3f}", axes[i].mean_score())});
    std::cout << format("csv:{},{},{:.1f},{:.1f},{:.3f},{:.1f},{:.4f},"
                        "{:.4f}\n",
                        scenario.preset.name, names[i], s.avg_wait,
                        s.max_wait, s.avg_slowdown, s.avg_response,
                        s.utilization, axes[i].mean_score());
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "avg wait (s)", "max wait (s)", "avg slowdown",
       "avg response (s)", "utilization", "kiviat mean"},
      table);

  std::cout << "\nKiviat axes (1 = best):\n";
  table.clear();
  for (const auto& ax : axes)
    table.push_back({ax.method, format("{:.2f}", ax.inv_avg_wait),
                     format("{:.2f}", ax.inv_max_wait),
                     format("{:.2f}", ax.inv_avg_slowdown),
                     format("{:.2f}", ax.inv_avg_response),
                     format("{:.2f}", ax.utilization)});
  dras::metrics::print_table(std::cout,
                             {"method", "1/avg-wait", "1/max-wait",
                              "1/slowdown", "1/response", "utilization"},
                             table);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  run_scenario(dras::benchx::Scenario::theta_mini(6), obs_session.jobs());
  run_scenario(dras::benchx::Scenario::cori_mini(6), obs_session.jobs());
  return 0;
}
