// Fig. 6 reproduction: overall scheduling performance Kiviat axes on the
// Theta-style (capability) and Cori-style (capacity) scenarios.
//
// For each method we print the raw §IV-E metrics and the normalised
// Kiviat axes (reciprocal metrics min-max scaled to [0,1]; 1 = best among
// methods).  Paper signature: DRAS agents have the largest area; FCFS
// wins max-wait but loses average wait; BinPacking/Random are worst
// overall.
//
// With --seeds N (N > 1) the whole (scenario x seed) grid — each cell a
// full train-and-evaluate with its own derived curriculum and test-trace
// seeds — runs concurrently over exec::ParallelRunner and the tables
// carry mean ± stddev error bars across the repetitions.  --seeds 1 is
// the original single-run path, byte-identical to before the sweep
// existed.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/parallel_runner.h"
#include "metrics/kiviat.h"
#include "metrics/report.h"
#include "util/format.h"

namespace {

void run_scenario(const dras::benchx::Scenario& scenario,
                  std::size_t jobs) {
  using dras::util::format;
  constexpr std::size_t kTrainEpisodes = 30;
  constexpr std::size_t kTrainJobs = 500;
  constexpr std::size_t kTestJobs = 1200;

  dras::benchx::print_preamble(
      format("Fig. 6 ({}): overall performance", scenario.preset.name),
      scenario, kTestJobs);

  dras::benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, kTrainEpisodes, kTrainJobs);
  const auto test_trace = scenario.trace(kTestJobs, 616161);
  const auto evaluations =
      dras::benchx::evaluate_all(methods, scenario, test_trace, jobs);

  std::vector<std::string> names;
  std::vector<dras::metrics::Summary> summaries;
  for (const auto& evaluation : evaluations) {
    names.push_back(evaluation.method);
    summaries.push_back(evaluation.summary);
  }
  const auto axes = dras::metrics::kiviat_axes(names, summaries);

  std::vector<std::vector<std::string>> table;
  std::cout << format(
      "csv:scenario,method,avg_wait_s,max_wait_s,avg_slowdown,avg_response_s"
      ",utilization,kiviat_mean\n");
  for (std::size_t i = 0; i < evaluations.size(); ++i) {
    const auto& s = summaries[i];
    table.push_back({names[i], format("{:.0f}", s.avg_wait),
                     format("{:.0f}", s.max_wait),
                     format("{:.2f}", s.avg_slowdown),
                     format("{:.0f}", s.avg_response),
                     format("{:.3f}", s.utilization),
                     format("{:.3f}", axes[i].mean_score())});
    std::cout << format("csv:{},{},{:.1f},{:.1f},{:.3f},{:.1f},{:.4f},"
                        "{:.4f}\n",
                        scenario.preset.name, names[i], s.avg_wait,
                        s.max_wait, s.avg_slowdown, s.avg_response,
                        s.utilization, axes[i].mean_score());
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "avg wait (s)", "max wait (s)", "avg slowdown",
       "avg response (s)", "utilization", "kiviat mean"},
      table);

  std::cout << "\nKiviat axes (1 = best):\n";
  table.clear();
  for (const auto& ax : axes)
    table.push_back({ax.method, format("{:.2f}", ax.inv_avg_wait),
                     format("{:.2f}", ax.inv_max_wait),
                     format("{:.2f}", ax.inv_avg_slowdown),
                     format("{:.2f}", ax.inv_avg_response),
                     format("{:.2f}", ax.utilization)});
  dras::metrics::print_table(std::cout,
                             {"method", "1/avg-wait", "1/max-wait",
                              "1/slowdown", "1/response", "utilization"},
                             table);
  std::cout << "\n";
}

constexpr std::size_t kSweepTrainEpisodes = 30;
constexpr std::size_t kSweepTrainJobs = 500;
constexpr std::size_t kSweepTestJobs = 1200;
constexpr std::uint64_t kTestTraceSeed = 616161;

/// Multi-seed path: the full (scenario x seed) grid over a
/// ParallelRunner, then per-scenario mean ± stddev tables.
void run_sweep(const std::vector<dras::benchx::Scenario>& scenarios,
               std::size_t seeds, std::size_t jobs) {
  using dras::util::format;
  const auto grid =
      dras::benchx::seed_sweep_grid(scenarios, seeds, kTestTraceSeed);
  dras::exec::ParallelRunner runner(jobs);
  // Each cell trains its own MethodSet and evaluates serially inside;
  // the runner owns all the parallelism, so a cell's results cannot
  // depend on how many others run beside it.
  const auto cell_results = runner.map(
      grid.size(),
      [&](std::size_t i) {
        const auto& cell = grid[i];
        dras::benchx::MethodSet methods(cell.scenario);
        methods.train_agents(cell.scenario, kSweepTrainEpisodes,
                             kSweepTrainJobs);
        const auto trace =
            cell.scenario.trace(kSweepTestJobs, cell.trace_seed);
        return dras::benchx::evaluate_all(methods, cell.scenario, trace,
                                          /*jobs=*/1);
      },
      "fig6-sweep");

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    dras::benchx::print_preamble(
        format("Fig. 6 ({}): overall performance, {} seeds",
               scenarios[s].preset.name, seeds),
        scenarios[s], kSweepTestJobs);
    std::vector<std::vector<dras::train::Evaluation>> per_seed;
    for (std::size_t i = 0; i < grid.size(); ++i)
      if (grid[i].scenario_index == s) per_seed.push_back(cell_results[i]);
    const auto bands = dras::benchx::evaluation_bands(per_seed);

    std::cout << format(
        "csv:scenario,method,seeds,avg_wait_s,avg_wait_std,max_wait_s,"
        "max_wait_std,avg_slowdown,avg_slowdown_std,avg_response_s,"
        "avg_response_std,utilization,utilization_std\n");
    std::vector<std::vector<std::string>> table;
    for (const auto& band : bands) {
      table.push_back(
          {band.method,
           format("{:.0f} ± {:.0f}", band.avg_wait.mean,
                  band.avg_wait.stddev),
           format("{:.0f} ± {:.0f}", band.max_wait.mean,
                  band.max_wait.stddev),
           format("{:.2f} ± {:.2f}", band.avg_slowdown.mean,
                  band.avg_slowdown.stddev),
           format("{:.0f} ± {:.0f}", band.avg_response.mean,
                  band.avg_response.stddev),
           format("{:.3f} ± {:.3f}", band.utilization.mean,
                  band.utilization.stddev)});
      std::cout << format(
          "csv:{},{},{},{:.1f},{:.1f},{:.1f},{:.1f},{:.3f},{:.3f},{:.1f},"
          "{:.1f},{:.4f},{:.4f}\n",
          scenarios[s].preset.name, band.method, seeds, band.avg_wait.mean,
          band.avg_wait.stddev, band.max_wait.mean, band.max_wait.stddev,
          band.avg_slowdown.mean, band.avg_slowdown.stddev,
          band.avg_response.mean, band.avg_response.stddev,
          band.utilization.mean, band.utilization.stddev);
    }
    dras::metrics::print_table(
        std::cout,
        {"method", "avg wait (s)", "max wait (s)", "avg slowdown",
         "avg response (s)", "utilization"},
        table);
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  const std::vector<dras::benchx::Scenario> scenarios = {
      dras::benchx::Scenario::theta_mini(6),
      dras::benchx::Scenario::cori_mini(6)};
  if (obs_session.seeds() > 1) {
    run_sweep(scenarios, obs_session.seeds(), obs_session.jobs());
    return 0;
  }
  for (const auto& scenario : scenarios)
    run_scenario(scenario, obs_session.jobs());
  return 0;
}
