// Fig. 7 reproduction: job wait-time distributions by job size and
// execution mode on the Theta-style scenario.
//
// Paper signature: Decima-PG, BinPacking and Random starve large jobs
// (max waits an order of magnitude above FCFS/DRAS); FCFS and DRAS keep
// small- and large-job waits comparable; under FCFS/DRAS almost all large
// jobs run via reservation while small jobs run via backfilling.
// With --seeds N (N > 1) the whole seed grid — each repetition a full
// train-and-evaluate with its own derived curriculum and test-trace
// seeds — runs concurrently over exec::ParallelRunner and the starvation
// table carries mean ± stddev error bars (same sweep contract as Fig. 6:
// --seeds 1 is the original single-run path, byte-identical to before).
#include <iostream>

#include "bench_common.h"
#include "exec/parallel_runner.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "util/format.h"

namespace {

constexpr std::size_t kTrainEpisodes = 30;
constexpr std::size_t kTrainJobs = 500;
constexpr std::size_t kTestJobs = 1500;
constexpr std::uint64_t kTestTraceSeed = 717171;

/// Multi-seed path: per-method max/avg-wait error bars across the seed
/// repetitions (the starvation signature of Fig. 7 with uncertainty).
void run_sweep(const dras::benchx::Scenario& scenario, std::size_t seeds,
               std::size_t jobs) {
  using dras::util::format;
  namespace benchx = dras::benchx;
  const auto grid = benchx::seed_sweep_grid({scenario}, seeds,
                                            kTestTraceSeed);
  dras::exec::ParallelRunner runner(jobs);
  const auto cell_results = runner.map(
      grid.size(),
      [&](std::size_t i) {
        const auto& cell = grid[i];
        benchx::MethodSet methods(cell.scenario);
        methods.train_agents(cell.scenario, kTrainEpisodes, kTrainJobs);
        const auto trace = cell.scenario.trace(kTestJobs, cell.trace_seed);
        return benchx::evaluate_all(methods, cell.scenario, trace,
                                    /*jobs=*/1);
      },
      "fig7-sweep");

  benchx::print_preamble(
      format("Fig. 7: job wait times by size and type, {} seeds", seeds),
      scenario, kTestJobs);
  const auto bands = benchx::evaluation_bands(cell_results);

  std::cout << "csv:method,seeds,avg_wait_s,avg_wait_std,max_wait_s,"
               "max_wait_std,avg_slowdown,avg_slowdown_std\n";
  std::vector<std::vector<std::string>> table;
  for (const auto& band : bands) {
    table.push_back(
        {band.method,
         format("{:.0f} ± {:.0f}", band.avg_wait.mean, band.avg_wait.stddev),
         format("{:.0f} ± {:.0f}", band.max_wait.mean, band.max_wait.stddev),
         format("{:.2f} ± {:.2f}", band.avg_slowdown.mean,
                band.avg_slowdown.stddev)});
    std::cout << format("csv:{},{},{:.1f},{:.1f},{:.1f},{:.1f},{:.3f},"
                        "{:.3f}\n",
                        band.method, seeds, band.avg_wait.mean,
                        band.avg_wait.stddev, band.max_wait.mean,
                        band.max_wait.stddev, band.avg_slowdown.mean,
                        band.avg_slowdown.stddev);
  }
  dras::metrics::print_table(
      std::cout, {"method", "avg wait (s)", "max wait (s)", "avg slowdown"},
      table);

  // Shape check on the means: the non-reserving methods should starve
  // large jobs (max waits well above FCFS/DRAS) across seeds, not just
  // in one lucky repetition.
  double fcfs_max = 0.0, worst_nonreserving_max = 0.0;
  for (const auto& band : bands) {
    if (band.method == "FCFS") fcfs_max = band.max_wait.mean;
    if (band.method == "Decima-PG" || band.method == "BinPacking" ||
        band.method == "Random")
      worst_nonreserving_max =
          std::max(worst_nonreserving_max, band.max_wait.mean);
  }
  std::cout << format(
      "\nshape check (means over {} seeds): FCFS max wait {} vs worst "
      "non-reserving {} ({}x)\n",
      seeds, dras::metrics::format_duration(fcfs_max),
      dras::metrics::format_duration(worst_nonreserving_max),
      format("{:.1f}", worst_nonreserving_max / std::max(fcfs_max, 1.0)));
}

}  // namespace

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(7);
  if (obs_session.seeds() > 1) {
    run_sweep(scenario, obs_session.seeds(), obs_session.jobs());
    return 0;
  }

  benchx::print_preamble("Fig. 7: job wait times by size and type",
                         scenario, kTestJobs);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);
  const auto test_trace = scenario.trace(kTestJobs, 717171);
  const auto evaluations =
      benchx::evaluate_all(methods, scenario, test_trace,
                           obs_session.jobs());

  // Size buckets scaled from the paper's x-axis (128..4096 -> /16).
  const int boundaries[] = {16, 32, 64, 128};

  std::cout << "csv:method,size_bucket,jobs,avg_wait_s,max_wait_s\n";
  double fcfs_max = 0.0, dras_pg_max = 0.0, worst_nonreserving_max = 0.0;
  for (const auto& evaluation : evaluations) {
    const auto groups =
        dras::metrics::by_size_bucket(evaluation.result.jobs, boundaries);
    std::cout << format("\n## {} (max wait {})\n", evaluation.method,
                        dras::metrics::format_duration(
                            evaluation.summary.max_wait));
    std::vector<std::vector<std::string>> table;
    for (const auto& group : groups) {
      if (group.jobs == 0) continue;
      table.push_back({group.label, format("{}", group.jobs),
                       dras::metrics::format_duration(group.avg_wait),
                       dras::metrics::format_duration(group.max_wait)});
      std::cout << format("csv:{},{},{},{:.1f},{:.1f}\n", evaluation.method,
                          group.label, group.jobs, group.avg_wait,
                          group.max_wait);
    }
    dras::metrics::print_table(
        std::cout, {"size", "jobs", "avg wait", "max wait"}, table);

    // Execution-mode counts per size bucket (the colour coding of Fig. 7).
    const auto modes = dras::metrics::by_mode(evaluation.result.jobs);
    std::cout << "modes: ";
    for (const auto& mode : modes)
      std::cout << format("{}={} ", mode.label, mode.jobs);
    std::cout << "\n";

    if (evaluation.method == "FCFS") fcfs_max = evaluation.summary.max_wait;
    if (evaluation.method == "DRAS-PG")
      dras_pg_max = evaluation.summary.max_wait;
    if (evaluation.method == "Decima-PG" ||
        evaluation.method == "BinPacking" || evaluation.method == "Random")
      worst_nonreserving_max =
          std::max(worst_nonreserving_max, evaluation.summary.max_wait);
  }

  std::cout << format(
      "\nshape check: max wait — FCFS {} / DRAS-PG {} vs worst "
      "non-reserving {} ({}x FCFS)\n",
      dras::metrics::format_duration(fcfs_max),
      dras::metrics::format_duration(dras_pg_max),
      dras::metrics::format_duration(worst_nonreserving_max),
      format("{:.1f}", worst_nonreserving_max / std::max(fcfs_max, 1.0)));
  return 0;
}
