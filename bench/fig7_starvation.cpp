// Fig. 7 reproduction: job wait-time distributions by job size and
// execution mode on the Theta-style scenario.
//
// Paper signature: Decima-PG, BinPacking and Random starve large jobs
// (max waits an order of magnitude above FCFS/DRAS); FCFS and DRAS keep
// small- and large-job waits comparable; under FCFS/DRAS almost all large
// jobs run via reservation while small jobs run via backfilling.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(7);
  constexpr std::size_t kTestJobs = 1500;

  benchx::print_preamble("Fig. 7: job wait times by size and type",
                         scenario, kTestJobs);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);
  const auto test_trace = scenario.trace(kTestJobs, 717171);
  const auto evaluations =
      benchx::evaluate_all(methods, scenario, test_trace,
                           obs_session.jobs());

  // Size buckets scaled from the paper's x-axis (128..4096 -> /16).
  const int boundaries[] = {16, 32, 64, 128};

  std::cout << "csv:method,size_bucket,jobs,avg_wait_s,max_wait_s\n";
  double fcfs_max = 0.0, dras_pg_max = 0.0, worst_nonreserving_max = 0.0;
  for (const auto& evaluation : evaluations) {
    const auto groups =
        dras::metrics::by_size_bucket(evaluation.result.jobs, boundaries);
    std::cout << format("\n## {} (max wait {})\n", evaluation.method,
                        dras::metrics::format_duration(
                            evaluation.summary.max_wait));
    std::vector<std::vector<std::string>> table;
    for (const auto& group : groups) {
      if (group.jobs == 0) continue;
      table.push_back({group.label, format("{}", group.jobs),
                       dras::metrics::format_duration(group.avg_wait),
                       dras::metrics::format_duration(group.max_wait)});
      std::cout << format("csv:{},{},{},{:.1f},{:.1f}\n", evaluation.method,
                          group.label, group.jobs, group.avg_wait,
                          group.max_wait);
    }
    dras::metrics::print_table(
        std::cout, {"size", "jobs", "avg wait", "max wait"}, table);

    // Execution-mode counts per size bucket (the colour coding of Fig. 7).
    const auto modes = dras::metrics::by_mode(evaluation.result.jobs);
    std::cout << "modes: ";
    for (const auto& mode : modes)
      std::cout << format("{}={} ", mode.label, mode.jobs);
    std::cout << "\n";

    if (evaluation.method == "FCFS") fcfs_max = evaluation.summary.max_wait;
    if (evaluation.method == "DRAS-PG")
      dras_pg_max = evaluation.summary.max_wait;
    if (evaluation.method == "Decima-PG" ||
        evaluation.method == "BinPacking" || evaluation.method == "Random")
      worst_nonreserving_max =
          std::max(worst_nonreserving_max, evaluation.summary.max_wait);
  }

  std::cout << format(
      "\nshape check: max wait — FCFS {} / DRAS-PG {} vs worst "
      "non-reserving {} ({}x FCFS)\n",
      dras::metrics::format_duration(fcfs_max),
      dras::metrics::format_duration(dras_pg_max),
      dras::metrics::format_duration(worst_nonreserving_max),
      format("{:.1f}", worst_nonreserving_max / std::max(fcfs_max, 1.0)));
  return 0;
}
