// Fig. 8 reproduction: average job wait time grouped by execution mode,
// FCFS vs DRAS-PG vs DRAS-DQL.
//
// Paper signature: compared with FCFS, DRAS reduces the wait of ready and
// backfilled jobs at the cost of slightly longer waits for reserved jobs.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(8);
  constexpr std::size_t kTestJobs = 1500;

  benchx::print_preamble("Fig. 8: wait times by execution mode", scenario,
                         kTestJobs);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);
  const auto test_trace = scenario.trace(kTestJobs, 888888);

  const auto reward = scenario.reward();
  std::vector<dras::sim::Scheduler*> roster = {
      &methods.fcfs(), &methods.dras_pg(), &methods.dras_dql()};

  const auto evaluations = benchx::evaluate_roster(
      roster, scenario.preset.nodes, test_trace, &reward,
      obs_session.jobs());

  std::cout << "csv:method,mode,jobs,avg_wait_s,max_wait_s\n";
  std::vector<std::vector<std::string>> table;
  double fcfs_backfilled_wait = -1.0, dras_backfilled_wait = -1.0;
  for (const auto& evaluation : evaluations) {
    const auto groups = dras::metrics::by_mode(evaluation.result.jobs);
    for (const auto& group : groups) {
      table.push_back({evaluation.method, group.label,
                       format("{}", group.jobs),
                       dras::metrics::format_duration(group.avg_wait),
                       dras::metrics::format_duration(group.max_wait)});
      std::cout << format("csv:{},{},{},{:.1f},{:.1f}\n", evaluation.method,
                          group.label, group.jobs, group.avg_wait,
                          group.max_wait);
      if (group.label == "backfilled") {
        if (evaluation.method == "FCFS")
          fcfs_backfilled_wait = group.avg_wait;
        if (evaluation.method == "DRAS-PG")
          dras_backfilled_wait = group.avg_wait;
      }
    }
  }
  dras::metrics::print_table(
      std::cout, {"method", "mode", "jobs", "avg wait", "max wait"}, table);

  std::cout << format(
      "\nshape check: backfilled-job avg wait — FCFS {:.0f}s vs DRAS-PG "
      "{:.0f}s\n",
      fcfs_backfilled_wait, dras_backfilled_wait);
  return 0;
}
