// Fig. 9 reproduction: adaptation to workload change.
//
// A multi-week test trace with demand surges (weekly load multipliers)
// is scheduled by the static methods (FCFS, Optimization) and by DRAS
// agents that keep updating their parameters online (§V-D).  Printed per
// submit-week: total core-hours (top panel) and average wait per method
// (bottom panel).  Paper signature: the wait-time gap between DRAS and
// the static methods widens in the surge weeks.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(9);
  constexpr std::size_t kTestJobs = 2600;

  benchx::print_preamble("Fig. 9: adaptation to workload change", scenario,
                         kTestJobs);

  // Surge profile: weeks 3-4 and 8 run hot (the paper's demand surges).
  dras::workload::GenerateOptions options;
  options.num_jobs = kTestJobs;
  options.seed = 999999;
  options.weekly_load_profile = {1.0, 1.0, 1.0, 1.8, 1.8,
                                 1.0, 1.0, 1.0, 2.2, 1.0};
  const auto test_trace =
      dras::workload::generate_trace(scenario.model, options);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);
  // Online adaptation: DRAS keeps learning during the test (§V-D).
  methods.dras_pg().set_training(true);
  methods.dras_dql().set_training(true);

  const auto reward = scenario.reward();
  std::vector<dras::sim::Scheduler*> roster = {
      &methods.fcfs(), methods.all()[3] /*Optimization*/,
      &methods.dras_pg(), &methods.dras_dql()};

  // Demand panel (identical for every method).
  std::cout << "csv:week,core_hours_submitted\n";
  {
    dras::sim::Trace sorted = test_trace;
    std::vector<dras::sim::JobRecord> submitted;
    for (const auto& job : sorted) {
      dras::sim::JobRecord rec;
      rec.id = job.id;
      rec.size = job.size;
      rec.submit = job.submit_time;
      rec.start = job.submit_time;
      rec.end = job.submit_time + job.runtime_actual;
      submitted.push_back(rec);
    }
    for (const auto& week : dras::metrics::weekly_series(submitted))
      std::cout << format("csv:{},{:.0f}\n", week.week, week.core_hours);
  }

  std::cout << "\ncsv:method,week,jobs,avg_wait_s\n";
  struct Series {
    std::string method;
    std::vector<dras::metrics::WeekPoint> weeks;
  };
  // Each method evaluates exactly one cell, so online adaptation (the
  // clone keeps learning inside its own cell) yields identical output
  // under any --jobs N.
  const auto evaluations = benchx::evaluate_roster(
      roster, scenario.preset.nodes, test_trace, &reward,
      obs_session.jobs());
  std::vector<Series> series;
  for (const auto& evaluation : evaluations) {
    Series s;
    s.method = evaluation.method;
    s.weeks = dras::metrics::weekly_series(evaluation.result.jobs);
    for (const auto& week : s.weeks)
      std::cout << format("csv:{},{},{},{:.1f}\n", s.method, week.week,
                          week.jobs, week.avg_wait);
    series.push_back(std::move(s));
  }

  // Shape check: compare each online-learning DRAS agent against FCFS in
  // the calm weeks (0-2, 7) versus the surge-affected weeks (3-6, 8-9):
  // the paper's claim is that DRAS's advantage grows when demand surges.
  const auto mean_wait = [&](const Series& s,
                             std::initializer_list<std::size_t> weeks) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& point : s.weeks) {
      for (const std::size_t w : weeks) {
        if (point.week == w) {
          sum += point.avg_wait;
          ++n;
        }
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  };
  const std::initializer_list<std::size_t> calm = {0, 1, 2, 7};
  const std::initializer_list<std::size_t> surge = {3, 4, 5, 6, 8, 9};
  for (const std::size_t agent : {2u, 3u}) {
    const double gap_calm =
        mean_wait(series[0], calm) - mean_wait(series[agent], calm);
    const double gap_surge =
        mean_wait(series[0], surge) - mean_wait(series[agent], surge);
    std::cout << format(
        "\nshape check: FCFS-minus-{} mean weekly wait gap — calm {:.0f}s, "
        "surge {:.0f}s",
        series[agent].method, gap_calm, gap_surge);
  }
  std::cout << "\n";
  return 0;
}
