// Failure-aware scheduling: wasted node-hours under rising fault rates.
//
// Not a paper figure — the robustness extension's headline experiment.
// Every method schedules the same test trace on the same machine while
// the simulator injects exponential per-node failures (sim/fault.h):
// the per-node MTBF sweeps from off through 2000 h, 500 h and 125 h
// (on 272 nodes that is one machine-level failure every ~7.4 h, ~1.8 h
// and ~28 min), jobs checkpoint every 15 compute-minutes over a shared
// I/O channel, and killed jobs are requeued.  The rates are chosen so
// the largest (256-node) jobs can still bank checkpoints between hits;
// much past the highest rate the workload livelocks — jobs are killed
// faster than they can reach a checkpoint boundary and the trace never
// drains.  Reported per method x fault rate: node failures observed,
// job kills, requeues, wasted node-hours (work destroyed between the
// last durable checkpoint and the kill), mean slowdown and utilization.
// The failure stream is seeded identically for every cell of a rate, so
// methods face the same failure process; which jobs die depends on each
// scheduler's own packing.
//
// Gate (consumed by the CI failure-drill job): at the highest fault
// rate, the better DRAS agent must not destroy more work than the
// median heuristic — a learned scheduler that buys throughput by piling
// work onto soon-to-fail capacity would show up here.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/format.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(13);
  constexpr std::size_t kTestJobs = 900;

  benchx::print_preamble(
      "Failure waste: DRAS vs heuristics under node faults", scenario,
      kTestJobs);

  const auto test_trace = scenario.trace(kTestJobs, 424242);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 24, 400);

  const auto reward = scenario.reward();
  // Per-node MTBF sweep, hours; 0 = fault injection off (the fault-free
  // column doubles as a live check that --mtbf 0 changes nothing).
  const std::vector<double> mtbf_hours = {0.0, 2000.0, 500.0, 125.0};

  struct Cell {
    std::string method;
    std::uint64_t failures = 0;
    double waste_h = 0.0;
  };
  std::vector<Cell> highest;  // cells of the highest fault rate

  std::cout << "csv:method,mtbf_h,failures,kills,requeues,"
               "wasted_node_hours,avg_slowdown,utilization\n";
  for (const double mtbf_h : mtbf_hours) {
    dras::train::EvalOptions options;
    options.reward = &reward;
    if (mtbf_h > 0.0) {
      options.faults.mtbf = mtbf_h * 3600.0;
      options.faults.repair_time = 1800.0;
      options.faults.ckpt_interval = 900.0;
      options.faults.requeue = dras::sim::RequeuePolicy::Requeue;
      options.faults.seed =
          dras::util::derive_seed(scenario.seed, "bench-fault");
    }
    const auto evaluations = benchx::evaluate_roster(
        methods.all(), scenario.preset.nodes, test_trace, options,
        obs_session.jobs());
    for (const auto& evaluation : evaluations) {
      const auto& faults = evaluation.result.faults;
      const double waste_h = faults.wasted_node_seconds / 3600.0;
      std::cout << format(
          "csv:{},{:.0f},{},{},{},{:.2f},{:.2f},{:.3f}\n",
          evaluation.method, mtbf_h, faults.node_failures, faults.job_kills,
          faults.requeues, waste_h, evaluation.summary.avg_slowdown,
          evaluation.summary.utilization);
      if (mtbf_h == mtbf_hours.back())
        highest.push_back({evaluation.method, faults.node_failures, waste_h});
    }
  }

  // Roster order is fixed (MethodSet::all): five heuristics, then
  // DRAS-PG and DRAS-DQL.
  std::vector<double> heuristic_waste;
  for (std::size_t i = 0; i + 2 < highest.size(); ++i)
    heuristic_waste.push_back(highest[i].waste_h);
  std::sort(heuristic_waste.begin(), heuristic_waste.end());
  const double heuristic_median =
      heuristic_waste[heuristic_waste.size() / 2];
  const Cell& pg = highest[highest.size() - 2];
  const Cell& dql = highest[highest.size() - 1];
  const Cell& best_dras = pg.waste_h <= dql.waste_h ? pg : dql;
  const bool ok = best_dras.waste_h <= heuristic_median;
  std::cout << format(
      "\ngate: failure-waste at mtbf {:.0f}h — dras {} wasted {:.2f} "
      "node-hours, heuristic median {:.2f} — {}\n",
      mtbf_hours.back(), best_dras.method, best_dras.waste_h,
      heuristic_median, ok ? "ok" : "VIOLATED");

  if (auto* recorder = obs_session.run_recorder()) {
    // First-class failure metrics for dras_report --compare (both
    // regress upward; see obs/report.h).
    recorder->set_stat("wasted_node_hours", best_dras.waste_h);
    recorder->set_stat("failures",
                       static_cast<double>(best_dras.failures));
    recorder->set_final_score(-best_dras.waste_h);
  }
  return 0;
}
