// Fairness/utilization frontier: multi-tenant scheduling under a skewed
// (Zipf) user mix on the Theta-style scenario.
//
// Roster: FCFS (the unfair baseline), the three fair-share heuristics
// (User-RR, DRR, WFQ — src/sched/fair_share.h), DRAS-PG, and DRAS-PG
// trained with the fairness reward term + fairness feature rows
// (DESIGN.md §12).  For every policy we report Jain's fairness index over
// per-user service and over per-user slowdowns, the worst per-user mean
// slowdown, and the classic §IV-E metrics — the frontier being how much
// utilization/wait each policy gives up for its fairness.
//
// Expected shape: FCFS sits bottom-right (high utilization, low Jain
// under a flooding user); the fair-share heuristics raise Jain at a small
// utilization cost; the fairness-shaped DRAS agent lands between its
// unshaped twin and the heuristics.
//
// Every repetition of --seeds N (default 1) is a full train-and-evaluate
// over a (seed-derived) curriculum and test trace, run concurrently over
// exec::ParallelRunner; tables carry mean ± stddev across repetitions.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "exec/parallel_runner.h"
#include "metrics/fairness.h"
#include "metrics/report.h"
#include "sched/fair_share.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

namespace benchx = dras::benchx;
using dras::util::format;

constexpr std::size_t kTrainEpisodes = 24;
constexpr std::size_t kTrainJobs = 400;
constexpr std::size_t kTestJobs = 1200;
constexpr std::uint64_t kTestTraceSeed = 424242;
constexpr int kUsers = 8;
constexpr double kUserZipf = 1.2;
constexpr double kFairnessWeight = 0.5;

struct PolicyPoint {
  std::string method;
  double jain_service = 0.0;
  double jain_slowdown = 0.0;
  double max_user_slowdown = 0.0;
  double avg_wait = 0.0;
  double utilization = 0.0;
};

/// One full repetition: train both DRAS-PG variants on the multi-user
/// scenario, then evaluate the whole roster on the same test trace.
std::vector<PolicyPoint> run_cell(const benchx::Scenario& scenario,
                                  std::uint64_t trace_seed) {
  const auto test_trace = scenario.trace(kTestJobs, trace_seed);
  const auto reward = scenario.reward();

  auto plain_cfg = scenario.preset.agent_config(
      dras::core::AgentKind::PG, dras::util::derive_seed(scenario.seed, "pg"));
  dras::core::DrasAgent dras_pg(plain_cfg);
  benchx::train_dras_agent(dras_pg, scenario, kTrainEpisodes, kTrainJobs);

  auto fair_cfg = scenario.preset.agent_config(
      dras::core::AgentKind::PG,
      dras::util::derive_seed(scenario.seed, "pg-fair"));
  fair_cfg.reward_weights.fairness = kFairnessWeight;
  fair_cfg.fairness_features = true;
  dras::core::DrasAgent dras_fair(fair_cfg);
  benchx::train_dras_agent(dras_fair, scenario, kTrainEpisodes, kTrainJobs);

  dras::sched::FcfsEasy fcfs;
  dras::sched::UserRoundRobin user_rr;
  dras::sched::DeficitRoundRobin drr;
  dras::sched::WeightedFairQueuing wfq;
  const std::vector<std::pair<std::string, dras::sim::Scheduler*>> roster = {
      {"FCFS", &fcfs},           {"User-RR", &user_rr},
      {"DRR", &drr},             {"WFQ", &wfq},
      {"DRAS-PG", &dras_pg},     {"DRAS-PG+fair", &dras_fair}};

  std::vector<PolicyPoint> points;
  for (const auto& [name, policy] : roster) {
    const auto evaluation = dras::train::evaluate(
        scenario.preset.nodes, test_trace, *policy, &reward);
    const auto fairness =
        dras::metrics::fairness_summary(evaluation.result.jobs);
    points.push_back({name, fairness.jain_service, fairness.jain_slowdown,
                      fairness.max_user_slowdown, evaluation.summary.avg_wait,
                      evaluation.summary.utilization});
  }
  return points;
}

struct Band {
  double mean = 0.0;
  double stddev = 0.0;
};

Band band_of(const std::vector<std::vector<PolicyPoint>>& per_seed,
             std::size_t method, double PolicyPoint::*field) {
  Band band;
  const auto n = static_cast<double>(per_seed.size());
  for (const auto& seed_points : per_seed)
    band.mean += seed_points[method].*field;
  band.mean /= n;
  if (per_seed.size() > 1) {
    double ss = 0.0;
    for (const auto& seed_points : per_seed) {
      const double d = seed_points[method].*field - band.mean;
      ss += d * d;
    }
    band.stddev = std::sqrt(ss / (n - 1.0));
  }
  return band;
}

}  // namespace

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);

  auto base = benchx::Scenario::theta_mini(12);
  base.model = base.model.with_users(kUsers, kUserZipf);

  benchx::print_preamble(
      format("Fairness/utilization frontier ({} users, zipf {}, {} seeds)",
             kUsers, kUserZipf, obs_session.seeds()),
      base, kTestJobs);

  // Seed grid over the single scenario: repetition 0 keeps the original
  // seeds (so --seeds 1 is the canonical single run), further
  // repetitions derive decorrelated curriculum + trace streams.
  const auto grid =
      benchx::seed_sweep_grid({base}, obs_session.seeds(), kTestTraceSeed);
  dras::exec::ParallelRunner runner(obs_session.jobs());
  const auto per_seed = runner.map(
      grid.size(),
      [&](std::size_t i) {
        return run_cell(grid[i].scenario, grid[i].trace_seed);
      },
      "fig-fairness");

  std::cout << "csv:method,seeds,jain_service,jain_service_std,"
               "jain_slowdown,jain_slowdown_std,max_user_slowdown,"
               "max_user_slowdown_std,avg_wait_s,avg_wait_std,utilization,"
               "utilization_std\n";
  std::vector<std::vector<std::string>> table;
  const std::size_t methods = per_seed.front().size();
  for (std::size_t m = 0; m < methods; ++m) {
    const std::string& name = per_seed.front()[m].method;
    const Band jain = band_of(per_seed, m, &PolicyPoint::jain_service);
    const Band jain_sd = band_of(per_seed, m, &PolicyPoint::jain_slowdown);
    const Band worst = band_of(per_seed, m, &PolicyPoint::max_user_slowdown);
    const Band wait = band_of(per_seed, m, &PolicyPoint::avg_wait);
    const Band util = band_of(per_seed, m, &PolicyPoint::utilization);
    table.push_back(
        {name, format("{:.3f} ± {:.3f}", jain.mean, jain.stddev),
         format("{:.3f} ± {:.3f}", jain_sd.mean, jain_sd.stddev),
         format("{:.2f} ± {:.2f}", worst.mean, worst.stddev),
         format("{:.0f} ± {:.0f}", wait.mean, wait.stddev),
         format("{:.3f} ± {:.3f}", util.mean, util.stddev)});
    std::cout << format(
        "csv:{},{},{:.4f},{:.4f},{:.4f},{:.4f},{:.3f},{:.3f},{:.1f},{:.1f},"
        "{:.4f},{:.4f}\n",
        name, obs_session.seeds(), jain.mean, jain.stddev, jain_sd.mean,
        jain_sd.stddev, worst.mean, worst.stddev, wait.mean, wait.stddev,
        util.mean, util.stddev);
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "jain (service)", "jain (slowdown)", "max user slowdown",
       "avg wait (s)", "utilization"},
      table);

  // The frontier, one line per policy: fairness gained vs utilization
  // given up relative to FCFS (roster position 0).
  const Band fcfs_jain = band_of(per_seed, 0, &PolicyPoint::jain_slowdown);
  const Band fcfs_util = band_of(per_seed, 0, &PolicyPoint::utilization);
  std::cout << "\nfrontier (vs FCFS):\n";
  for (std::size_t m = 1; m < methods; ++m) {
    const Band jain_sd = band_of(per_seed, m, &PolicyPoint::jain_slowdown);
    const Band util = band_of(per_seed, m, &PolicyPoint::utilization);
    std::cout << format("  {}: jain {:+.3f}, utilization {:+.3f}\n",
                        per_seed.front()[m].method,
                        jain_sd.mean - fcfs_jain.mean,
                        util.mean - fcfs_util.mean);
  }
  return 0;
}
