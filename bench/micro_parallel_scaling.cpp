// Micro-benchmark: parallel evaluation + rollout-training scaling.
//
// Part 1 evaluates a fixed (8 traces x 1 policy) grid with the exec
// subsystem at --jobs 1/2/4/8 and reports wall time and speedup per
// worker count.  Part 2 trains a small DRAS-PG agent through the
// data-parallel rollout engine at --rollout-workers 1/2/4/8 with a fixed
// round batch of 4, so every worker count computes identical math.
// Before timing, every parallel result is checked against the serial
// baseline — cell-by-cell for the evaluation grid, parameter-for-
// parameter for the trained networks; any divergence is a determinism
// bug and the bench exits non-zero.  Emits one JSON line per
// configuration alongside the human-readable tables, matching the other
// micro benches' output style.
//
// Telemetry stays enabled throughout so the exec/rollout HDR histograms
// fill in: each configuration also reports the p50/p99 per-task wall
// time (evaluation cells from eval.task_wall_s, rollout slots from
// rollout.slot_wall_s), making tail latency per worker count visible
// next to the aggregate speedup.  Part 3 measures the batched network
// forward (nn::Network::forward_batch, the kernel under the batched PG
// update and the serving path) against a serial forward loop, with the
// same bit-identity check per batched row.
#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/dras_agent.h"
#include "core/presets.h"
#include "exec/parallel_evaluator.h"
#include "metrics/report.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "rollout/rollout_pool.h"
#include "sched/fcfs_easy.h"
#include "train/curriculum.h"
#include "train/trainer.h"
#include "util/format.h"
#include "util/rng.h"
#include "workload/models.h"
#include "workload/synthetic.h"

namespace {

using dras::util::format;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool same_evaluation(const dras::train::Evaluation& a,
                     const dras::train::Evaluation& b) {
  if (a.method != b.method || a.total_reward != b.total_reward ||
      a.summary.jobs != b.summary.jobs ||
      a.summary.avg_wait != b.summary.avg_wait ||
      a.summary.max_wait != b.summary.max_wait ||
      a.summary.utilization != b.summary.utilization ||
      a.result.unfinished_jobs != b.result.unfinished_jobs ||
      a.result.jobs.size() != b.result.jobs.size())
    return false;
  for (std::size_t i = 0; i < a.result.jobs.size(); ++i) {
    const auto& ja = a.result.jobs[i];
    const auto& jb = b.result.jobs[i];
    if (ja.id != jb.id || ja.start != jb.start || ja.end != jb.end ||
        ja.mode != jb.mode)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  constexpr std::size_t kGrid = 8;
  constexpr int kRepetitions = 3;
  // Per-task wall-time percentiles come from the registry's HDR
  // histograms; reset between worker counts so each row reports only
  // its own tasks.
  dras::obs::set_enabled(true);
  auto& eval_task_hdr =
      dras::obs::Registry::global().hdr("eval.task_wall_s");
  auto& rollout_slot_hdr =
      dras::obs::Registry::global().hdr("rollout.slot_wall_s");
  const auto model = dras::workload::theta_mini_workload();
  const int nodes = model.system_nodes;

  // Eight independent traces; one cheap deterministic policy per cell.
  std::vector<dras::sim::Trace> traces;
  for (std::size_t t = 0; t < kGrid; ++t) {
    dras::workload::GenerateOptions options;
    options.num_jobs = 1500;
    options.seed = dras::util::derive_seed(42, format("scaling-{}", t));
    traces.push_back(dras::workload::generate_trace(model, options));
  }
  std::vector<const dras::sim::Trace*> trace_ptrs;
  for (const auto& trace : traces) trace_ptrs.push_back(&trace);
  dras::sched::FcfsEasy fcfs;
  std::vector<dras::sim::Scheduler*> policies = {&fcfs};

  const auto run_grid = [&](std::size_t jobs) {
    return dras::exec::ParallelEvaluator(jobs).evaluate_grid(
        nodes, trace_ptrs, policies);
  };

  std::cout << format("parallel evaluation scaling: {} cells, {} nodes, "
                      "best of {} repetitions\n\n",
                      kGrid, nodes, kRepetitions);

  const auto baseline = run_grid(1);  // warm-up + identity reference

  bool all_identical = true;
  double serial_best = 0.0;
  std::vector<std::vector<std::string>> table;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    double best = 0.0;
    bool identical = true;
    eval_task_hdr.reset();
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const double start = now_seconds();
      const auto evaluations = run_grid(jobs);
      const double elapsed = now_seconds() - start;
      if (rep == 0 || elapsed < best) best = elapsed;
      if (evaluations.size() != baseline.size()) {
        identical = false;
      } else {
        for (std::size_t cell = 0; cell < evaluations.size(); ++cell)
          identical &= same_evaluation(evaluations[cell], baseline[cell]);
      }
    }
    if (jobs == 1) serial_best = best;
    const double speedup = best > 0.0 ? serial_best / best : 0.0;
    const double task_p50_ms = eval_task_hdr.percentile(50.0) * 1e3;
    const double task_p99_ms = eval_task_hdr.percentile(99.0) * 1e3;
    all_identical &= identical;
    table.push_back({format("{}", jobs), format("{:.3f}", best),
                     format("{:.2f}x", speedup),
                     format("{:.2f}", task_p50_ms),
                     format("{:.2f}", task_p99_ms),
                     identical ? "yes" : "NO"});
    std::cout << format(
        "{{\"name\":\"parallel_eval_grid/jobs:{}\",\"grid\":{},\"jobs\":{},"
        "\"best_seconds\":{:.6f},\"speedup\":{:.3f},\"task_p50_ms\":{:.3f},"
        "\"task_p99_ms\":{:.3f},\"identical\":{}}}\n",
        jobs, kGrid, jobs, best, speedup, task_p50_ms, task_p99_ms,
        identical ? "true" : "false");
  }

  std::cout << "\n";
  dras::metrics::print_table(
      std::cout,
      {"jobs", "best seconds", "speedup", "p50 task ms", "p99 task ms",
       "identical"},
      table);

  // --- Part 2: rollout-training scaling. ---
  constexpr std::size_t kTrainEpisodes = 8;
  constexpr std::size_t kRolloutBatch = 4;
  const auto preset = dras::core::theta_mini();
  std::vector<dras::train::Jobset> jobsets;
  for (std::size_t e = 0; e < kTrainEpisodes; ++e) {
    dras::workload::GenerateOptions options;
    options.num_jobs = 200;
    options.seed = dras::util::derive_seed(7, format("rollout-train-{}", e));
    jobsets.push_back(dras::train::Jobset{
        format("rollout-train-{}", e), dras::train::JobsetPhase::Synthetic,
        dras::workload::generate_trace(model, options)});
  }

  // Train from scratch through the rollout engine; returns the final
  // parameters.  `workers` is a pure throughput knob — the batch (the
  // math knob) stays fixed at kRolloutBatch.
  const auto train_rollout = [&](std::size_t workers) {
    dras::core::DrasAgent agent(preset.agent_config(
        dras::core::AgentKind::PG,
        dras::util::derive_seed(7, "rollout-scaling")));
    dras::rollout::RolloutPool pool({.workers = workers,
                                     .batch = kRolloutBatch});
    dras::train::Curriculum curriculum(jobsets);
    dras::train::TrainerOptions trainer_options;
    trainer_options.validate_each_episode = false;
    dras::train::Trainer trainer(agent, preset.nodes, {}, trainer_options);
    dras::train::RunOptions run_options;
    run_options.rollout = &pool;
    (void)trainer.run(curriculum, run_options);
    const auto params = agent.network().parameters();
    return std::vector<float>(params.begin(), params.end());
  };

  std::cout << format(
      "\nrollout training scaling: {} episodes, batch {}, best of {} "
      "repetitions\n\n",
      kTrainEpisodes, kRolloutBatch, kRepetitions);

  const auto params_baseline = train_rollout(1);
  bool all_params_identical = true;
  double train_serial_best = 0.0;
  std::vector<std::vector<std::string>> train_table;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    double best = 0.0;
    bool identical = true;
    rollout_slot_hdr.reset();
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const double start = now_seconds();
      const auto params = train_rollout(workers);
      const double elapsed = now_seconds() - start;
      if (rep == 0 || elapsed < best) best = elapsed;
      identical &= params.size() == params_baseline.size() &&
                   std::memcmp(params.data(), params_baseline.data(),
                               params.size() * sizeof(float)) == 0;
    }
    if (workers == 1) train_serial_best = best;
    const double speedup = best > 0.0 ? train_serial_best / best : 0.0;
    const double slot_p50_ms = rollout_slot_hdr.percentile(50.0) * 1e3;
    const double slot_p99_ms = rollout_slot_hdr.percentile(99.0) * 1e3;
    all_params_identical &= identical;
    train_table.push_back({format("{}", workers), format("{:.3f}", best),
                           format("{:.2f}x", speedup),
                           format("{:.2f}", slot_p50_ms),
                           format("{:.2f}", slot_p99_ms),
                           identical ? "yes" : "NO"});
    std::cout << format(
        "{{\"name\":\"rollout_training/workers:{}\",\"episodes\":{},"
        "\"batch\":{},\"workers\":{},\"best_seconds\":{:.6f},"
        "\"speedup\":{:.3f},\"slot_p50_ms\":{:.3f},\"slot_p99_ms\":{:.3f},"
        "\"identical\":{}}}\n",
        workers, kTrainEpisodes, kRolloutBatch, workers, best, speedup,
        slot_p50_ms, slot_p99_ms, identical ? "true" : "false");
  }

  std::cout << "\n";
  dras::metrics::print_table(
      std::cout,
      {"workers", "best seconds", "speedup", "p50 slot ms", "p99 slot ms",
       "identical"},
      train_table);

  // --- Part 3: batched network forward. ---
  // The PG update and the serving path both route multi-sample windows
  // through nn::Network::forward_batch (gemm_batch) instead of a serial
  // forward loop.  Measure the speedup per batch size and verify the
  // batched outputs stay bit-identical to per-sample forward() — the
  // guarantee the batched PG update rides on.
  std::cout << format("\nbatched forward scaling: best of {} repetitions\n\n",
                      kRepetitions);
  dras::nn::NetworkConfig net_cfg;
  net_cfg.input_rows = 1024;
  net_cfg.fc1 = 256;
  net_cfg.fc2 = 128;
  net_cfg.outputs = 32;
  dras::util::Rng net_rng(321);
  dras::nn::Network net(net_cfg, net_rng);

  bool all_rows_identical = true;
  double per_sample_best_per_row = 0.0;
  std::vector<std::vector<std::string>> fwd_table;
  for (const std::size_t batch : {1u, 4u, 16u, 64u}) {
    std::vector<float> inputs(batch * net_cfg.input_size());
    for (float& v : inputs)
      v = static_cast<float>(net_rng.uniform(-1.0, 1.0));
    std::vector<float> outputs(batch * net_cfg.outputs);
    const int iterations = static_cast<int>(256 / batch);

    // Identity first: every batched row equals the per-sample forward.
    net.forward_batch(inputs, batch, outputs);
    bool identical = true;
    for (std::size_t b = 0; b < batch; ++b) {
      const auto row = std::span<const float>(inputs).subspan(
          b * net_cfg.input_size(), net_cfg.input_size());
      const auto expected = net.forward(row);
      identical &= std::memcmp(outputs.data() + b * net_cfg.outputs,
                               expected.data(),
                               net_cfg.outputs * sizeof(float)) == 0;
    }
    all_rows_identical &= identical;

    double serial_best_s = 0.0, batched_best_s = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      double start = now_seconds();
      for (int it = 0; it < iterations; ++it)
        for (std::size_t b = 0; b < batch; ++b)
          (void)net.forward(std::span<const float>(inputs).subspan(
              b * net_cfg.input_size(), net_cfg.input_size()));
      const double serial_s = now_seconds() - start;
      start = now_seconds();
      for (int it = 0; it < iterations; ++it)
        net.forward_batch(inputs, batch, outputs);
      const double batched_s = now_seconds() - start;
      if (rep == 0 || serial_s < serial_best_s) serial_best_s = serial_s;
      if (rep == 0 || batched_s < batched_best_s) batched_best_s = batched_s;
    }
    const double rows = static_cast<double>(iterations) *
                        static_cast<double>(batch);
    const double serial_us = serial_best_s / rows * 1e6;
    const double batched_us = batched_best_s / rows * 1e6;
    if (batch == 1) per_sample_best_per_row = batched_us;
    const double speedup =
        batched_us > 0.0 ? serial_us / batched_us : 0.0;
    fwd_table.push_back({format("{}", batch), format("{:.2f}", serial_us),
                         format("{:.2f}", batched_us),
                         format("{:.2f}x", speedup),
                         identical ? "yes" : "NO"});
    std::cout << format(
        "{{\"name\":\"forward_batch/batch:{}\",\"batch\":{},"
        "\"serial_us_per_row\":{:.3f},\"batched_us_per_row\":{:.3f},"
        "\"speedup\":{:.3f},\"identical\":{}}}\n",
        batch, batch, serial_us, batched_us, speedup,
        identical ? "true" : "false");
  }
  (void)per_sample_best_per_row;

  std::cout << "\n";
  dras::metrics::print_table(
      std::cout,
      {"batch", "serial µs/row", "batched µs/row", "speedup", "identical"},
      fwd_table);

  if (!all_identical) {
    std::cerr << "\nFAIL: parallel results diverged from the serial "
                 "baseline\n";
    return 1;
  }
  if (!all_params_identical) {
    std::cerr << "\nFAIL: rollout-trained parameters diverged from the "
                 "single-worker baseline\n";
    return 1;
  }
  if (!all_rows_identical) {
    std::cerr << "\nFAIL: batched forward rows diverged from per-sample "
                 "forward()\n";
    return 1;
  }
  std::cout << "\nall parallel results bit-identical to --jobs 1; all "
               "rollout-trained parameters bit-identical to workers=1; all "
               "batched forward rows bit-identical to forward()\n";
  return 0;
}
