// §V-E reproduction: runtime overhead of the DRAS agents.
//
// The paper reports, on a quad-core desktop, < 1 s per DRAS-PG network
// parameter update and < 2 s per DRAS-DQL update at full Theta scale,
// versus the 15-30 s decision budget of production schedulers.  These
// benchmarks measure the same operations with our networks at the paper's
// full-scale dimensions (Table III) and at the mini scale used by the
// trace-driven benches.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "core/dql_policy.h"
#include "core/pg_policy.h"
#include "core/presets.h"
#include "util/rng.h"

namespace {

using dras::core::DQLConfig;
using dras::core::DQLPolicy;
using dras::core::PGConfig;
using dras::core::PGPolicy;

PGPolicy& pg_policy(const dras::core::SystemPreset& preset) {
  static std::map<std::string, std::unique_ptr<PGPolicy>> cache;
  auto& slot = cache[preset.name];
  if (!slot) {
    PGConfig cfg;
    cfg.net = preset.pg_network();
    slot = std::make_unique<PGPolicy>(cfg, 1);
  }
  return *slot;
}

DQLPolicy& dql_policy(const dras::core::SystemPreset& preset) {
  static std::map<std::string, std::unique_ptr<DQLPolicy>> cache;
  auto& slot = cache[preset.name];
  if (!slot) {
    DQLConfig cfg;
    cfg.net = preset.dql_network();
    slot = std::make_unique<DQLPolicy>(cfg, 1);
  }
  return *slot;
}

std::vector<float> random_state(std::size_t size, std::uint64_t seed) {
  dras::util::Rng rng(seed);
  std::vector<float> state(size);
  for (auto& v : state) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return state;
}

// One scheduling decision: a single forward pass over the window state.
void BM_PGDecision(benchmark::State& state,
                   const dras::core::SystemPreset& preset) {
  auto& policy = pg_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.greedy_action(input, preset.window));
  }
}

// One scheduling decision for DQL: W forward passes (one per window job).
void BM_DQLDecision(benchmark::State& state,
                    const dras::core::SystemPreset& preset) {
  auto& policy = dql_policy(preset);
  std::vector<std::vector<float>> window;
  for (std::size_t i = 0; i < preset.window; ++i)
    window.push_back(
        random_state(policy.network().config().input_size(), 11 + i));
  dras::util::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.select_action(window, rng, /*explore=*/false));
  }
}

// One network parameter update over a 10-instance batch (~20 actions),
// the quantity §V-E bounds at < 1 s (PG) / < 2 s (DQL).
void BM_PGUpdate(benchmark::State& state,
                 const dras::core::SystemPreset& preset) {
  auto& policy = pg_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 17);
  for (auto _ : state) {
    for (int k = 0; k < 20; ++k)
      policy.record(input, preset.window, k % preset.window,
                    k % 2 == 0 ? 1.0 : -1.0);
    policy.update();
  }
}

void BM_DQLUpdate(benchmark::State& state,
                  const dras::core::SystemPreset& preset) {
  auto& policy = dql_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 19);
  for (auto _ : state) {
    for (int k = 0; k < 20; ++k)
      policy.record({input, input}, k % 2, k % 2 == 0 ? 1.0 : -1.0);
    policy.update();
  }
}

}  // namespace

// Full paper scale (Theta, Table III) — the §V-E claim.
BENCHMARK_CAPTURE(BM_PGDecision, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK_CAPTURE(BM_DQLDecision, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_PGUpdate, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK_CAPTURE(BM_DQLUpdate, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Mini scale used by the trace-driven benches.
BENCHMARK_CAPTURE(BM_PGDecision, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DQLDecision, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PGUpdate, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DQLUpdate, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
