// §V-E reproduction: runtime overhead of the DRAS agents — plus the
// overhead of the obs/ telemetry subsystem itself.
//
// The paper reports, on a quad-core desktop, < 1 s per DRAS-PG network
// parameter update and < 2 s per DRAS-DQL update at full Theta scale,
// versus the 15-30 s decision budget of production schedulers.  These
// benchmarks measure the same operations with our networks at the paper's
// full-scale dimensions (Table III) and at the mini scale used by the
// trace-driven benches.
//
// The telemetry section quantifies the instrumentation cost added to the
// simulator event loop: per-op cost of disabled/enabled counters,
// histograms, scoped timers, HDR percentile histograms and hierarchical
// spans, full simulator runs with telemetry off vs fully on (registry +
// tracer into a null sink), and — printed after the benchmark table —
// two budget estimates: the compiled-in-but-disabled overhead (≤2% for
// the simulator counter gates, ≤0.5% for the span/hdr observatory) and
// the fully-enabled span + hdr overhead on the real NN hot path (≤2%).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "core/dql_policy.h"
#include "core/pg_policy.h"
#include "core/presets.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sched/fcfs_easy.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/models.h"
#include "workload/synthetic.h"

namespace {

using dras::core::DQLConfig;
using dras::core::DQLPolicy;
using dras::core::PGConfig;
using dras::core::PGPolicy;

PGPolicy& pg_policy(const dras::core::SystemPreset& preset) {
  static std::map<std::string, std::unique_ptr<PGPolicy>> cache;
  auto& slot = cache[preset.name];
  if (!slot) {
    PGConfig cfg;
    cfg.net = preset.pg_network();
    slot = std::make_unique<PGPolicy>(cfg, 1);
  }
  return *slot;
}

DQLPolicy& dql_policy(const dras::core::SystemPreset& preset) {
  static std::map<std::string, std::unique_ptr<DQLPolicy>> cache;
  auto& slot = cache[preset.name];
  if (!slot) {
    DQLConfig cfg;
    cfg.net = preset.dql_network();
    slot = std::make_unique<DQLPolicy>(cfg, 1);
  }
  return *slot;
}

std::vector<float> random_state(std::size_t size, std::uint64_t seed) {
  dras::util::Rng rng(seed);
  std::vector<float> state(size);
  for (auto& v : state) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return state;
}

// One scheduling decision: a single forward pass over the window state.
void BM_PGDecision(benchmark::State& state,
                   const dras::core::SystemPreset& preset) {
  auto& policy = pg_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.greedy_action(input, preset.window));
  }
}

// One scheduling decision for DQL: W forward passes (one per window job).
void BM_DQLDecision(benchmark::State& state,
                    const dras::core::SystemPreset& preset) {
  auto& policy = dql_policy(preset);
  std::vector<std::vector<float>> window;
  for (std::size_t i = 0; i < preset.window; ++i)
    window.push_back(
        random_state(policy.network().config().input_size(), 11 + i));
  dras::util::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        policy.select_action(window, rng, /*explore=*/false));
  }
}

// One network parameter update over a 10-instance batch (~20 actions),
// the quantity §V-E bounds at < 1 s (PG) / < 2 s (DQL).
void BM_PGUpdate(benchmark::State& state,
                 const dras::core::SystemPreset& preset) {
  auto& policy = pg_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 17);
  for (auto _ : state) {
    for (int k = 0; k < 20; ++k)
      policy.record(input, preset.window, k % preset.window,
                    k % 2 == 0 ? 1.0 : -1.0);
    policy.update();
  }
}

void BM_DQLUpdate(benchmark::State& state,
                  const dras::core::SystemPreset& preset) {
  auto& policy = dql_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 19);
  for (auto _ : state) {
    for (int k = 0; k < 20; ++k)
      policy.record({input, input}, k % 2, k % 2 == 0 ? 1.0 : -1.0);
    policy.update();
  }
}

// ---------------------------------------------------------------------------
// Telemetry (src/obs) instrumentation cost.

dras::sim::Trace overhead_trace(std::size_t jobs) {
  dras::workload::GenerateOptions options;
  options.num_jobs = jobs;
  options.seed = 97;
  return dras::workload::generate_trace(
      dras::workload::theta_mini_workload(), options);
}

// Per-op cost of a counter increment with telemetry disabled — the price
// every instrumentation site pays on the hot path when nothing listens.
void BM_ObsCounterAdd_Disabled(benchmark::State& state) {
  dras::obs::set_enabled(false);
  auto& counter =
      dras::obs::Registry::global().counter("bench.overhead.counter");
  for (auto _ : state) counter.add();
}

void BM_ObsCounterAdd_Enabled(benchmark::State& state) {
  dras::obs::set_enabled(true);
  auto& counter =
      dras::obs::Registry::global().counter("bench.overhead.counter");
  for (auto _ : state) counter.add();
  dras::obs::set_enabled(false);
}

void BM_ObsHistogramObserve_Disabled(benchmark::State& state) {
  dras::obs::set_enabled(false);
  auto& histogram = dras::obs::Registry::global().histogram(
      "bench.overhead.histogram",
      dras::obs::Histogram::exponential_bounds(1.0, 4.0, 12));
  double v = 0.0;
  for (auto _ : state) histogram.observe(v += 1.0);
}

void BM_ObsHistogramObserve_Enabled(benchmark::State& state) {
  dras::obs::set_enabled(true);
  auto& histogram = dras::obs::Registry::global().histogram(
      "bench.overhead.histogram",
      dras::obs::Histogram::exponential_bounds(1.0, 4.0, 12));
  double v = 0.0;
  for (auto _ : state) histogram.observe(v += 1.0);
  dras::obs::set_enabled(false);
}

void BM_ObsScopedTimer_Disabled(benchmark::State& state) {
  dras::obs::set_enabled(false);
  auto& histogram = dras::obs::Registry::global().histogram(
      "bench.overhead.timer",
      dras::obs::Histogram::exponential_bounds(1.0, 4.0, 12));
  for (auto _ : state) {
    dras::obs::ScopedTimer timer(histogram);
    benchmark::DoNotOptimize(&timer);
  }
}

void BM_ObsScopedTimer_Enabled(benchmark::State& state) {
  dras::obs::set_enabled(true);
  auto& histogram = dras::obs::Registry::global().histogram(
      "bench.overhead.timer",
      dras::obs::Histogram::exponential_bounds(1.0, 4.0, 12));
  for (auto _ : state) {
    dras::obs::ScopedTimer timer(histogram);
    benchmark::DoNotOptimize(&timer);
  }
  dras::obs::set_enabled(false);
}

// HDR percentile histogram (obs::HdrHistogram) behind the p50/p90/p99
// latency metrics — one IEEE-754 shift-index + relaxed atomic add when
// enabled, the same gate as every other instrument when disabled.
void BM_ObsHdrObserve_Disabled(benchmark::State& state) {
  dras::obs::set_enabled(false);
  auto& hdr = dras::obs::Registry::global().hdr("bench.overhead.hdr");
  double v = 0.0;
  for (auto _ : state) hdr.observe(v += 1.0);
}

void BM_ObsHdrObserve_Enabled(benchmark::State& state) {
  dras::obs::set_enabled(true);
  auto& hdr = dras::obs::Registry::global().hdr("bench.overhead.hdr");
  double v = 0.0;
  for (auto _ : state) hdr.observe(v += 1.0);
  dras::obs::set_enabled(false);
}

// Hierarchical spans (obs::Span).  Inactive (telemetry off, no tracer):
// the price every span site pays when nothing listens — no clock reads,
// no string copies.  Hdr-targeted (telemetry on, no tracer): two clock
// reads plus one hdr observe.  Traced: full 'X' event serialization
// into a null sink.
void BM_ObsSpan_Inactive(benchmark::State& state) {
  dras::obs::set_enabled(false);
  for (auto _ : state) {
    dras::obs::Span span("bench.overhead.span");
    benchmark::DoNotOptimize(&span);
  }
}

void BM_ObsSpan_HdrTarget_Enabled(benchmark::State& state) {
  dras::obs::set_enabled(true);
  auto& hdr = dras::obs::Registry::global().hdr("bench.overhead.span_us");
  for (auto _ : state) {
    dras::obs::Span span("bench.overhead.span", {}, &hdr);
    benchmark::DoNotOptimize(&span);
  }
  dras::obs::set_enabled(false);
}

void BM_ObsSpan_Traced_NullSink(benchmark::State& state) {
  dras::obs::EventTracer tracer(std::make_unique<dras::obs::NullSink>(),
                                dras::obs::TraceFormat::Jsonl);
  dras::obs::set_default_tracer(&tracer);
  for (auto _ : state) {
    dras::obs::Span span("bench.overhead.span",
                         {dras::obs::targ("k", std::uint64_t{7})});
    benchmark::DoNotOptimize(&span);
  }
  dras::obs::set_default_tracer(nullptr);
}

// One instant event serialized into a null sink: the cost of active
// tracing per event (serialization + buffer append, no I/O).
void BM_ObsTracerInstant_NullSink(benchmark::State& state) {
  dras::obs::EventTracer tracer(std::make_unique<dras::obs::NullSink>(),
                                dras::obs::TraceFormat::Jsonl);
  double ts = 0.0;
  for (auto _ : state)
    tracer.instant("bench_event", ts += 0.001,
                   {dras::obs::targ("job", 42), dras::obs::targ("size", 7)});
}

// Whole-simulation cost: an FCFS run over a 2000-job theta-mini trace with
// telemetry (a) compiled in but disabled, (b) registry enabled, and
// (c) registry enabled plus a tracer draining into a null sink.
void BM_SimFcfs_ObsOff(benchmark::State& state) {
  dras::obs::set_enabled(false);
  const auto trace = overhead_trace(2000);
  const auto preset = dras::core::theta_mini();
  dras::sched::FcfsEasy policy;
  for (auto _ : state) {
    dras::sim::Simulator simulator(preset.nodes);
    benchmark::DoNotOptimize(simulator.run(trace, policy));
  }
}

void BM_SimFcfs_ObsMetrics(benchmark::State& state) {
  dras::obs::set_enabled(true);
  const auto trace = overhead_trace(2000);
  const auto preset = dras::core::theta_mini();
  dras::sched::FcfsEasy policy;
  for (auto _ : state) {
    dras::sim::Simulator simulator(preset.nodes);
    benchmark::DoNotOptimize(simulator.run(trace, policy));
  }
  dras::obs::set_enabled(false);
}

void BM_SimFcfs_ObsMetricsAndTrace(benchmark::State& state) {
  dras::obs::set_enabled(true);
  const auto trace = overhead_trace(2000);
  const auto preset = dras::core::theta_mini();
  dras::sched::FcfsEasy policy;
  dras::obs::EventTracer tracer(std::make_unique<dras::obs::NullSink>(),
                                dras::obs::TraceFormat::Jsonl);
  for (auto _ : state) {
    dras::sim::Simulator simulator(preset.nodes);
    simulator.set_tracer(&tracer);
    benchmark::DoNotOptimize(simulator.run(trace, policy));
  }
  dras::obs::set_enabled(false);
}

// The ISSUE acceptance line: estimate the slowdown a telemetry-free build
// would avoid, i.e. the cost of compiled-in-but-disabled instrumentation.
// Measured directly: repeated FCFS runs with telemetry disabled vs the
// per-op disabled costs multiplied by the number of instrumentation sites
// an identical run executes.  Printed after the benchmark table so it
// survives --benchmark_filter.
void report_disabled_overhead() {
  using clock = std::chrono::steady_clock;
  dras::obs::set_enabled(false);

  const auto trace = overhead_trace(2000);
  const auto preset = dras::core::theta_mini();
  dras::sched::FcfsEasy policy;

  // Count the instrumentation sites one run executes.
  dras::sim::Simulator probe(preset.nodes);
  const auto probe_result = probe.run(trace, policy);
  // Per scheduling instance: 1 counter + 1 histogram + 1 scoped timer.
  // Per job: submit counter, start counter, wait histogram, end counter.
  const double sites =
      3.0 * static_cast<double>(probe_result.scheduling_instances) +
      4.0 * static_cast<double>(trace.size());

  // Per-op disabled cost (counter.add is representative: one relaxed
  // atomic load + branch, the same gate every instrument uses).
  auto& counter =
      dras::obs::Registry::global().counter("bench.overhead.report");
  constexpr int kOps = 20'000'000;
  const auto op_start = clock::now();
  for (int i = 0; i < kOps; ++i) counter.add();
  const double ns_per_op =
      std::chrono::duration<double, std::nano>(clock::now() - op_start)
          .count() /
      kOps;

  // Wall time of a disabled run (best of 5 to reduce scheduling noise).
  double best_run_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < 5; ++r) {
    dras::sim::Simulator simulator(preset.nodes);
    const auto run_start = clock::now();
    benchmark::DoNotOptimize(simulator.run(trace, policy));
    best_run_s = std::min(
        best_run_s,
        std::chrono::duration<double>(clock::now() - run_start).count());
  }

  const double overhead_pct =
      100.0 * (sites * ns_per_op * 1e-9) / best_run_s;
  std::printf(
      "\n--- telemetry overhead (src/obs) ---\n"
      "disabled gate cost:        %.2f ns/op\n"
      "instrumentation sites/run: %.0f (fcfs, theta-mini, %zu jobs)\n"
      "simulator run (disabled):  %.3f ms\n"
      "compiled-in-but-disabled overhead: %.3f%% (target <= 2%%)\n",
      ns_per_op, sites, trace.size(), best_run_s * 1e3, overhead_pct);
}

// The observatory acceptance line: span + hdr-histogram overhead on the
// real instrumented hot path.  nn::Network::forward times every call
// into nn.forward_us when telemetry is enabled and pays a single gate
// check when disabled (src/nn/network.cpp); a scheduling decision is one
// such forward.  Measured: a greedy-decision loop with telemetry off vs
// on (enabled budget ≤ 2%), and the estimated per-decision cost of the
// disabled gates — one inactive span plus one gated hdr observe, a
// deliberately conservative over-count of what forward() actually
// executes when off — against the ≤ 0.5% disabled budget.
void report_span_hdr_overhead() {
  using clock = std::chrono::steady_clock;
  dras::obs::set_enabled(false);

  const auto preset = dras::core::theta_mini();
  auto& policy = pg_policy(preset);
  const auto input = random_state(policy.network().config().input_size(), 23);

  constexpr int kDecisions = 4000;
  const auto best_decision_loop_s = [&] {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 5; ++r) {
      const auto start = clock::now();
      for (int i = 0; i < kDecisions; ++i)
        benchmark::DoNotOptimize(policy.greedy_action(input, preset.window));
      best = std::min(
          best, std::chrono::duration<double>(clock::now() - start).count());
    }
    return best;
  };

  const double off_s = best_decision_loop_s();
  dras::obs::set_enabled(true);
  const double on_s = best_decision_loop_s();
  dras::obs::set_enabled(false);

  // Per-op disabled costs for the estimate.
  constexpr int kOps = 5'000'000;
  auto& hdr = dras::obs::Registry::global().hdr("bench.overhead.report_hdr");
  auto op_start = clock::now();
  double v = 0.0;
  for (int i = 0; i < kOps; ++i) hdr.observe(v += 1.0);
  const double hdr_off_ns =
      std::chrono::duration<double, std::nano>(clock::now() - op_start)
          .count() /
      kOps;
  op_start = clock::now();
  for (int i = 0; i < kOps; ++i) {
    dras::obs::Span span("bench.overhead.report_span");
    benchmark::DoNotOptimize(&span);
  }
  const double span_off_ns =
      std::chrono::duration<double, std::nano>(clock::now() - op_start)
          .count() /
      kOps;

  const double decision_us = off_s / kDecisions * 1e6;
  const double enabled_pct = 100.0 * std::max(0.0, on_s - off_s) / off_s;
  const double disabled_pct =
      100.0 * ((span_off_ns + hdr_off_ns) * 1e-9) / (off_s / kDecisions);
  std::printf(
      "\n--- span + hdr-histogram overhead (training observatory) ---\n"
      "inactive span:             %.2f ns/op\n"
      "disabled hdr observe:      %.2f ns/op\n"
      "scheduling decision (off): %.2f us\n"
      "decision loop, telemetry enabled: %+.3f%% (target <= 2%%)\n"
      "compiled-in-but-disabled estimate: %.3f%% (target <= 0.5%%)\n",
      span_off_ns, hdr_off_ns, decision_us, enabled_pct, disabled_pct);
}

}  // namespace

// Full paper scale (Theta, Table III) — the §V-E claim.
BENCHMARK_CAPTURE(BM_PGDecision, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);
BENCHMARK_CAPTURE(BM_DQLDecision, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK_CAPTURE(BM_PGUpdate, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK_CAPTURE(BM_DQLUpdate, theta_full, dras::core::theta())
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Mini scale used by the trace-driven benches.
BENCHMARK_CAPTURE(BM_PGDecision, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DQLDecision, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_PGUpdate, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_DQLUpdate, theta_mini, dras::core::theta_mini())
    ->Unit(benchmark::kMicrosecond);

// Telemetry instrumentation cost (see report_disabled_overhead for the
// ≤2% acceptance estimate printed after the table).
BENCHMARK(BM_ObsCounterAdd_Disabled);
BENCHMARK(BM_ObsCounterAdd_Enabled);
BENCHMARK(BM_ObsHistogramObserve_Disabled);
BENCHMARK(BM_ObsHistogramObserve_Enabled);
BENCHMARK(BM_ObsScopedTimer_Disabled);
BENCHMARK(BM_ObsScopedTimer_Enabled);
BENCHMARK(BM_ObsHdrObserve_Disabled);
BENCHMARK(BM_ObsHdrObserve_Enabled);
BENCHMARK(BM_ObsSpan_Inactive);
BENCHMARK(BM_ObsSpan_HdrTarget_Enabled);
BENCHMARK(BM_ObsSpan_Traced_NullSink);
BENCHMARK(BM_ObsTracerInstant_NullSink);
BENCHMARK(BM_SimFcfs_ObsOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimFcfs_ObsMetrics)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimFcfs_ObsMetricsAndTrace)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_disabled_overhead();
  report_span_hdr_overhead();
  return 0;
}
