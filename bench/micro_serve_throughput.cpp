// Micro-benchmark: serving throughput and hot-swap under load.
//
// Part 1 measures the decision service's micro-batching win.  A
// bandwidth-bound PG network (weights well past L2, so per-sample gemv
// re-reads the full matrices from memory while gemm_batch reuses each
// weight row across the whole batch) is served to a fixed request set
// at max_batch 1 / 8 / 32 under 1 and 4 client threads, closed over a
// precomputed oracle: every response must equal the reference decision
// computed on the same snapshot through the trainer-side greedy path.
// The bench fails unless batched throughput reaches >= 3x the
// max_batch=1 baseline at equal threads (the ISSUE acceptance bar),
// and reports decisions/sec with client-observed p50/p99 per cell.
//
// Part 2 drives a live hot-swap drill: four closed-loop clients hammer
// the service while the main thread lands five more checkpoints in the
// watched directory.  The bench fails on any failed or stalled request
// (> 1 s), any decision not attributable to a written snapshot
// version, any sampled decision that mismatches its snapshot's
// reference decision, or fewer than five live swaps.
//
// Part 3 prices the socket transport: the same snapshot is served
// in-process and over a Unix-domain-socket DecisionServer/Client pair,
// single closed-loop client, with a max_wait chosen so the batching
// wait dominates the decision path on both sides.  The bench fails if
// the socket p99 (best of 3 repetitions per path) exceeds 1.10x the
// in-process p99 — the "clean transport costs <= 10% p99" bar — or if
// either path disagrees with the precomputed oracle.
//
// Emits one JSON line per configuration plus human-readable tables,
// and supports the shared bench plumbing (--run-dir writes a manifest
// whose stats block carries serve_best_decisions_per_sec,
// serve_batch_speedup and serve_net_p99_overhead for dras_report
// --compare).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "ckpt/manager.h"
#include "metrics/report.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/decision_service.h"
#include "serve/model_watcher.h"
#include "serve/net/client.h"
#include "serve/net/server.h"
#include "util/format.h"
#include "util/rng.h"

namespace {

using dras::util::format;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Write the agent-only checkpoint for `episode` and return its path.
std::filesystem::path write_snapshot(const std::filesystem::path& dir,
                                     const dras::core::DrasConfig& config,
                                     std::size_t episode) {
  dras::core::DrasAgent agent(config);
  dras::ckpt::CheckpointManagerOptions options;
  options.dir = dir;
  options.keep_last = 0;
  dras::ckpt::CheckpointManager manager(options);
  dras::ckpt::TrainingState state;
  state.agent = &agent;
  state.telemetry = false;
  return manager.save(state, episode);
}

struct Cell {
  std::size_t clients = 0;
  std::size_t max_batch = 0;
  double decisions_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double batch_mean = 0.0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  dras::benchx::ObsSession obs(argc, argv);
  dras::obs::set_enabled(true);
  const auto scratch =
      std::filesystem::temp_directory_path() /
      format("dras-serve-bench-{}", static_cast<std::uint64_t>(::getpid()));
  std::filesystem::remove_all(scratch);
  bool failed = false;

  // --- Part 1: micro-batching throughput. ---
  //
  // Mid-size capability system: ~23 MB of weights per forward, so the
  // per-sample path is memory-bandwidth-bound and batching has real
  // physics behind it, while one cell still finishes in under a second.
  auto preset = dras::core::theta();
  preset.nodes = 1024;
  preset.fc1 = 3000;
  preset.fc2 = 800;
  auto config = preset.agent_config(dras::core::AgentKind::PG, 7);
  config.total_nodes = preset.nodes;
  const auto throughput_ckpt =
      write_snapshot(scratch / "throughput", config, 1);
  const auto snapshot = dras::serve::ModelSnapshot::load(throughput_ckpt,
                                                         config);

  constexpr std::size_t kRequests = 256;
  constexpr int kRepetitions = 2;
  std::vector<dras::serve::DecisionRequest> requests;
  std::vector<std::size_t> expected;
  {
    dras::util::Rng rng(dras::util::derive_seed(7, "serve-bench"));
    const auto replica = snapshot->make_replica();
    for (std::size_t r = 0; r < kRequests; ++r) {
      requests.push_back(dras::serve::make_synthetic_request(config, rng));
      expected.push_back(
          dras::serve::reference_decision(*replica, requests.back()));
    }
  }

  std::cout << format(
      "serve throughput: {} requests, {} nodes, fc {}x{}, best of {} "
      "repetitions\n\n",
      kRequests, preset.nodes, preset.fc1, preset.fc2, kRepetitions);

  // One measured run of the full request set: `clients` submitter
  // threads push their shares open-loop, then resolve futures and check
  // each decision against the precomputed oracle.
  const auto run_cell = [&](std::size_t clients, std::size_t max_batch,
                            Cell& cell) {
    dras::serve::ServiceOptions options;
    options.policy.max_batch = max_batch;
    options.policy.max_wait = std::chrono::microseconds(500);
    options.workers = 1;
    dras::serve::DecisionService service(options);
    service.install(snapshot);
    std::vector<double> latencies;
    std::vector<double> batch_sizes;
    latencies.reserve(kRequests);
    const double start = now_seconds();
    std::vector<std::thread> threads;
    std::vector<std::vector<std::pair<std::size_t,
                                      std::future<dras::serve::Decision>>>>
        futures(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t r = c; r < kRequests; r += clients)
          futures[c].emplace_back(r, service.submit(requests[r]));
      });
    }
    for (auto& thread : threads) thread.join();
    bool identical = true;
    for (auto& per_client : futures) {
      for (auto& [index, future] : per_client) {
        const auto decision = future.get();
        identical &= decision.job_index == expected[index];
        latencies.push_back(decision.latency_us);
        batch_sizes.push_back(static_cast<double>(decision.batch_size));
      }
    }
    const double elapsed = now_seconds() - start;
    const auto latency = dras::obs::report::exact_stats(latencies);
    const auto batch = dras::obs::report::exact_stats(batch_sizes);
    const double throughput =
        elapsed > 0.0 ? static_cast<double>(kRequests) / elapsed : 0.0;
    cell.identical &= identical;
    if (throughput > cell.decisions_per_sec) {
      cell.decisions_per_sec = throughput;
      cell.p50_us = latency.p50;
      cell.p99_us = latency.p99;
      cell.batch_mean = batch.mean;
    }
  };

  std::vector<Cell> cells;
  std::vector<std::vector<std::string>> table;
  double best_throughput = 0.0;
  double worst_speedup = 0.0;
  bool speedup_ok = true;
  for (const std::size_t clients : {1u, 4u}) {
    double baseline = 0.0;  // max_batch=1 at this thread count
    double best_batched = 0.0;
    for (const std::size_t max_batch : {1u, 8u, 32u}) {
      Cell cell;
      cell.clients = clients;
      cell.max_batch = max_batch;
      for (int rep = 0; rep < kRepetitions; ++rep)
        run_cell(clients, max_batch, cell);
      if (max_batch == 1)
        baseline = cell.decisions_per_sec;
      else
        best_batched = std::max(best_batched, cell.decisions_per_sec);
      best_throughput = std::max(best_throughput, cell.decisions_per_sec);
      failed |= !cell.identical;
      cells.push_back(cell);
      table.push_back({format("{}", clients), format("{}", max_batch),
                       format("{:.0f}", cell.decisions_per_sec),
                       format("{:.0f}", cell.p50_us),
                       format("{:.0f}", cell.p99_us),
                       format("{:.2f}", cell.batch_mean),
                       cell.identical ? "yes" : "NO"});
      std::cout << format(
          "{{\"name\":\"serve_throughput/clients:{}/batch:{}\","
          "\"clients\":{},\"max_batch\":{},\"decisions_per_sec\":{:.1f},"
          "\"p50_us\":{:.1f},\"p99_us\":{:.1f},\"batch_mean\":{:.2f},"
          "\"identical\":{}}}\n",
          clients, max_batch, clients, max_batch, cell.decisions_per_sec,
          cell.p50_us, cell.p99_us, cell.batch_mean,
          cell.identical ? "true" : "false");
    }
    const double speedup =
        baseline > 0.0 ? best_batched / baseline : 0.0;
    if (worst_speedup == 0.0 || speedup < worst_speedup)
      worst_speedup = speedup;
    std::cout << format(
        "{{\"name\":\"serve_batching_speedup/clients:{}\",\"clients\":{},"
        "\"speedup\":{:.2f}}}\n",
        clients, clients, speedup);
    if (speedup < 3.0) {
      speedup_ok = false;
      std::cerr << format(
          "FAIL: batched throughput only {:.2f}x max_batch=1 at {} "
          "clients (needs >= 3x)\n",
          speedup, clients);
    }
  }
  failed |= !speedup_ok;

  std::cout << "\n";
  dras::metrics::print_table(
      std::cout,
      {"clients", "max batch", "decisions/s", "p50 us", "p99 us",
       "mean batch", "identical"},
      table);

  // --- Part 2: hot swap under load. ---
  constexpr std::uint64_t kLiveSwaps = 5;
  const auto mini = dras::core::theta_mini();
  auto swap_config = mini.agent_config(dras::core::AgentKind::PG, 11);
  swap_config.total_nodes = mini.nodes;
  const auto swap_dir = scratch / "swap";
  write_snapshot(swap_dir, swap_config, 1);

  dras::serve::ServiceOptions swap_service_options;
  swap_service_options.policy.max_batch = 16;
  swap_service_options.policy.max_wait = std::chrono::microseconds(100);
  swap_service_options.workers = 2;
  dras::serve::DecisionService swap_service(swap_service_options);
  dras::serve::WatcherOptions watcher_options;
  watcher_options.dir = swap_dir;
  watcher_options.config = swap_config;
  watcher_options.poll = std::chrono::milliseconds(2);
  dras::serve::ModelWatcher watcher(watcher_options, swap_service);
  watcher.start();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0}, client_failures{0}, stalled{0},
      unattributed{0}, verified{0}, mismatches{0};
  std::vector<std::thread> swap_clients;
  for (std::size_t c = 0; c < 4; ++c) {
    swap_clients.emplace_back([&, c] {
      dras::util::Rng rng(
          dras::util::derive_seed(11, format("swap-client-{}", c)));
      std::map<std::uint64_t, std::unique_ptr<dras::core::DrasAgent>>
          replicas;
      std::uint64_t sent = 0;
      while (!done.load(std::memory_order_relaxed)) {
        auto request = dras::serve::make_synthetic_request(swap_config, rng);
        const bool sampled = (sent++ % 64) == 0;
        auto before = sampled ? swap_service.current_snapshot() : nullptr;
        try {
          const auto decision = swap_service.submit(request).get();
          answered.fetch_add(1, std::memory_order_relaxed);
          if (decision.latency_us > 1e6)
            stalled.fetch_add(1, std::memory_order_relaxed);
          if (decision.model_version < 1 ||
              decision.model_version > 1 + kLiveSwaps)
            unattributed.fetch_add(1, std::memory_order_relaxed);
          if (before != nullptr &&
              decision.model_version == before->version()) {
            auto& replica = replicas[before->version()];
            if (!replica) replica = before->make_replica();
            verified.fetch_add(1, std::memory_order_relaxed);
            if (dras::serve::reference_decision(*replica, request) !=
                decision.job_index)
              mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::exception&) {
          client_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Land five more snapshots while the clients hammer the service, then
  // wait until the watcher has installed all of them.
  for (std::size_t episode = 2; episode <= 1 + kLiveSwaps; ++episode) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    write_snapshot(swap_dir, swap_config, episode);
  }
  const double swap_deadline = now_seconds() + 10.0;
  while (watcher.swaps_installed() < 1 + kLiveSwaps &&
         now_seconds() < swap_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true, std::memory_order_relaxed);
  for (auto& thread : swap_clients) thread.join();
  watcher.stop();
  swap_service.stop();

  const auto swap_stats = swap_service.stats();
  std::cout << format(
      "\n{{\"name\":\"serve_hot_swap\",\"answered\":{},\"failures\":{},"
      "\"stalled\":{},\"swaps\":{},\"unattributed\":{},\"verified\":{},"
      "\"mismatches\":{}}}\n",
      answered.load(), client_failures.load() + swap_stats.failures,
      stalled.load(), watcher.swaps_installed(), unattributed.load(),
      verified.load(), mismatches.load());
  if (client_failures.load() != 0 || swap_stats.failures != 0) {
    failed = true;
    std::cerr << "FAIL: requests failed during hot swap\n";
  }
  if (stalled.load() != 0) {
    failed = true;
    std::cerr << "FAIL: requests stalled (> 1 s) during hot swap\n";
  }
  if (watcher.swaps_installed() < 1 + kLiveSwaps) {
    failed = true;
    std::cerr << format("FAIL: only {} snapshot installs (need {})\n",
                        watcher.swaps_installed(), 1 + kLiveSwaps);
  }
  if (unattributed.load() != 0) {
    failed = true;
    std::cerr << "FAIL: decisions not attributable to a written snapshot\n";
  }
  if (mismatches.load() != 0) {
    failed = true;
    std::cerr << "FAIL: served decisions mismatched the reference\n";
  }

  // --- Part 3: socket transport overhead. ---
  //
  // Same snapshot, same request stream, one closed-loop client; the
  // only difference between the two cells is whether decide() crosses a
  // Unix domain socket.  max_wait is large enough that the batching
  // wait dominates both paths, which is exactly the regime a clean
  // transport must not disturb: its per-request cost has to disappear
  // under the service's own latency floor.
  const auto net_config_preset = dras::core::theta_mini();
  auto net_config = net_config_preset.agent_config(dras::core::AgentKind::PG,
                                                   13);
  net_config.total_nodes = net_config_preset.nodes;
  const auto net_ckpt = write_snapshot(scratch / "net", net_config, 1);
  const auto net_snapshot =
      dras::serve::ModelSnapshot::load(net_ckpt, net_config);

  constexpr std::size_t kNetRequests = 192;
  constexpr int kNetRepetitions = 5;
  std::vector<dras::serve::DecisionRequest> net_requests;
  std::vector<std::size_t> net_expected;
  {
    dras::util::Rng rng(dras::util::derive_seed(13, "serve-net-bench"));
    const auto replica = net_snapshot->make_replica();
    for (std::size_t r = 0; r < kNetRequests; ++r) {
      net_requests.push_back(
          dras::serve::make_synthetic_request(net_config, rng));
      net_expected.push_back(
          dras::serve::reference_decision(*replica, net_requests.back()));
    }
  }
  // A 5 ms batching wait gives the 10% bar a ~500 us absolute budget —
  // comfortably above a UDS round trip (tens of us) but tight enough to
  // catch a transport that serializes, copies or syscalls per frame
  // more than it should.  Smaller waits put scheduler jitter, not the
  // transport, in the p99.
  const auto net_service_options = [] {
    dras::serve::ServiceOptions options;
    options.policy.max_batch = 16;
    options.policy.max_wait = std::chrono::microseconds(5000);
    options.workers = 1;
    return options;
  }();

  // One repetition of client-observed wall latencies; `decide` is
  // either the in-process future.get() or the socket round trip.
  bool net_identical = true;
  const auto run_rep = [&](const auto& decide) {
    std::vector<double> latencies;
    latencies.reserve(kNetRequests);
    for (std::size_t r = 0; r < kNetRequests; ++r) {
      const double start = now_seconds();
      const std::size_t job_index = decide(net_requests[r]);
      latencies.push_back((now_seconds() - start) * 1e6);
      net_identical &= job_index == net_expected[r];
    }
    return dras::obs::report::exact_stats(latencies).p99;
  };

  // Both stacks stay up for the whole measurement and repetitions
  // alternate between them, so machine-load drift hits both paths
  // alike.  The gated statistic is the best per-repetition p99 RATIO:
  // within one repetition the pair runs back to back, so a scheduler
  // spike that lands on only one side inflates that repetition's ratio
  // and a different repetition wins — what survives is the transport's
  // own cost, not the noise floor of the machine.
  double inproc_p99 = 0.0;
  double socket_p99 = 0.0;
  double net_overhead = 0.0;
  {
    dras::serve::DecisionService inproc(net_service_options);
    inproc.install(net_snapshot);
    dras::serve::DecisionService backend(net_service_options);
    backend.install(net_snapshot);
    dras::serve::net::ServerOptions server_options;
    server_options.address = dras::util::SocketAddress::unix_path(
        (scratch / "bench.sock").string());
    dras::serve::net::DecisionServer server(server_options, backend);
    server.start();
    dras::serve::net::ClientOptions client_options;
    client_options.address = server.bound_address();
    dras::serve::net::DecisionClient client(client_options);
    for (int rep = 0; rep < kNetRepetitions; ++rep) {
      const double in_rep =
          run_rep([&](const dras::serve::DecisionRequest& request) {
            return inproc.submit(request).get().job_index;
          });
      const double sock_rep =
          run_rep([&](const dras::serve::DecisionRequest& request) {
            return client.decide(request).job_index;
          });
      const double ratio = in_rep > 0.0 ? sock_rep / in_rep : 0.0;
      if (rep == 0 || ratio < net_overhead) {
        net_overhead = ratio;
        inproc_p99 = in_rep;
        socket_p99 = sock_rep;
      }
    }
    server.stop();
    backend.stop();
    inproc.stop();
  }
  std::cout << format(
      "\n{{\"name\":\"serve_net_overhead\",\"inproc_p99_us\":{:.1f},"
      "\"socket_p99_us\":{:.1f},\"overhead\":{:.3f},\"identical\":{}}}\n",
      inproc_p99, socket_p99, net_overhead,
      net_identical ? "true" : "false");
  if (!net_identical) {
    failed = true;
    std::cerr << "FAIL: transport-path decisions mismatched the oracle\n";
  }
  if (net_overhead > 1.10) {
    failed = true;
    std::cerr << format(
        "FAIL: socket p99 {:.1f} us is {:.2f}x the in-process p99 {:.1f} "
        "us (clean transport must stay <= 1.10x)\n",
        socket_p99, net_overhead, inproc_p99);
  }

  if (auto* recorder = obs.run_recorder()) {
    recorder->set_stat("serve_best_decisions_per_sec", best_throughput);
    recorder->set_stat("serve_batch_speedup", worst_speedup);
    recorder->set_stat("serve_swaps",
                       static_cast<double>(watcher.swaps_installed()));
    recorder->set_stat("serve_net_p99_overhead", net_overhead);
  }
  std::filesystem::remove_all(scratch);

  if (failed) return 1;
  std::cout << format(
      "\nall served decisions bit-identical to the in-trainer reference; "
      "batched throughput >= 3x max_batch=1; {} live swaps with zero "
      "failed or stalled requests; socket p99 {:.2f}x in-process "
      "(<= 1.10x)\n",
      kLiveSwaps, net_overhead);
  return 0;
}
