// Micro-benchmarks for the simulator substrate: event throughput under
// FCFS/EASY, EASY backfill-candidate computation, state encoding, and the
// knapsack DP of the Optimization baseline.
#include <benchmark/benchmark.h>

#include "core/state_encoder.h"
#include "sched/fcfs_easy.h"
#include "sched/knapsack_opt.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/models.h"
#include "workload/synthetic.h"

namespace {

const dras::sim::Trace& mini_trace() {
  static const dras::sim::Trace trace = [] {
    dras::workload::GenerateOptions options;
    options.num_jobs = 2000;
    options.seed = 1;
    return dras::workload::generate_trace(
        dras::workload::theta_mini_workload(), options);
  }();
  return trace;
}

void BM_SimulatorFcfsEasy(benchmark::State& state) {
  const auto model = dras::workload::theta_mini_workload();
  std::size_t jobs = 0;
  for (auto _ : state) {
    dras::sim::Simulator sim(model.system_nodes);
    dras::sched::FcfsEasy fcfs;
    const auto result = sim.run(mini_trace(), fcfs);
    benchmark::DoNotOptimize(result.utilization);
    jobs += result.jobs.size();
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorFcfsEasy)->Unit(benchmark::kMillisecond);

void BM_ClusterEarliestStart(benchmark::State& state) {
  const auto running = state.range(0);
  dras::sim::Cluster cluster(4360);
  dras::util::Rng rng(3);
  dras::sim::JobId id = 0;
  while (cluster.free_nodes() > 128 &&
         static_cast<std::int64_t>(cluster.running_count()) < running) {
    dras::sim::Job job;
    job.id = id++;
    job.size = static_cast<int>(1 + rng.uniform_index(64));
    job.runtime_estimate = rng.uniform(100.0, 10000.0);
    job.runtime_actual = job.runtime_estimate;
    if (!cluster.allocate(job, 0.0)) break;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(cluster.earliest_start(4000, 0.0));
}
BENCHMARK(BM_ClusterEarliestStart)->Arg(16)->Arg(64)->Arg(256);

void BM_StateEncodeWindow(benchmark::State& state) {
  // Encode a full Theta-scale window state: 2W+N rows.
  const auto preset_nodes = 4360;
  dras::sim::Simulator sim(preset_nodes);
  // Use a probe scheduler to grab a context mid-simulation.
  std::vector<float> encoded;
  dras::core::StateEncoder encoder(preset_nodes, 86400.0);
  class Probe final : public dras::sim::Scheduler {
   public:
    Probe(benchmark::State& state, dras::core::StateEncoder& encoder,
          std::vector<float>& out)
        : state_(state), encoder_(encoder), out_(out) {}
    std::string_view name() const override { return "probe"; }
    void schedule(dras::sim::SchedulingContext& ctx) override {
      if (done_ || ctx.queue().size() < 50) {
        // Keep the machine busy so the queue builds up.
        if (!ctx.queue().empty() &&
            ctx.cluster().fits(ctx.queue().front()->size))
          ctx.start_now(ctx.queue().front()->id);
        return;
      }
      done_ = true;
      const std::span<dras::sim::Job* const> window(ctx.queue().data(), 50);
      for (auto _ : state_) {
        encoder_.encode_window(ctx, window, 50, out_);
        benchmark::DoNotOptimize(out_.data());
      }
    }
   private:
    benchmark::State& state_;
    dras::core::StateEncoder& encoder_;
    std::vector<float>& out_;
    bool done_ = false;
  };

  dras::workload::GenerateOptions options;
  options.num_jobs = 400;
  options.seed = 2;
  options.load_scale = 8.0;  // flood the queue
  const auto trace = dras::workload::generate_trace(
      dras::workload::theta_workload(), options);
  Probe probe(state, encoder, encoded);
  (void)sim.run(trace, probe);
}
BENCHMARK(BM_StateEncodeWindow)->Unit(benchmark::kMicrosecond);

void BM_KnapsackDP(benchmark::State& state) {
  const auto items = state.range(0);
  dras::util::Rng rng(5);
  std::vector<int> weights;
  std::vector<double> values;
  for (std::int64_t i = 0; i < items; ++i) {
    weights.push_back(static_cast<int>(1 + rng.uniform_index(512)));
    values.push_back(rng.uniform(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dras::sched::KnapsackOpt::solve_knapsack(weights, values, 4360));
  }
}
BENCHMARK(BM_KnapsackDP)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_BackfillCandidates(benchmark::State& state) {
  dras::sim::Cluster cluster(4360);
  dras::util::Rng rng(7);
  dras::sim::JobId id = 0;
  // Half-busy machine.
  while (cluster.free_nodes() > 2000) {
    dras::sim::Job job;
    job.id = id++;
    job.size = 128;
    job.runtime_estimate = rng.uniform(100.0, 10000.0);
    job.runtime_actual = job.runtime_estimate;
    (void)cluster.allocate(job, 0.0);
  }
  const dras::sim::Reservation reservation{9999, 4000, 8000.0};
  std::vector<dras::sim::Job> waiting(256);
  std::vector<dras::sim::Job*> queue;
  for (auto& job : waiting) {
    job.id = id++;
    job.size = static_cast<int>(1 + rng.uniform_index(1024));
    job.runtime_estimate = rng.uniform(100.0, 20000.0);
    job.runtime_actual = job.runtime_estimate;
    queue.push_back(&job);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dras::sim::backfill_candidates(cluster, reservation, queue, 0.0));
  }
}
BENCHMARK(BM_BackfillCandidates)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
