// Table III reproduction: DRAS network configurations for Theta and Cori.
//
// Reprints the paper's architecture table from our NetworkConfig math and
// checks the trainable-parameter counts against the published numbers.
// Theta-PG, Theta-DQL and Cori-PG match exactly; the paper's Cori-DQL
// count (161,764,004) is inconsistent with its own layer sizes — the
// sizes imply 160,784,004 (see EXPERIMENTS.md).
#include <iostream>

#include "core/presets.h"
#include "bench_common.h"
#include "metrics/report.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;

  struct Row {
    std::string system;
    std::string agent;
    dras::nn::NetworkConfig net;
    std::size_t paper_count;
  };
  const dras::core::SystemPreset theta = dras::core::theta();
  const dras::core::SystemPreset cori = dras::core::cori();
  const std::vector<Row> rows = {
      {"Theta", "DRAS-PG", theta.pg_network(), 21'890'053},
      {"Theta", "DRAS-DQL", theta.dql_network(), 21'449'004},
      {"Cori", "DRAS-PG", cori.pg_network(), 161'960'053},
      {"Cori", "DRAS-DQL", cori.dql_network(), 161'764'004},
  };

  std::cout << "# Table III: DRAS network configurations\n";
  std::vector<std::vector<std::string>> table;
  bool all_matched = true;
  for (const Row& row : rows) {
    const std::size_t ours = row.net.parameter_count();
    const bool match = ours == row.paper_count;
    all_matched &= match;
    table.push_back({row.system, row.agent,
                     format("[{}, 2]", row.net.input_rows),
                     format("{}", row.net.input_rows),
                     format("{}", row.net.fc1), format("{}", row.net.fc2),
                     format("{}", row.net.outputs), format("{}", ours),
                     format("{}", row.paper_count),
                     match ? "yes" : "no (paper typo, see EXPERIMENTS.md)"});
  }
  dras::metrics::print_table(
      std::cout,
      {"system", "agent", "input", "conv", "fc1", "fc2", "output",
       "params (ours)", "params (paper)", "match"},
      table);

  std::cout << "\ncsv:system,agent,input_rows,fc1,fc2,outputs,params_ours,"
               "params_paper\n";
  for (const Row& row : rows)
    std::cout << format("csv:{},{},{},{},{},{},{},{}\n", row.system,
                        row.agent, row.net.input_rows, row.net.fc1,
                        row.net.fc2, row.net.outputs,
                        row.net.parameter_count(), row.paper_count);

  // 3 of 4 published counts must match exactly.
  int matches = 0;
  for (const Row& row : rows)
    if (row.net.parameter_count() == row.paper_count) ++matches;
  std::cout << format("\nexact matches: {}/4 (Cori-DQL differs; see "
                      "EXPERIMENTS.md)\n", matches);
  return matches >= 3 ? 0 : 1;
}
