// Table IV reproduction: job and core-hour shares per execution mode
// (backfilled / ready / reserved) on the Theta-style scenario.
//
// Paper signature: the myopic methods (Optimization, Decima-PG,
// BinPacking, Random) run 100% of jobs "ready"; FCFS and DRAS backfill
// the majority of jobs while reserved jobs consume the majority of
// core-hours.
#include <iostream>

#include "bench_common.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "util/format.h"

int main(int argc, char** argv) {
  const dras::benchx::ObsSession obs_session(argc, argv);
  using dras::util::format;
  namespace benchx = dras::benchx;

  const auto scenario = benchx::Scenario::theta_mini(4);
  constexpr std::size_t kTestJobs = 1500;

  benchx::print_preamble(
      "Table IV: job distributions by execution mode", scenario, kTestJobs);

  benchx::MethodSet methods(scenario);
  methods.train_agents(scenario, 30, 500);
  const auto test_trace = scenario.trace(kTestJobs, 444444);
  const auto evaluations =
      benchx::evaluate_all(methods, scenario, test_trace,
                           obs_session.jobs());

  std::vector<std::vector<std::string>> table;
  std::cout << "csv:method,backfilled_jobs_pct,backfilled_hours_pct,"
               "ready_jobs_pct,ready_hours_pct,reserved_jobs_pct,"
               "reserved_hours_pct\n";
  bool dras_pattern_holds = true;
  for (const auto& evaluation : evaluations) {
    const auto shares = dras::metrics::mode_shares(evaluation.result.jobs);
    // shares order: backfilled, ready, reserved (stats.cpp).
    table.push_back(
        {evaluation.method,
         dras::metrics::format_percent(shares[0].job_fraction),
         dras::metrics::format_percent(shares[0].core_hour_fraction),
         dras::metrics::format_percent(shares[1].job_fraction),
         dras::metrics::format_percent(shares[1].core_hour_fraction),
         dras::metrics::format_percent(shares[2].job_fraction),
         dras::metrics::format_percent(shares[2].core_hour_fraction)});
    std::cout << format(
        "csv:{},{:.2f},{:.2f},{:.2f},{:.2f},{:.2f},{:.2f}\n",
        evaluation.method, 100 * shares[0].job_fraction,
        100 * shares[0].core_hour_fraction, 100 * shares[1].job_fraction,
        100 * shares[1].core_hour_fraction, 100 * shares[2].job_fraction,
        100 * shares[2].core_hour_fraction);

    if (evaluation.method == "DRAS-PG" || evaluation.method == "DRAS-DQL") {
      // Table IV: DRAS backfills most jobs; reserved jobs dominate hours.
      dras_pattern_holds &= shares[0].job_fraction > 0.5;
      dras_pattern_holds &=
          shares[2].core_hour_fraction > shares[2].job_fraction;
    }
    if (evaluation.method == "Optimization" ||
        evaluation.method == "BinPacking" || evaluation.method == "Random" ||
        evaluation.method == "Decima-PG") {
      dras_pattern_holds &= shares[1].job_fraction > 0.999;
    }
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "backfilled jobs", "backfilled hours", "ready jobs",
       "ready hours", "reserved jobs", "reserved hours"},
      table);

  std::cout << format("\nshape check: Table IV pattern {}\n",
                      dras_pattern_holds ? "holds" : "VIOLATED");
  return 0;
}
