file(REMOVE_RECURSE
  "CMakeFiles/ablation_dql_gamma.dir/ablation_dql_gamma.cpp.o"
  "CMakeFiles/ablation_dql_gamma.dir/ablation_dql_gamma.cpp.o.d"
  "ablation_dql_gamma"
  "ablation_dql_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dql_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
