file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimate_quality.dir/ablation_estimate_quality.cpp.o"
  "CMakeFiles/ablation_estimate_quality.dir/ablation_estimate_quality.cpp.o.d"
  "ablation_estimate_quality"
  "ablation_estimate_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimate_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
