# Empty dependencies file for ablation_estimate_quality.
# This may be replaced when dependencies are built.
