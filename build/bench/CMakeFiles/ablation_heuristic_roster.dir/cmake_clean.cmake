file(REMOVE_RECURSE
  "CMakeFiles/ablation_heuristic_roster.dir/ablation_heuristic_roster.cpp.o"
  "CMakeFiles/ablation_heuristic_roster.dir/ablation_heuristic_roster.cpp.o.d"
  "ablation_heuristic_roster"
  "ablation_heuristic_roster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristic_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
