# Empty dependencies file for ablation_heuristic_roster.
# This may be replaced when dependencies are built.
