file(REMOVE_RECURSE
  "CMakeFiles/ablation_reservation_depth.dir/ablation_reservation_depth.cpp.o"
  "CMakeFiles/ablation_reservation_depth.dir/ablation_reservation_depth.cpp.o.d"
  "ablation_reservation_depth"
  "ablation_reservation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reservation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
