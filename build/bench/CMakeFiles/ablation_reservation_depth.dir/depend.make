# Empty dependencies file for ablation_reservation_depth.
# This may be replaced when dependencies are built.
