file(REMOVE_RECURSE
  "CMakeFiles/ablation_reward_weights.dir/ablation_reward_weights.cpp.o"
  "CMakeFiles/ablation_reward_weights.dir/ablation_reward_weights.cpp.o.d"
  "ablation_reward_weights"
  "ablation_reward_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reward_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
