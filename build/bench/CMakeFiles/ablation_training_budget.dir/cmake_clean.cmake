file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_budget.dir/ablation_training_budget.cpp.o"
  "CMakeFiles/ablation_training_budget.dir/ablation_training_budget.cpp.o.d"
  "ablation_training_budget"
  "ablation_training_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
