# Empty dependencies file for ablation_training_budget.
# This may be replaced when dependencies are built.
