file(REMOVE_RECURSE
  "CMakeFiles/dras_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/dras_bench_common.dir/bench_common.cpp.o.d"
  "libdras_bench_common.a"
  "libdras_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dras_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
