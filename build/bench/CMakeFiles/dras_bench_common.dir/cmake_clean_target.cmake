file(REMOVE_RECURSE
  "libdras_bench_common.a"
)
