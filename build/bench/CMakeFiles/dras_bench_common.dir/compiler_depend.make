# Empty compiler generated dependencies file for dras_bench_common.
# This may be replaced when dependencies are built.
