# Empty compiler generated dependencies file for fig2_job_characterization.
# This may be replaced when dependencies are built.
