file(REMOVE_RECURSE
  "CMakeFiles/fig3_job_patterns.dir/fig3_job_patterns.cpp.o"
  "CMakeFiles/fig3_job_patterns.dir/fig3_job_patterns.cpp.o.d"
  "fig3_job_patterns"
  "fig3_job_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_job_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
