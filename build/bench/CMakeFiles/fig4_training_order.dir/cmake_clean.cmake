file(REMOVE_RECURSE
  "CMakeFiles/fig4_training_order.dir/fig4_training_order.cpp.o"
  "CMakeFiles/fig4_training_order.dir/fig4_training_order.cpp.o.d"
  "fig4_training_order"
  "fig4_training_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_training_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
