# Empty dependencies file for fig4_training_order.
# This may be replaced when dependencies are built.
