file(REMOVE_RECURSE
  "CMakeFiles/fig5_learning_curves.dir/fig5_learning_curves.cpp.o"
  "CMakeFiles/fig5_learning_curves.dir/fig5_learning_curves.cpp.o.d"
  "fig5_learning_curves"
  "fig5_learning_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_learning_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
