# Empty dependencies file for fig6_overall_performance.
# This may be replaced when dependencies are built.
