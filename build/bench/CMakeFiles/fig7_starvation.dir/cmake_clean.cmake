file(REMOVE_RECURSE
  "CMakeFiles/fig7_starvation.dir/fig7_starvation.cpp.o"
  "CMakeFiles/fig7_starvation.dir/fig7_starvation.cpp.o.d"
  "fig7_starvation"
  "fig7_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
