# Empty dependencies file for fig7_starvation.
# This may be replaced when dependencies are built.
