file(REMOVE_RECURSE
  "CMakeFiles/fig8_wait_by_mode.dir/fig8_wait_by_mode.cpp.o"
  "CMakeFiles/fig8_wait_by_mode.dir/fig8_wait_by_mode.cpp.o.d"
  "fig8_wait_by_mode"
  "fig8_wait_by_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_wait_by_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
