# Empty dependencies file for fig8_wait_by_mode.
# This may be replaced when dependencies are built.
