# Empty dependencies file for fig9_adaptation.
# This may be replaced when dependencies are built.
