file(REMOVE_RECURSE
  "CMakeFiles/table3_network_configs.dir/table3_network_configs.cpp.o"
  "CMakeFiles/table3_network_configs.dir/table3_network_configs.cpp.o.d"
  "table3_network_configs"
  "table3_network_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_network_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
