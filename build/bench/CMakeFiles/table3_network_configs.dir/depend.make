# Empty dependencies file for table3_network_configs.
# This may be replaced when dependencies are built.
