file(REMOVE_RECURSE
  "CMakeFiles/table4_job_distributions.dir/table4_job_distributions.cpp.o"
  "CMakeFiles/table4_job_distributions.dir/table4_job_distributions.cpp.o.d"
  "table4_job_distributions"
  "table4_job_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_job_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
