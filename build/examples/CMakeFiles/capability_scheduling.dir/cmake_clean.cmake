file(REMOVE_RECURSE
  "CMakeFiles/capability_scheduling.dir/capability_scheduling.cpp.o"
  "CMakeFiles/capability_scheduling.dir/capability_scheduling.cpp.o.d"
  "capability_scheduling"
  "capability_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
