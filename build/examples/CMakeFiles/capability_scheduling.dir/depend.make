# Empty dependencies file for capability_scheduling.
# This may be replaced when dependencies are built.
