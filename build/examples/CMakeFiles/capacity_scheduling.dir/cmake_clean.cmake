file(REMOVE_RECURSE
  "CMakeFiles/capacity_scheduling.dir/capacity_scheduling.cpp.o"
  "CMakeFiles/capacity_scheduling.dir/capacity_scheduling.cpp.o.d"
  "capacity_scheduling"
  "capacity_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
