# Empty compiler generated dependencies file for capacity_scheduling.
# This may be replaced when dependencies are built.
