file(REMOVE_RECURSE
  "CMakeFiles/conservative_backfilling.dir/conservative_backfilling.cpp.o"
  "CMakeFiles/conservative_backfilling.dir/conservative_backfilling.cpp.o.d"
  "conservative_backfilling"
  "conservative_backfilling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conservative_backfilling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
