# Empty compiler generated dependencies file for conservative_backfilling.
# This may be replaced when dependencies are built.
