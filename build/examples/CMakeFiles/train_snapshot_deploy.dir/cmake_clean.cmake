file(REMOVE_RECURSE
  "CMakeFiles/train_snapshot_deploy.dir/train_snapshot_deploy.cpp.o"
  "CMakeFiles/train_snapshot_deploy.dir/train_snapshot_deploy.cpp.o.d"
  "train_snapshot_deploy"
  "train_snapshot_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_snapshot_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
