# Empty compiler generated dependencies file for train_snapshot_deploy.
# This may be replaced when dependencies are built.
