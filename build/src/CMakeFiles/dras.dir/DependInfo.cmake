
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dql_policy.cpp" "src/CMakeFiles/dras.dir/core/dql_policy.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/dql_policy.cpp.o.d"
  "/root/repo/src/core/dras_agent.cpp" "src/CMakeFiles/dras.dir/core/dras_agent.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/dras_agent.cpp.o.d"
  "/root/repo/src/core/pg_policy.cpp" "src/CMakeFiles/dras.dir/core/pg_policy.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/pg_policy.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/CMakeFiles/dras.dir/core/presets.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/presets.cpp.o.d"
  "/root/repo/src/core/reward.cpp" "src/CMakeFiles/dras.dir/core/reward.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/reward.cpp.o.d"
  "/root/repo/src/core/state_encoder.cpp" "src/CMakeFiles/dras.dir/core/state_encoder.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/state_encoder.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/CMakeFiles/dras.dir/core/window.cpp.o" "gcc" "src/CMakeFiles/dras.dir/core/window.cpp.o.d"
  "/root/repo/src/metrics/kiviat.cpp" "src/CMakeFiles/dras.dir/metrics/kiviat.cpp.o" "gcc" "src/CMakeFiles/dras.dir/metrics/kiviat.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/dras.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/dras.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/CMakeFiles/dras.dir/metrics/stats.cpp.o" "gcc" "src/CMakeFiles/dras.dir/metrics/stats.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/dras.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/dras.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/dras.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/dras.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/CMakeFiles/dras.dir/nn/ops.cpp.o" "gcc" "src/CMakeFiles/dras.dir/nn/ops.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/dras.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/dras.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/sched/bin_packing.cpp" "src/CMakeFiles/dras.dir/sched/bin_packing.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/bin_packing.cpp.o.d"
  "/root/repo/src/sched/decima_pg.cpp" "src/CMakeFiles/dras.dir/sched/decima_pg.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/decima_pg.cpp.o.d"
  "/root/repo/src/sched/fcfs_easy.cpp" "src/CMakeFiles/dras.dir/sched/fcfs_easy.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/fcfs_easy.cpp.o.d"
  "/root/repo/src/sched/knapsack_opt.cpp" "src/CMakeFiles/dras.dir/sched/knapsack_opt.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/knapsack_opt.cpp.o.d"
  "/root/repo/src/sched/priority_sched.cpp" "src/CMakeFiles/dras.dir/sched/priority_sched.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/priority_sched.cpp.o.d"
  "/root/repo/src/sched/random_policy.cpp" "src/CMakeFiles/dras.dir/sched/random_policy.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sched/random_policy.cpp.o.d"
  "/root/repo/src/sim/backfill.cpp" "src/CMakeFiles/dras.dir/sim/backfill.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/backfill.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/CMakeFiles/dras.dir/sim/cluster.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/dras.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/job.cpp" "src/CMakeFiles/dras.dir/sim/job.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/job.cpp.o.d"
  "/root/repo/src/sim/metrics_collector.cpp" "src/CMakeFiles/dras.dir/sim/metrics_collector.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/metrics_collector.cpp.o.d"
  "/root/repo/src/sim/profile.cpp" "src/CMakeFiles/dras.dir/sim/profile.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/profile.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/dras.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/wait_queue.cpp" "src/CMakeFiles/dras.dir/sim/wait_queue.cpp.o" "gcc" "src/CMakeFiles/dras.dir/sim/wait_queue.cpp.o.d"
  "/root/repo/src/train/convergence.cpp" "src/CMakeFiles/dras.dir/train/convergence.cpp.o" "gcc" "src/CMakeFiles/dras.dir/train/convergence.cpp.o.d"
  "/root/repo/src/train/curriculum.cpp" "src/CMakeFiles/dras.dir/train/curriculum.cpp.o" "gcc" "src/CMakeFiles/dras.dir/train/curriculum.cpp.o.d"
  "/root/repo/src/train/evaluator.cpp" "src/CMakeFiles/dras.dir/train/evaluator.cpp.o" "gcc" "src/CMakeFiles/dras.dir/train/evaluator.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/CMakeFiles/dras.dir/train/trainer.cpp.o" "gcc" "src/CMakeFiles/dras.dir/train/trainer.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/dras.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/dras.dir/util/args.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/dras.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/dras.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/dras.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/dras.dir/util/format.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/dras.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/dras.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dras.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dras.dir/util/rng.cpp.o.d"
  "/root/repo/src/workload/estimates.cpp" "src/CMakeFiles/dras.dir/workload/estimates.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/estimates.cpp.o.d"
  "/root/repo/src/workload/jobset.cpp" "src/CMakeFiles/dras.dir/workload/jobset.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/jobset.cpp.o.d"
  "/root/repo/src/workload/models.cpp" "src/CMakeFiles/dras.dir/workload/models.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/models.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/CMakeFiles/dras.dir/workload/swf.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/swf.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/dras.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/dras.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/dras.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
