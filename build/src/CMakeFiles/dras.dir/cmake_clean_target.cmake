file(REMOVE_RECURSE
  "libdras.a"
)
