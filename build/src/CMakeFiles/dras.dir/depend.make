# Empty dependencies file for dras.
# This may be replaced when dependencies are built.
