
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_dql_policy.cpp" "tests/CMakeFiles/dras_tests.dir/core/test_dql_policy.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/core/test_dql_policy.cpp.o.d"
  "/root/repo/tests/core/test_dras_agent.cpp" "tests/CMakeFiles/dras_tests.dir/core/test_dras_agent.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/core/test_dras_agent.cpp.o.d"
  "/root/repo/tests/core/test_pg_policy.cpp" "tests/CMakeFiles/dras_tests.dir/core/test_pg_policy.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/core/test_pg_policy.cpp.o.d"
  "/root/repo/tests/core/test_reward.cpp" "tests/CMakeFiles/dras_tests.dir/core/test_reward.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/core/test_reward.cpp.o.d"
  "/root/repo/tests/core/test_state_encoder.cpp" "tests/CMakeFiles/dras_tests.dir/core/test_state_encoder.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/core/test_state_encoder.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/dras_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/metrics/test_kiviat.cpp" "tests/CMakeFiles/dras_tests.dir/metrics/test_kiviat.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/metrics/test_kiviat.cpp.o.d"
  "/root/repo/tests/metrics/test_report.cpp" "tests/CMakeFiles/dras_tests.dir/metrics/test_report.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/metrics/test_report.cpp.o.d"
  "/root/repo/tests/metrics/test_stats.cpp" "tests/CMakeFiles/dras_tests.dir/metrics/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/metrics/test_stats.cpp.o.d"
  "/root/repo/tests/metrics/test_stats_property.cpp" "tests/CMakeFiles/dras_tests.dir/metrics/test_stats_property.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/metrics/test_stats_property.cpp.o.d"
  "/root/repo/tests/nn/test_adam.cpp" "tests/CMakeFiles/dras_tests.dir/nn/test_adam.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/nn/test_adam.cpp.o.d"
  "/root/repo/tests/nn/test_network.cpp" "tests/CMakeFiles/dras_tests.dir/nn/test_network.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/nn/test_network.cpp.o.d"
  "/root/repo/tests/nn/test_ops.cpp" "tests/CMakeFiles/dras_tests.dir/nn/test_ops.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/nn/test_ops.cpp.o.d"
  "/root/repo/tests/nn/test_serialize.cpp" "tests/CMakeFiles/dras_tests.dir/nn/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/nn/test_serialize.cpp.o.d"
  "/root/repo/tests/sched/test_bin_packing.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_bin_packing.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_bin_packing.cpp.o.d"
  "/root/repo/tests/sched/test_decima_pg.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_decima_pg.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_decima_pg.cpp.o.d"
  "/root/repo/tests/sched/test_fcfs_easy.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_fcfs_easy.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_fcfs_easy.cpp.o.d"
  "/root/repo/tests/sched/test_knapsack_opt.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_knapsack_opt.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_knapsack_opt.cpp.o.d"
  "/root/repo/tests/sched/test_priority_sched.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_priority_sched.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_priority_sched.cpp.o.d"
  "/root/repo/tests/sched/test_random_policy.cpp" "tests/CMakeFiles/dras_tests.dir/sched/test_random_policy.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sched/test_random_policy.cpp.o.d"
  "/root/repo/tests/sim/test_backfill.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_backfill.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_backfill.cpp.o.d"
  "/root/repo/tests/sim/test_cluster.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_cluster.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue_property.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_event_queue_property.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_event_queue_property.cpp.o.d"
  "/root/repo/tests/sim/test_job.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_job.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_job.cpp.o.d"
  "/root/repo/tests/sim/test_multi_reservation.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_multi_reservation.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_multi_reservation.cpp.o.d"
  "/root/repo/tests/sim/test_profile.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_profile.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_profile.cpp.o.d"
  "/root/repo/tests/sim/test_properties.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_properties.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_simulator_edge.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_simulator_edge.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_simulator_edge.cpp.o.d"
  "/root/repo/tests/sim/test_wait_queue.cpp" "tests/CMakeFiles/dras_tests.dir/sim/test_wait_queue.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/sim/test_wait_queue.cpp.o.d"
  "/root/repo/tests/train/test_convergence.cpp" "tests/CMakeFiles/dras_tests.dir/train/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/train/test_convergence.cpp.o.d"
  "/root/repo/tests/train/test_curriculum.cpp" "tests/CMakeFiles/dras_tests.dir/train/test_curriculum.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/train/test_curriculum.cpp.o.d"
  "/root/repo/tests/train/test_trainer.cpp" "tests/CMakeFiles/dras_tests.dir/train/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/train/test_trainer.cpp.o.d"
  "/root/repo/tests/util/test_args.cpp" "tests/CMakeFiles/dras_tests.dir/util/test_args.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/util/test_args.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/dras_tests.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_format.cpp" "tests/CMakeFiles/dras_tests.dir/util/test_format.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/util/test_format.cpp.o.d"
  "/root/repo/tests/util/test_logging.cpp" "tests/CMakeFiles/dras_tests.dir/util/test_logging.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/util/test_logging.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/dras_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/workload/test_estimates.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_estimates.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_estimates.cpp.o.d"
  "/root/repo/tests/workload/test_filter.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_filter.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_filter.cpp.o.d"
  "/root/repo/tests/workload/test_jobset.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_jobset.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_jobset.cpp.o.d"
  "/root/repo/tests/workload/test_models.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_models.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_models.cpp.o.d"
  "/root/repo/tests/workload/test_swf.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_swf.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_swf.cpp.o.d"
  "/root/repo/tests/workload/test_synthetic.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_synthetic.cpp.o.d"
  "/root/repo/tests/workload/test_trace_stats.cpp" "tests/CMakeFiles/dras_tests.dir/workload/test_trace_stats.cpp.o" "gcc" "tests/CMakeFiles/dras_tests.dir/workload/test_trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dras.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
