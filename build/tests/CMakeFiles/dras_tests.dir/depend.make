# Empty dependencies file for dras_tests.
# This may be replaced when dependencies are built.
