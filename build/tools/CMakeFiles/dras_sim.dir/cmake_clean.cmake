file(REMOVE_RECURSE
  "CMakeFiles/dras_sim.dir/dras_sim.cpp.o"
  "CMakeFiles/dras_sim.dir/dras_sim.cpp.o.d"
  "dras_sim"
  "dras_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dras_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
