# Empty compiler generated dependencies file for dras_sim.
# This may be replaced when dependencies are built.
