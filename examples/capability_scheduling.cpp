// Capability-computing scenario (Theta-style, paper §IV).
//
// Demonstrates the full method roster on a capability workload — the
// environment where resource reservation decides whether large jobs
// starve.  Trains DRAS-PG/DQL with the three-phase curriculum (§III-C),
// evaluates every method on a held-out test trace, and reports per-size
// wait statistics so the starvation contrast is visible.
//
//   ./capability_scheduling
#include <iostream>

#include "core/dras_agent.h"
#include "core/presets.h"
#include "metrics/report.h"
#include "metrics/stats.h"
#include "sched/bin_packing.h"
#include "sched/decima_pg.h"
#include "sched/fcfs_easy.h"
#include "sched/knapsack_opt.h"
#include "sched/random_policy.h"
#include "train/curriculum.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"

int main() {
  using dras::util::format;
  const auto system = dras::core::theta_mini();
  const auto model = dras::workload::theta_mini_workload();
  const dras::core::RewardFunction reward(system.reward);

  // Stand-in "real" trace and the three-phase training curriculum.
  dras::workload::GenerateOptions real_gen;
  real_gen.num_jobs = 2000;
  real_gen.seed = dras::workload::kRealTraceSeed;
  const auto real_trace = dras::workload::generate_trace(model, real_gen);

  dras::train::CurriculumOptions curriculum_options;
  curriculum_options.sampled_sets = 6;
  curriculum_options.real_sets = 6;
  curriculum_options.synthetic_sets = 8;
  curriculum_options.jobs_per_set = 400;
  curriculum_options.seed = 11;
  const auto curriculum = dras::train::build_curriculum(
      model, real_trace, curriculum_options);
  std::cout << format("curriculum: {} jobsets (sampled -> real -> "
                      "synthetic)\n", curriculum.size());

  // Train both DRAS agents.
  dras::core::DrasAgent dras_pg(
      system.agent_config(dras::core::AgentKind::PG, 1));
  dras::core::DrasAgent dras_dql(
      system.agent_config(dras::core::AgentKind::DQL, 2));
  dras::train::TrainerOptions trainer_options;
  trainer_options.validate_each_episode = false;
  for (auto* agent : {&dras_pg, &dras_dql}) {
    dras::train::Trainer trainer(*agent, system.nodes, {}, trainer_options);
    (void)trainer.run(curriculum);
    agent->set_training(false);
  }

  // Baselines.
  dras::sched::FcfsEasy fcfs;
  dras::sched::BinPacking bin_packing;
  dras::sched::RandomPolicy random(3);
  dras::sched::KnapsackOpt optimization(reward);
  dras::sched::DecimaConfig decima_cfg;
  decima_cfg.total_nodes = system.nodes;
  decima_cfg.window = system.window;
  decima_cfg.fc1 = system.fc1;
  decima_cfg.fc2 = system.fc2;
  decima_cfg.time_scale = system.max_walltime;
  decima_cfg.seed = 4;
  dras::sched::DecimaPG decima(decima_cfg);
  for (const auto& jobset : curriculum) {
    dras::sim::Simulator sim(system.nodes);
    (void)sim.run(jobset.trace, decima);
  }
  decima.set_training(false);

  // Held-out test trace.
  dras::workload::GenerateOptions test_gen;
  test_gen.num_jobs = 1000;
  test_gen.seed = 987;
  const auto test_trace = dras::workload::generate_trace(model, test_gen);

  const int size_edges[] = {32, 128};
  std::vector<std::vector<std::string>> table;
  for (dras::sim::Scheduler* method :
       std::vector<dras::sim::Scheduler*>{&fcfs, &bin_packing, &random,
                                          &optimization, &decima, &dras_pg,
                                          &dras_dql}) {
    const auto evaluation =
        dras::train::evaluate(system.nodes, test_trace, *method, &reward);
    const auto by_size =
        dras::metrics::by_size_bucket(evaluation.result.jobs, size_edges);
    table.push_back(
        {evaluation.method,
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.max_wait),
         dras::metrics::format_duration(by_size[0].avg_wait),
         dras::metrics::format_duration(by_size[2].avg_wait),
         dras::metrics::format_duration(by_size[2].max_wait),
         format("{:.1f}%", 100.0 * evaluation.summary.utilization)});
  }
  dras::metrics::print_table(
      std::cout,
      {"method", "avg wait", "max wait", "small-job wait", "large-job wait",
       "large-job max", "util"},
      table);
  std::cout << "\nlarge jobs starve under the no-reservation methods "
               "(BinPacking / Random / Decima-PG); FCFS and DRAS bound "
               "them via reservations.\n";
  return 0;
}
