// Capacity-computing scenario (Cori-style, paper §IV).
//
// Capacity facilities optimise turnaround: the reward is Eq. 2 (average
// queue penalty) and the interesting comparison is average wait and
// slowdown rather than large-job starvation.  Uses DRAS-DQL, which the
// paper finds strongest on system-level metrics.
//
//   ./capacity_scheduling
#include <iostream>

#include "core/dras_agent.h"
#include "core/presets.h"
#include "metrics/report.h"
#include "sched/fcfs_easy.h"
#include "sched/knapsack_opt.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"

int main() {
  using dras::util::format;
  const auto system = dras::core::cori_mini();
  const auto model = dras::workload::cori_mini_workload();
  const dras::core::RewardFunction reward(system.reward);

  std::cout << format("capacity scenario: {} nodes, reward = Eq. 2 "
                      "(minimise average wait)\n", system.nodes);

  // Train DRAS-DQL on synthetic jobsets.
  dras::core::DrasAgent agent(
      system.agent_config(dras::core::AgentKind::DQL, 5));
  dras::train::TrainerOptions trainer_options;
  trainer_options.validate_each_episode = false;
  dras::train::Trainer trainer(agent, system.nodes, {}, trainer_options);
  for (int episode = 0; episode < 20; ++episode) {
    dras::workload::GenerateOptions gen;
    gen.num_jobs = 400;
    gen.seed = 500 + episode;
    (void)trainer.run_episode(dras::train::Jobset{
        format("capacity-{}", episode), dras::train::JobsetPhase::Synthetic,
        dras::workload::generate_trace(model, gen)});
  }
  agent.set_training(false);

  // Evaluate against FCFS and the myopic Optimization baseline.
  dras::workload::GenerateOptions test_gen;
  test_gen.num_jobs = 1200;
  test_gen.seed = 321;
  const auto test_trace = dras::workload::generate_trace(model, test_gen);

  dras::sched::FcfsEasy fcfs;
  dras::sched::KnapsackOpt optimization(reward);

  std::vector<std::vector<std::string>> table;
  double fcfs_wait = 0.0, dras_wait = 0.0;
  for (dras::sim::Scheduler* method :
       std::vector<dras::sim::Scheduler*>{&fcfs, &optimization, &agent}) {
    const auto evaluation =
        dras::train::evaluate(system.nodes, test_trace, *method, &reward);
    table.push_back(
        {evaluation.method,
         dras::metrics::format_duration(evaluation.summary.avg_wait),
         dras::metrics::format_duration(evaluation.summary.p90_wait),
         format("{:.2f}", evaluation.summary.avg_slowdown),
         dras::metrics::format_duration(evaluation.summary.avg_response),
         format("{:.1f}%", 100.0 * evaluation.summary.utilization)});
    if (evaluation.method == "FCFS") fcfs_wait = evaluation.summary.avg_wait;
    if (evaluation.method == "DRAS-DQL")
      dras_wait = evaluation.summary.avg_wait;
  }
  dras::metrics::print_table(std::cout,
                             {"method", "avg wait", "p90 wait", "slowdown",
                              "avg response", "util"},
                             table);
  if (fcfs_wait > 0.0)
    std::cout << format(
        "\nDRAS-DQL average wait is {:.0f}% of FCFS on this capacity "
        "workload.\n", 100.0 * dras_wait / fcfs_wait);
  return 0;
}
