// Reservation-depth extension: EASY vs conservative backfilling.
//
// The paper's DRAS (and production EASY) keep one outstanding
// reservation.  This example sweeps the simulator's reservation depth on
// the same workload with the same policy, showing the classic trade-off:
// deeper ledgers give more jobs a guaranteed start (tighter worst-case
// wait) but shrink the backfill opportunity.
//
//   ./conservative_backfilling
#include <iostream>

#include "metrics/report.h"
#include "metrics/stats.h"
#include "sched/fcfs_easy.h"
#include "sim/simulator.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"

int main() {
  using dras::util::format;
  const auto model = dras::workload::theta_mini_workload();

  dras::workload::GenerateOptions gen;
  gen.num_jobs = 1000;
  gen.seed = 77;
  gen.load_scale = 1.1;  // slight overload: reservations matter
  const auto trace = dras::workload::generate_trace(model, gen);
  std::cout << format(
      "{} jobs on {} nodes at ~110% offered load, FCFS policy\n\n",
      trace.size(), model.system_nodes);

  std::vector<std::vector<std::string>> table;
  for (const int depth : {1, 2, 4, 8, 16}) {
    dras::sim::Simulator sim(model.system_nodes, depth);
    dras::sched::FcfsEasy fcfs;
    const auto result = sim.run(trace, fcfs);
    const auto summary = dras::metrics::summarize(result);
    std::size_t backfilled = 0, reserved = 0;
    for (const auto& rec : result.jobs) {
      if (rec.mode == dras::sim::ExecMode::Backfilled) ++backfilled;
      if (rec.mode == dras::sim::ExecMode::Reserved) ++reserved;
    }
    table.push_back({depth == 1 ? "1 (EASY)" : format("{}", depth),
                     dras::metrics::format_duration(summary.avg_wait),
                     dras::metrics::format_duration(summary.p90_wait),
                     dras::metrics::format_duration(summary.max_wait),
                     format("{}", backfilled), format("{}", reserved),
                     format("{:.1f}%", 100.0 * summary.utilization)});
  }
  dras::metrics::print_table(std::cout,
                             {"depth", "avg wait", "p90 wait", "max wait",
                              "backfilled", "reserved", "util"},
                             table);
  std::cout << "\ndeeper ledgers trade backfill throughput for start-time "
               "guarantees (EASY -> conservative spectrum).\n";
  return 0;
}
