// Quickstart: the smallest useful dras program.
//
// Generates a synthetic capability workload, schedules it with FCFS/EASY
// and with an (untrained, then briefly trained) DRAS-PG agent, and prints
// the §IV-E metrics side by side.
//
//   ./quickstart
#include <iostream>

#include "core/dras_agent.h"
#include "core/presets.h"
#include "metrics/report.h"
#include "sched/fcfs_easy.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"

int main() {
  using dras::util::format;

  // 1. Pick a system preset and its matching workload model.
  const dras::core::SystemPreset system = dras::core::theta_mini();
  const dras::workload::WorkloadModel model =
      dras::workload::theta_mini_workload();

  // 2. Generate a workload trace (or read one with workload::read_swf_file).
  dras::workload::GenerateOptions gen;
  gen.num_jobs = 500;
  gen.seed = 42;
  const dras::sim::Trace trace = dras::workload::generate_trace(model, gen);
  std::cout << format("generated {} jobs on a {}-node system\n",
                      trace.size(), system.nodes);

  // 3. Schedule it with the production baseline: FCFS + EASY backfilling.
  dras::sched::FcfsEasy fcfs;
  const auto fcfs_eval = dras::train::evaluate(system.nodes, trace, fcfs);

  // 4. Build a DRAS-PG agent and train it for a few episodes.
  dras::core::DrasAgent agent(
      system.agent_config(dras::core::AgentKind::PG, /*seed=*/1));
  {
    dras::train::TrainerOptions options;
    options.validate_each_episode = false;
    dras::train::Trainer trainer(agent, system.nodes, {}, options);
    for (int episode = 0; episode < 10; ++episode) {
      dras::workload::GenerateOptions episode_gen;
      episode_gen.num_jobs = 400;
      episode_gen.seed = 100 + episode;
      (void)trainer.run_episode(dras::train::Jobset{
          format("episode-{}", episode), dras::train::JobsetPhase::Synthetic,
          dras::workload::generate_trace(model, episode_gen)});
    }
    agent.set_training(false);  // freeze for evaluation
  }
  const auto dras_eval = dras::train::evaluate(system.nodes, trace, agent);

  // 5. Compare.
  const auto row = [](const dras::train::Evaluation& e) {
    return std::vector<std::string>{
        e.method, dras::metrics::format_duration(e.summary.avg_wait),
        dras::metrics::format_duration(e.summary.max_wait),
        format("{:.2f}", e.summary.avg_slowdown),
        format("{:.1f}%", 100.0 * e.summary.utilization)};
  };
  dras::metrics::print_table(
      std::cout, {"method", "avg wait", "max wait", "slowdown", "util"},
      {row(fcfs_eval), row(dras_eval)});
  return 0;
}
