// Trace tooling: write a workload to Standard Workload Format, read it
// back, and replay it through the simulator — the workflow for feeding
// dras with logs from the Parallel Workloads Archive.
//
//   ./swf_replay [path/to/trace.swf]
//
// Without an argument the example writes a synthetic trace to a temporary
// SWF file first, so it is self-contained.
#include <filesystem>
#include <iostream>

#include "metrics/report.h"
#include "sched/fcfs_easy.h"
#include "train/evaluator.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/swf.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using dras::util::format;

  std::filesystem::path path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Self-contained mode: write a synthetic trace as SWF first.
    path = std::filesystem::temp_directory_path() / "dras_example.swf";
    dras::workload::GenerateOptions gen;
    gen.num_jobs = 800;
    gen.seed = 7;
    const auto trace = dras::workload::generate_trace(
        dras::workload::theta_mini_workload(), gen);
    dras::workload::write_swf_file(path, trace);
    std::cout << format("wrote {} jobs to {}\n", trace.size(),
                        path.string());
  }

  const auto trace = dras::workload::read_swf_file(path);
  if (trace.empty()) {
    std::cerr << "no usable jobs in " << path << "\n";
    return 1;
  }
  const auto summary = dras::workload::summarize_trace(trace);
  std::cout << format(
      "read {} jobs spanning {}; max job {} nodes, {} node-hours total\n",
      summary.jobs, dras::metrics::format_duration(summary.span_seconds),
      summary.max_size, format("{:.0f}", summary.total_node_hours));

  // Size the simulated machine to the largest job (or use a preset).
  const int nodes = std::max(summary.max_size, 64);
  dras::sched::FcfsEasy fcfs;
  const auto evaluation = dras::train::evaluate(nodes, trace, fcfs);

  dras::metrics::print_table(
      std::cout, {"metric", "value"},
      {{"jobs completed", format("{}", evaluation.summary.jobs)},
       {"avg wait", dras::metrics::format_duration(
                        evaluation.summary.avg_wait)},
       {"max wait", dras::metrics::format_duration(
                        evaluation.summary.max_wait)},
       {"avg slowdown", format("{:.2f}", evaluation.summary.avg_slowdown)},
       {"utilization",
        format("{:.1f}%", 100.0 * evaluation.summary.utilization)}});

  if (argc <= 1) std::filesystem::remove(path);
  return 0;
}
