// Model lifecycle: train → snapshot per episode → pick the converged
// model → deploy it into a fresh agent (the paper's §III-C workflow:
// "we monitor the progress of the training by taking a snapshot of the
// model after each episode" and §IV-D "we use the model trained after the
// 50th episode for testing").
//
//   ./train_snapshot_deploy [snapshot-dir]
#include <filesystem>
#include <iostream>

#include "core/dras_agent.h"
#include "core/presets.h"
#include "metrics/report.h"
#include "nn/serialize.h"
#include "train/convergence.h"
#include "train/evaluator.h"
#include "train/trainer.h"
#include "util/format.h"
#include "workload/models.h"
#include "workload/synthetic.h"

int main(int argc, char** argv) {
  using dras::util::format;
  const auto system = dras::core::theta_mini();
  const auto model = dras::workload::theta_mini_workload();

  const std::filesystem::path snapshot_dir =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::temp_directory_path() / "dras_snapshots";
  std::filesystem::create_directories(snapshot_dir);

  // Validation trace used to monitor convergence.
  dras::workload::GenerateOptions validation_gen;
  validation_gen.num_jobs = 200;
  validation_gen.seed = 2024;
  const auto validation =
      dras::workload::generate_trace(model, validation_gen);

  // Train with per-episode snapshots and pick the best-validating episode.
  dras::core::DrasAgent agent(
      system.agent_config(dras::core::AgentKind::PG, 9));
  dras::train::TrainerOptions options;
  options.snapshot_dir = snapshot_dir;
  dras::train::Trainer trainer(agent, system.nodes, validation, options);

  std::size_t best_episode = 0;
  double best_reward = -1e18;
  constexpr int kEpisodes = 16;
  dras::train::ConvergenceMonitor convergence(
      {.window = 3, .tolerance = 0.03});
  for (int episode = 0; episode < kEpisodes; ++episode) {
    dras::workload::GenerateOptions gen;
    gen.num_jobs = 300;
    gen.seed = 700 + episode;
    const auto result = trainer.run_episode(dras::train::Jobset{
        format("jobset-{}", episode), dras::train::JobsetPhase::Synthetic,
        dras::workload::generate_trace(model, gen)});
    std::cout << format("episode {}: validation reward {:.2f}\n",
                        result.episode, result.validation_reward);
    if (result.validation_reward > best_reward) {
      best_reward = result.validation_reward;
      best_episode = result.episode;
    }
    // Stop early once the validation reward plateaus (the paper trains
    // until convergence, then deploys that episode's snapshot, §IV-D).
    if (convergence.record(result.validation_reward)) {
      std::cout << format("validation reward converged at episode {}\n",
                          *convergence.converged_at());
      break;
    }
  }
  std::cout << format("\nconverged model: episode {} (reward {:.2f})\n",
                      best_episode, best_reward);

  // Deploy: load the chosen snapshot into a fresh agent.
  const auto snapshot_path =
      snapshot_dir / format("DRAS-PG-episode-{}.bin", best_episode);
  dras::core::DrasAgent deployed(
      system.agent_config(dras::core::AgentKind::PG, 9));
  {
    const auto loaded = dras::nn::load_network_file(snapshot_path);
    const auto src = loaded.parameters();
    const auto dst = deployed.network().parameters();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  deployed.set_training(false);

  // Confirm the deployed model reproduces the snapshot's behaviour.
  dras::workload::GenerateOptions test_gen;
  test_gen.num_jobs = 400;
  test_gen.seed = 4242;
  const auto test_trace = dras::workload::generate_trace(model, test_gen);
  const auto evaluation =
      dras::train::evaluate(system.nodes, test_trace, deployed);
  dras::metrics::print_table(
      std::cout, {"deployed model metric", "value"},
      {{"jobs", format("{}", evaluation.summary.jobs)},
       {"avg wait",
        dras::metrics::format_duration(evaluation.summary.avg_wait)},
       {"utilization",
        format("{:.1f}%", 100.0 * evaluation.summary.utilization)}});
  return 0;
}
