#!/usr/bin/env bash
# Tier-1 verification: the checks every PR must keep green.
#
#   1. Release build + full test suite (the ROADMAP.md tier-1 line).
#   2. ASan+UBSan build (DRAS_SANITIZE=ON) running the telemetry,
#      simulator, and parallel-execution tests — the subsystems with
#      lock-free concurrency, thread pools, and raw-fd I/O, where
#      sanitizers earn their keep.
#
# Usage: scripts/tier1.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_asan=0
[[ "${1:-}" == "--skip-asan" ]] && skip_asan=1

echo "=== tier-1: release build + full ctest ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$skip_asan" == 1 ]]; then
  echo "=== tier-1: ASan stage skipped ==="
  exit 0
fi

echo "=== tier-1: ASan+UBSan build + obs/sim tests ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DDRAS_SANITIZE=ON
cmake --build build-asan -j "$(nproc)" --target dras_tests
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'Obs|EventTracer|DefaultTracer|Sink|Simulator|Json|ThreadPool|Parallel|Clone|TaskSeed|Wire|Socket|NetServer|NetClient|Chaos'

echo "=== tier-1: all green ==="
