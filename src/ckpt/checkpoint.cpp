#include "ckpt/checkpoint.h"

#include "core/dras_agent.h"
#include "obs/metrics.h"
#include "sim/fault.h"
#include "train/convergence.h"
#include "train/curriculum.h"
#include "train/trainer.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/fs.h"

namespace dras::ckpt {

namespace {

void save_counters(util::BinaryWriter& out) {
  out.section("OBSC", 2);
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  for (const obs::MetricSnapshot& metric : obs::Registry::global().snapshot()) {
    if (metric.kind != obs::MetricKind::Counter) continue;
    counters.emplace_back(metric.name,
                          static_cast<std::uint64_t>(metric.value));
  }
  out.u64(counters.size());
  for (const auto& [name, value] : counters) {
    out.str(name);
    out.u64(value);
  }
  // v2 tail: hdr histograms, so restored runs keep their latency
  // percentiles (and a divergence rollback rewinds them with the rest
  // of the registry).  hdr_names() is dump order — sorted, stable.
  obs::Registry& reg = obs::Registry::global();
  const std::vector<std::string> hdrs = reg.hdr_names();
  out.u64(hdrs.size());
  for (const std::string& name : hdrs) {
    out.str(name);
    reg.hdr(name).save_state(out);
  }
}

void load_counters(util::BinaryReader& in) {
  const std::uint32_t version = in.section("OBSC", 2);
  const std::uint64_t count = in.u64();
  obs::Registry& reg = obs::Registry::global();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = in.str();
    const std::uint64_t value = in.u64();
    reg.counter(name).restore(value);
  }
  if (version < 2) return;  // v1 predates hdr histograms
  const std::uint64_t hdr_count = in.u64();
  for (std::uint64_t i = 0; i < hdr_count; ++i) {
    const std::string name = in.str();
    // load_state adopts the stored config, so a registry that created
    // the metric with different bucketing still restores exactly.
    reg.hdr(name).load_state(in);
  }
}

void save_fault_scenario(util::BinaryWriter& out,
                         const sim::FaultScenario& scenario) {
  out.section("FALT", 1);
  const sim::FaultConfig& c = scenario.config;
  out.f64(c.mtbf);
  out.f64(c.repair_time);
  out.u32(static_cast<std::uint32_t>(c.requeue));
  out.f64(c.ckpt_interval);
  out.f64(c.ckpt_seconds_per_node);
  out.f64(c.io_bandwidth);
  out.f64(c.feature_window);
  out.u64(c.seed);
  out.u64(c.groups.size());
  for (const sim::FaultNodeGroup& group : c.groups) {
    out.i64(group.nodes);
    out.f64(group.mtbf);
  }
  const sim::FaultStats& s = scenario.stats;
  out.u64(s.node_failures);
  out.u64(s.job_kills);
  out.u64(s.requeues);
  out.u64(s.checkpoints);
  out.f64(s.wasted_node_seconds);
}

void load_fault_scenario(util::BinaryReader& in,
                         sim::FaultScenario& scenario) {
  in.section("FALT", 1);
  sim::FaultConfig c;
  c.mtbf = in.f64();
  c.repair_time = in.f64();
  const std::uint32_t requeue = in.u32();
  if (requeue > static_cast<std::uint32_t>(sim::RequeuePolicy::Drop))
    throw CheckpointError(util::format(
        "checkpoint FALT section names unknown requeue policy {}", requeue));
  c.requeue = static_cast<sim::RequeuePolicy>(requeue);
  c.ckpt_interval = in.f64();
  c.ckpt_seconds_per_node = in.f64();
  c.io_bandwidth = in.f64();
  c.feature_window = in.f64();
  c.seed = in.u64();
  const std::uint64_t group_count = in.u64();
  c.groups.resize(group_count);
  for (sim::FaultNodeGroup& group : c.groups) {
    group.nodes = static_cast<int>(in.i64());
    group.mtbf = in.f64();
  }
  sim::FaultStats s;
  s.node_failures = in.u64();
  s.job_kills = in.u64();
  s.requeues = in.u64();
  s.checkpoints = in.u64();
  s.wasted_node_seconds = in.f64();
  scenario.config = std::move(c);
  scenario.stats = s;
}

void require(bool stored, bool supplied, std::string_view component) {
  if (stored == supplied) return;
  throw CheckpointError(
      stored ? util::format(
                   "checkpoint contains {} state but none was supplied "
                   "to decode into",
                   component)
             : util::format(
                   "checkpoint has no {} state but one was supplied; "
                   "save and restore sites must capture the same "
                   "components",
                   component));
}

}  // namespace

void RecoveryState::save_state(util::BinaryWriter& out) const {
  out.section("RCVR", 2);
  out.u64(rollbacks);
  out.f64(lr_scale);
  out.u64(rng_nonce);
  out.u64(healthy_streak);
}

void RecoveryState::load_state(util::BinaryReader& in) {
  const std::uint32_t version = in.section("RCVR", 2);
  rollbacks = in.u64();
  lr_scale = in.f64();
  rng_nonce = in.u64();
  // v1 predates LR recovery decay: the captured run tracked no streak.
  healthy_streak = version >= 2 ? in.u64() : 0;
}

std::string encode_checkpoint(const TrainingState& state) {
  if (state.agent == nullptr)
    throw CheckpointError("checkpoint state needs an agent");
  util::BinaryWriter out;
  state.agent->save_state(out);
  out.boolean(state.trainer != nullptr);
  if (state.trainer != nullptr) state.trainer->save_state(out);
  out.boolean(state.curriculum != nullptr);
  if (state.curriculum != nullptr) state.curriculum->save_state(out);
  out.boolean(state.monitor != nullptr);
  if (state.monitor != nullptr) state.monitor->save_state(out);
  out.boolean(state.telemetry);
  if (state.telemetry) save_counters(out);
  // v2 tail: self-healing recovery state.
  out.boolean(state.recovery != nullptr);
  if (state.recovery != nullptr) state.recovery->save_state(out);
  // v3 tail: failure-scenario config + cumulative waste statistics.
  out.boolean(state.faults != nullptr);
  if (state.faults != nullptr) save_fault_scenario(out, *state.faults);
  return out.take();
}

void decode_checkpoint(std::string_view payload, const TrainingState& state,
                       std::uint32_t format_version) {
  if (state.agent == nullptr)
    throw CheckpointError("checkpoint state needs an agent");
  if (format_version == 0 || format_version > kFormatVersion)
    throw CheckpointError(util::format(
        "cannot decode payload format version {} (this build reads "
        "versions 1..{})",
        format_version, kFormatVersion));
  util::BinaryReader in(payload);
  state.agent->load_state(in);
  require(in.boolean(), state.trainer != nullptr, "trainer");
  if (state.trainer != nullptr) state.trainer->load_state(in);
  require(in.boolean(), state.curriculum != nullptr, "curriculum");
  if (state.curriculum != nullptr) state.curriculum->load_state(in);
  require(in.boolean(), state.monitor != nullptr, "convergence-monitor");
  if (state.monitor != nullptr) state.monitor->load_state(in);
  if (in.boolean()) load_counters(in);
  // Recovery is deliberately looser than the require()d components
  // above: toggling --guard between runs must not strand an existing
  // checkpoint directory in either direction.
  if (format_version >= 2) {
    const bool stored = in.boolean();
    if (stored && state.recovery != nullptr) {
      state.recovery->load_state(in);
    } else if (stored) {
      // Guarded checkpoint read by an unguarded run: decode and discard
      // the "RCVR" section so the stream stays aligned.
      RecoveryState discarded;
      discarded.load_state(in);
    } else if (state.recovery != nullptr) {
      // Unguarded checkpoint read by a guarded run: the captured run
      // absorbed no rollbacks — same reset as the v1 migration.
      *state.recovery = RecoveryState{};
    }
  } else if (state.recovery != nullptr) {
    // v1→v2 migration: the file predates self-healing, so the run it
    // captures has absorbed no rollbacks and carries no LR backoff.
    *state.recovery = RecoveryState{};
  }
  // Failure scenario ("FALT", v3) — as loose as recovery: toggling fault
  // injection between runs must not strand a checkpoint directory.
  if (format_version >= 3) {
    const bool stored = in.boolean();
    if (stored && state.faults != nullptr) {
      load_fault_scenario(in, *state.faults);
    } else if (stored) {
      // Faulty checkpoint read by a fault-free run: decode and discard
      // the section so the stream stays aligned.
      sim::FaultScenario discarded;
      load_fault_scenario(in, discarded);
    } else if (state.faults != nullptr) {
      // Fault-free checkpoint read by a faulty run: the captured run
      // accumulated no waste; keep the caller's config.
      state.faults->stats = sim::FaultStats{};
    }
  } else if (state.faults != nullptr) {
    // v1/v2 migration: the file predates fault injection.
    state.faults->stats = sim::FaultStats{};
  }
  in.expect_exhausted();
}

std::string frame_payload(std::string_view payload) {
  std::string bytes;
  bytes.reserve(kMagic.size() + sizeof(std::uint32_t) * 2 + payload.size());
  bytes.append(kMagic);
  util::BinaryWriter header;
  header.u32(kFormatVersion);
  bytes.append(header.buffer());
  bytes.append(payload);
  const std::uint32_t checksum = util::crc32(bytes);
  util::BinaryWriter trailer;
  trailer.u32(checksum);
  bytes.append(trailer.buffer());
  return bytes;
}

std::string unframe_payload(std::string_view bytes,
                            std::uint32_t* format_version) {
  constexpr std::size_t kHeader = 8 + sizeof(std::uint32_t);
  constexpr std::size_t kTrailer = sizeof(std::uint32_t);
  if (bytes.size() < kHeader + kTrailer)
    throw CheckpointError(util::format(
        "checkpoint is {} bytes — too short to hold the {}-byte "
        "header and checksum; file is truncated",
        bytes.size(), kHeader + kTrailer));
  if (bytes.substr(0, kMagic.size()) != kMagic)
    throw CheckpointError(
        "not a DRAS checkpoint (magic bytes \"DRASCKP1\" missing)");

  const std::string_view checked = bytes.substr(0, bytes.size() - kTrailer);
  util::BinaryReader trailer(bytes.substr(bytes.size() - kTrailer));
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t actual_crc = util::crc32(checked);
  if (stored_crc != actual_crc)
    throw CheckpointError(util::format(
        "checkpoint checksum mismatch (stored {}, computed {}) — "
        "file is corrupt or was truncated mid-write",
        stored_crc, actual_crc));

  util::BinaryReader header(bytes.substr(kMagic.size(), sizeof(std::uint32_t)));
  const std::uint32_t version = header.u32();
  if (version == 0 || version > kFormatVersion)
    throw CheckpointError(util::format(
        "checkpoint format version {} unsupported (this build reads "
        "versions 1..{})",
        version, kFormatVersion));
  if (format_version != nullptr) *format_version = version;

  return std::string(checked.substr(kHeader));
}

void write_checkpoint_file(const std::filesystem::path& path,
                           const TrainingState& state) {
  util::atomic_write_file(path, frame_payload(encode_checkpoint(state)));
}

void read_checkpoint_file(const std::filesystem::path& path,
                          const TrainingState& state) {
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::exception& e) {
    throw CheckpointError(
        util::format("cannot read checkpoint {}: {}", path.string(),
                     e.what()));
  }
  std::uint32_t version = 0;
  const std::string payload = unframe_payload(bytes, &version);
  decode_checkpoint(payload, state, version);
}

}  // namespace dras::ckpt
