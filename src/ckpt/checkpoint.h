// Versioned, checksummed training snapshots (robustness layer).
//
// A checkpoint file is a single atomic unit:
//
//   +-----------+-----------+---------------------+-----------+
//   | "DRASCKP1"| u32 fmt   | payload (sections)  | u32 CRC32 |
//   |  8 bytes  | version   |                     | of all ^  |
//   +-----------+-----------+---------------------+-----------+
//
// The CRC covers magic + version + payload, so truncation, bit rot and
// short writes are all detected before a single payload byte is decoded.
// The payload is a sequence of tagged sections (see util/binio.h)
// produced by the save_state hooks on DrasAgent, Trainer, Curriculum and
// ConvergenceMonitor, plus an "OBSC" section holding the telemetry
// counters — everything needed to continue training bit-identically
// after a crash.
//
// Changing any section layout requires bumping that section's version;
// changing the container framing requires bumping kFormatVersion.  Both
// are pinned by golden-file tests in tests/ckpt.
//
// Format history:
//   v1 — agent + optional trainer/curriculum/monitor + telemetry.
//   v2 — v1 plus an optional trailing "RCVR" recovery-state section
//        (self-healing training: rollback count, LR backoff, RNG nonce).
//        v1 files are still read; they migrate by resetting any supplied
//        RecoveryState to its defaults (tests/ckpt/test_migration.cpp
//        restores a committed v1 golden through this path).
//   v3 — v2 plus an optional trailing "FALT" failure-scenario section
//        (sim/fault.h: the injected fault configuration + cumulative
//        failure/waste statistics), so a crash-resumed faulty run keeps
//        exact waste accounting and re-derives the same failure streams.
//        v1/v2 files migrate by zeroing a supplied scenario's statistics
//        while leaving its (caller-supplied) configuration untouched.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::core {
class DrasAgent;
}  // namespace dras::core

namespace dras::train {
class Trainer;
class Curriculum;
class ConvergenceMonitor;
}  // namespace dras::train

namespace dras::sim {
struct FaultScenario;
}  // namespace dras::sim

namespace dras::ckpt {

/// First 8 bytes of every checkpoint file.
inline constexpr std::string_view kMagic = "DRASCKP1";
/// Container format version (framing, not section layout).
inline constexpr std::uint32_t kFormatVersion = 3;
/// Checkpoint files written by CheckpointManager use this extension.
inline constexpr std::string_view kExtension = ".dras";

/// A checkpoint could not be read: wrong magic, unsupported version,
/// checksum mismatch, or a payload its sections refuse to decode.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Self-healing training state carried by format v2+ ("RCVR" section):
/// how many divergence rollbacks the run has absorbed, the cumulative
/// learning-rate backoff, and the RNG-perturbation nonce — persisted so
/// a crash during recovery resumes with the same retry discipline.
struct RecoveryState {
  std::uint64_t rollbacks = 0;  ///< Divergence rollbacks absorbed so far.
  double lr_scale = 1.0;        ///< Product of per-rollback LR backoffs.
  std::uint64_t rng_nonce = 0;  ///< Perturbs the agent's episode stream.
  /// Consecutive healthy episodes since the last rollback (or the last
  /// LR-recovery step) — feeds the geometric lr_scale decay back toward
  /// 1.0.  "RCVR" section v2; v1 files read as 0.
  std::uint64_t healthy_streak = 0;

  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

  friend bool operator==(const RecoveryState&,
                         const RecoveryState&) = default;
};

/// The set of live objects a checkpoint captures / restores.  All
/// pointers are non-owning; `agent` is required, the rest are optional
/// — but a checkpoint written with a trainer/curriculum/monitor present
/// can only be restored with that component supplied (and vice versa),
/// so save and restore sites must agree.  `recovery` is the deliberate
/// exception: presence may differ between save and restore, so toggling
/// --guard between runs never strands a checkpoint directory.
struct TrainingState {
  core::DrasAgent* agent = nullptr;
  train::Trainer* trainer = nullptr;
  train::Curriculum* curriculum = nullptr;
  train::ConvergenceMonitor* monitor = nullptr;
  /// Self-healing recovery state (format v2).  Restoring a checkpoint
  /// without a stored "RCVR" section (v1 file, or v2 written unguarded)
  /// with this supplied resets it to defaults; a stored section with no
  /// slice supplied is decoded and discarded.
  RecoveryState* recovery = nullptr;
  /// Failure-scenario state (format v3, "FALT" section): the injected
  /// fault configuration plus cumulative failure/waste statistics.  As
  /// loose as `recovery`: presence may differ between save and restore.
  /// Restoring a stored section overwrites both config and stats (the
  /// resumed run continues the captured scenario even if flags changed);
  /// restoring a file without one zeroes the supplied scenario's stats
  /// but keeps its caller-supplied config.  Non-owning.
  sim::FaultScenario* faults = nullptr;
  /// Capture/restore the global obs::Registry counters ("OBSC" section)
  /// so resumed runs report cumulative telemetry.
  bool telemetry = true;
};

/// Serialize `state` into an unframed payload (section sequence) at the
/// current format version.
[[nodiscard]] std::string encode_checkpoint(const TrainingState& state);

/// Decode a payload produced by encode_checkpoint() into the objects in
/// `state`.  `format_version` selects the payload layout (1..
/// kFormatVersion); a payload with no recovery section (v1, or v2
/// written unguarded) resets a supplied `state.recovery` to defaults,
/// and a stored recovery section with no slice supplied is decoded and
/// discarded.  Throws CheckpointError when the payload's
/// trainer/curriculum/monitor set does not match `state`, and
/// util::SerializationError on malformed or mismatched section content.
void decode_checkpoint(std::string_view payload, const TrainingState& state,
                       std::uint32_t format_version = kFormatVersion);

/// Wrap a payload in magic + version + CRC framing.
[[nodiscard]] std::string frame_payload(std::string_view payload);

/// Verify framing (magic, version, checksum) and return the payload.
/// Accepts format versions 1..kFormatVersion; when `format_version` is
/// non-null it receives the stored version so callers can decode
/// version-appropriately.  Throws CheckpointError on any framing defect.
[[nodiscard]] std::string unframe_payload(
    std::string_view bytes, std::uint32_t* format_version = nullptr);

/// encode + frame + util::atomic_write_file: the file either appears
/// complete and checksummed at `path`, or not at all.
void write_checkpoint_file(const std::filesystem::path& path,
                           const TrainingState& state);

/// Read + unframe + decode.  Throws CheckpointError (framing / missing
/// file) or util::SerializationError (section content).  The checksum is
/// verified before any object is mutated; a decode failure after that
/// point can leave `state` partially restored, so callers must either
/// retry with another checkpoint (every load_state overwrites all
/// fields) or treat the objects as unusable.
void read_checkpoint_file(const std::filesystem::path& path,
                          const TrainingState& state);

}  // namespace dras::ckpt
