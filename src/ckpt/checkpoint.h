// Versioned, checksummed training snapshots (robustness layer).
//
// A checkpoint file is a single atomic unit:
//
//   +-----------+-----------+---------------------+-----------+
//   | "DRASCKP1"| u32 fmt   | payload (sections)  | u32 CRC32 |
//   |  8 bytes  | version   |                     | of all ^  |
//   +-----------+-----------+---------------------+-----------+
//
// The CRC covers magic + version + payload, so truncation, bit rot and
// short writes are all detected before a single payload byte is decoded.
// The payload is a sequence of tagged sections (see util/binio.h)
// produced by the save_state hooks on DrasAgent, Trainer, Curriculum and
// ConvergenceMonitor, plus an "OBSC" section holding the telemetry
// counters — everything needed to continue training bit-identically
// after a crash.
//
// Changing any section layout requires bumping that section's version;
// changing the container framing requires bumping kFormatVersion.  Both
// are pinned by golden-file tests in tests/ckpt.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dras::core {
class DrasAgent;
}  // namespace dras::core

namespace dras::train {
class Trainer;
class Curriculum;
class ConvergenceMonitor;
}  // namespace dras::train

namespace dras::ckpt {

/// First 8 bytes of every checkpoint file.
inline constexpr std::string_view kMagic = "DRASCKP1";
/// Container format version (framing, not section layout).
inline constexpr std::uint32_t kFormatVersion = 1;
/// Checkpoint files written by CheckpointManager use this extension.
inline constexpr std::string_view kExtension = ".dras";

/// A checkpoint could not be read: wrong magic, unsupported version,
/// checksum mismatch, or a payload its sections refuse to decode.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The set of live objects a checkpoint captures / restores.  All
/// pointers are non-owning; `agent` is required, the rest are optional
/// — but a checkpoint written with a component present can only be
/// restored with that component supplied (and vice versa), so save and
/// restore sites must agree.
struct TrainingState {
  core::DrasAgent* agent = nullptr;
  train::Trainer* trainer = nullptr;
  train::Curriculum* curriculum = nullptr;
  train::ConvergenceMonitor* monitor = nullptr;
  /// Capture/restore the global obs::Registry counters ("OBSC" section)
  /// so resumed runs report cumulative telemetry.
  bool telemetry = true;
};

/// Serialize `state` into an unframed payload (section sequence).
[[nodiscard]] std::string encode_checkpoint(const TrainingState& state);

/// Decode a payload produced by encode_checkpoint() into the objects in
/// `state`.  Throws CheckpointError when the payload's component set
/// does not match `state`, and util::SerializationError on malformed or
/// mismatched section content.
void decode_checkpoint(std::string_view payload, const TrainingState& state);

/// Wrap a payload in magic + version + CRC framing.
[[nodiscard]] std::string frame_payload(std::string_view payload);

/// Verify framing (magic, version, checksum) and return the payload.
/// Throws CheckpointError on any framing defect.
[[nodiscard]] std::string unframe_payload(std::string_view bytes);

/// encode + frame + util::atomic_write_file: the file either appears
/// complete and checksummed at `path`, or not at all.
void write_checkpoint_file(const std::filesystem::path& path,
                           const TrainingState& state);

/// Read + unframe + decode.  Throws CheckpointError (framing / missing
/// file) or util::SerializationError (section content).  The checksum is
/// verified before any object is mutated; a decode failure after that
/// point can leave `state` partially restored, so callers must either
/// retry with another checkpoint (every load_state overwrites all
/// fields) or treat the objects as unusable.
void read_checkpoint_file(const std::filesystem::path& path,
                          const TrainingState& state);

}  // namespace dras::ckpt
