#include "ckpt/fault.h"

#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/format.h"

namespace dras::ckpt {

std::string_view to_string(NumericFault fault) noexcept {
  switch (fault) {
    case NumericFault::NanGrads:
      return "nan-grads";
    case NumericFault::LossSpike:
      return "loss-spike";
    case NumericFault::ParamBlowup:
      return "param-blowup";
  }
  return "unknown";
}

std::optional<NumericFault> parse_numeric_fault(
    std::string_view name) noexcept {
  if (name == "nan-grads") return NumericFault::NanGrads;
  if (name == "loss-spike") return NumericFault::LossSpike;
  if (name == "param-blowup") return NumericFault::ParamBlowup;
  return std::nullopt;
}

namespace {

std::uint8_t read_byte(const std::filesystem::path& path,
                       std::size_t offset) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error(
        util::format("cannot open {} for reading", path.string()));
  in.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  if (!in.get(byte))
    throw std::runtime_error(util::format(
        "cannot read byte {} of {}", offset, path.string()));
  return static_cast<std::uint8_t>(byte);
}

void write_byte(const std::filesystem::path& path, std::size_t offset,
                std::uint8_t value) {
  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!out)
    throw std::runtime_error(
        util::format("cannot open {} for writing", path.string()));
  out.seekp(static_cast<std::streamoff>(offset));
  const char byte = static_cast<char>(value);
  if (!out.put(byte))
    throw std::runtime_error(util::format(
        "cannot write byte {} of {}", offset, path.string()));
}

}  // namespace

std::size_t FaultInjector::file_size(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec)
    throw std::runtime_error(util::format("cannot stat {}: {}",
                                          path.string(), ec.message()));
  return static_cast<std::size_t>(size);
}

void FaultInjector::truncate_file(const std::filesystem::path& path,
                                  std::size_t new_size) {
  const std::size_t current = file_size(path);
  if (new_size > current)
    throw std::runtime_error(util::format(
        "truncate_file: {} is {} bytes, cannot truncate to {}",
        path.string(), current, new_size));
  std::error_code ec;
  std::filesystem::resize_file(path, new_size, ec);
  if (ec)
    throw std::runtime_error(util::format("cannot truncate {}: {}",
                                          path.string(), ec.message()));
}

void FaultInjector::corrupt_byte(const std::filesystem::path& path,
                                 std::size_t offset, std::uint8_t value) {
  if (offset >= file_size(path))
    throw std::runtime_error(util::format(
        "corrupt_byte: offset {} past end of {}", offset, path.string()));
  write_byte(path, offset, value);
}

void FaultInjector::flip_bit(const std::filesystem::path& path,
                             std::size_t offset, unsigned bit) {
  if (bit > 7) throw std::runtime_error("flip_bit: bit must be 0..7");
  const std::uint8_t byte = read_byte(path, offset);
  write_byte(path, offset,
             static_cast<std::uint8_t>(byte ^ (1u << bit)));
}

void FaultInjector::poison_with_nan(std::span<float> values) noexcept {
  for (float& v : values) v = std::numeric_limits<float>::quiet_NaN();
}

void FaultInjector::scale_values(std::span<float> values,
                                 float factor) noexcept {
  for (float& v : values) v *= factor;
}

}  // namespace dras::ckpt
