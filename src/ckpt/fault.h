// Fault injection for crash-safety and self-healing drills.
//
// File-level faults (truncate / corrupt-byte / flip-bit) mimic the
// storage failure modes checkpoints must survive; numeric faults
// (NaN-poisoned gradients, loss spikes, parameter blow-ups) mimic the
// training divergences src/robust must detect and roll back from.
// Drill-support code; nothing in src links against this on a healthy
// run's hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string_view>

namespace dras::ckpt {

/// Numeric training faults for divergence-recovery drills
/// (`dras_sim --inject-numeric-fault`, tests/robust).
enum class NumericFault {
  NanGrads,     ///< Poison the gradient pathway (grads + Adam moment) with NaN.
  LossSpike,    ///< Report an absurdly large finite loss.
  ParamBlowup,  ///< Scale the parameters past any sane norm ceiling.
};

[[nodiscard]] std::string_view to_string(NumericFault fault) noexcept;
/// Parse "nan-grads" | "loss-spike" | "param-blowup"; nullopt otherwise.
[[nodiscard]] std::optional<NumericFault> parse_numeric_fault(
    std::string_view name) noexcept;

/// The loss value LossSpike reports: finite, but far beyond any loss a
/// healthy update produces, so a |loss| ceiling catches it.
inline constexpr double kInjectedLossSpike = 1e12;
/// The factor ParamBlowup multiplies parameters by.
inline constexpr float kInjectedBlowupScale = 1e8f;

class FaultInjector {
 public:
  /// Cut the file down to `new_size` bytes (a crashed / short write).
  /// Throws std::runtime_error when the file is smaller than `new_size`.
  static void truncate_file(const std::filesystem::path& path,
                            std::size_t new_size);

  /// Overwrite the byte at `offset` with `value` (garbage sector).
  static void corrupt_byte(const std::filesystem::path& path,
                           std::size_t offset, std::uint8_t value);

  /// Flip bit `bit` (0..7) of the byte at `offset` (bit rot).
  static void flip_bit(const std::filesystem::path& path, std::size_t offset,
                       unsigned bit);

  [[nodiscard]] static std::size_t file_size(
      const std::filesystem::path& path);

  // --- Numeric faults (in-memory buffers, not files) ---

  /// Overwrite every entry with quiet NaN (NumericFault::NanGrads).
  static void poison_with_nan(std::span<float> values) noexcept;

  /// Multiply every entry by `factor` (NumericFault::ParamBlowup uses
  /// kInjectedBlowupScale).
  static void scale_values(std::span<float> values, float factor) noexcept;
};

}  // namespace dras::ckpt
