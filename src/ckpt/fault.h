// Fault injection for crash-safety tests: deterministic file-level
// corruption mimicking the failure modes checkpoints must survive —
// short writes (truncation), bit rot (bit flips) and garbage data
// (byte overwrite).  Test-support code; nothing in src links against
// this at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>

namespace dras::ckpt {

class FaultInjector {
 public:
  /// Cut the file down to `new_size` bytes (a crashed / short write).
  /// Throws std::runtime_error when the file is smaller than `new_size`.
  static void truncate_file(const std::filesystem::path& path,
                            std::size_t new_size);

  /// Overwrite the byte at `offset` with `value` (garbage sector).
  static void corrupt_byte(const std::filesystem::path& path,
                           std::size_t offset, std::uint8_t value);

  /// Flip bit `bit` (0..7) of the byte at `offset` (bit rot).
  static void flip_bit(const std::filesystem::path& path, std::size_t offset,
                       unsigned bit);

  [[nodiscard]] static std::size_t file_size(
      const std::filesystem::path& path);
};

}  // namespace dras::ckpt
