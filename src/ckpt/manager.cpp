#include "ckpt/manager.h"

#include <algorithm>
#include <cstdio>

#include "core/dras_agent.h"
#include "exec/async_writer.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/fs.h"
#include "util/logging.h"

namespace dras::ckpt {

namespace {

constexpr std::string_view kPrefix = "ckpt-";
constexpr int kEpisodeDigits = 8;

obs::Counter& corrupt_skipped_counter() {
  static obs::Counter& counter =
      obs::Registry::global().counter("ckpt.corrupt_skipped");
  return counter;
}

/// Full checkpoint write latency (serialize + atomic rename + prune).
obs::HdrHistogram& write_us_hdr() {
  static obs::HdrHistogram& hdr = obs::Registry::global().hdr("ckpt.write_us");
  return hdr;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty())
    throw std::invalid_argument("CheckpointManager needs a directory");
}

CheckpointManager::~CheckpointManager() {
  // Pending async jobs capture `this` (for the pointer update + prune);
  // drain them before the members they touch go away.
  if (options_.writer != nullptr) options_.writer->wait_idle();
}

bool CheckpointManager::should_save(
    std::size_t episodes_done) const noexcept {
  return options_.every != 0 && episodes_done != 0 &&
         episodes_done % options_.every == 0;
}

std::filesystem::path CheckpointManager::path_for(std::size_t episode) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%.*s%0*zu%.*s",
                static_cast<int>(kPrefix.size()), kPrefix.data(),
                kEpisodeDigits, episode, static_cast<int>(kExtension.size()),
                kExtension.data());
  return options_.dir / name;
}

std::optional<std::size_t> CheckpointManager::parse_episode(
    const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  if (name.size() <= kPrefix.size() + kExtension.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kExtension.size(), kExtension.size(),
                   kExtension) != 0)
    return std::nullopt;
  const std::string digits = name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kExtension.size());
  if (digits.empty()) return std::nullopt;
  std::size_t episode = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    episode = episode * 10 + static_cast<std::size_t>(c - '0');
  }
  return episode;
}

std::vector<std::filesystem::path> CheckpointManager::list() const {
  std::vector<std::filesystem::path> found;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (util::is_atomic_temp_file(entry.path())) continue;
    if (parse_episode(entry.path())) found.push_back(entry.path());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) {
              return *parse_episode(a) < *parse_episode(b);
            });
  return found;
}

std::filesystem::path CheckpointManager::save(const TrainingState& state,
                                              std::size_t episode) {
  obs::Span save_span(
      "ckpt.save", {obs::targ("episode", static_cast<std::uint64_t>(episode))},
      &write_us_hdr());
  const std::filesystem::path path = path_for(episode);
  if (options_.writer == nullptr) {
    write_checkpoint_file(path, state);
    write_latest_pointer(path);
    last_saved_ = episode;
    util::log_info("checkpoint written: {}", path.string());
    prune();
    return path;
  }
  // Background checkpointing: serialize *here*, on the trainer thread —
  // the bytes capture the state at this exact episode boundary, so the
  // file is byte-identical to a synchronous save.  Only the durability
  // work (atomic write, pointer update, prune) rides the writer thread,
  // and jobs run in submission order so the pointer can never get ahead
  // of its checkpoint.
  std::string framed = frame_payload(encode_checkpoint(state));
  last_saved_ = episode;
  options_.writer->submit(
      util::format("ckpt {}", path.string()),
      [this, path, bytes = std::move(framed)] {
        util::atomic_write_file(path, bytes);
        write_latest_pointer(path);
        util::log_info("checkpoint written (async): {}", path.string());
        prune();
      });
  return path;
}

void CheckpointManager::write_latest_pointer(
    const std::filesystem::path& just_written) {
  // Strictly after the snapshot is fully on disk, so a reader that
  // follows the pointer can never open a partially-renamed checkpoint.
  // The pointer itself is atomic_write_file'd: it reads as either the
  // old name or the new one, never a torn mix.
  util::atomic_write_file(options_.dir / kLatestPointerName,
                          just_written.filename().string() + "\n");
}

void CheckpointManager::prune() {
  if (options_.keep_last == 0) return;
  std::vector<std::filesystem::path> files = list();
  if (files.size() <= options_.keep_last) return;
  const std::size_t excess = files.size() - options_.keep_last;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code ec;
    std::filesystem::remove(files[i], ec);
    if (ec) {
      util::log_warn("cannot prune checkpoint {}: {}", files[i].string(),
                     ec.message());
    }
  }
}

std::optional<std::filesystem::path> newest_checkpoint(
    const std::filesystem::path& dir) {
  CheckpointManager manager({.dir = dir});
  std::vector<std::filesystem::path> files = manager.list();
  if (files.empty()) return std::nullopt;
  return files.back();
}

std::optional<std::filesystem::path> read_latest_pointer(
    const std::filesystem::path& dir) {
  std::string contents;
  try {
    contents = util::read_file(dir / kLatestPointerName);
  } catch (const std::exception&) {
    return std::nullopt;  // no pointer yet (or unreadable): fall back
  }
  // First line, trimmed — the writer appends a newline.
  const std::size_t end = contents.find_first_of("\r\n");
  std::string name =
      end == std::string::npos ? contents : contents.substr(0, end);
  while (!name.empty() && (name.back() == ' ' || name.back() == '\t'))
    name.pop_back();
  if (name.empty()) return std::nullopt;
  const std::filesystem::path path = dir / name;
  if (!CheckpointManager::parse_episode(path)) return std::nullopt;
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) return std::nullopt;
  return path;
}

void load_agent_from_checkpoint(const std::filesystem::path& path,
                                core::DrasAgent& agent, bool relaxed) {
  std::string bytes;
  try {
    bytes = util::read_file(path);
  } catch (const std::exception& e) {
    throw CheckpointError(util::format("cannot read checkpoint {}: {}",
                                       path.string(), e.what()));
  }
  const std::string payload = unframe_payload(bytes);
  util::BinaryReader in(payload);
  // "AGNT" leads the payload in every format version; the sections after
  // it (trainer cursor, telemetry, recovery, ...) are deliberately left
  // unread — a warm start adopts the parameters, not the run.
  agent.load_state(in, relaxed);
  util::log_info("warm start: loaded agent from {}", path.string());
}

std::optional<std::filesystem::path> CheckpointManager::restore_latest(
    const TrainingState& state) {
  // With background checkpointing an in-process rollback must not race
  // a write that is still in the writer's queue: quiesce first so the
  // directory reflects every save() this manager has issued.
  if (options_.writer != nullptr) options_.writer->wait_idle();
  std::vector<std::filesystem::path> files = list();
  if (files.empty()) return std::nullopt;
  std::string last_error;
  // Counted, not just logged: recovery drills assert that skips actually
  // happened.  The count is applied only after the winning restore (or
  // the final failure) because a successful restore rewinds the
  // telemetry registry ("OBSC" section) to the snapshot's values —
  // per-skip increments made before it would be silently erased.
  std::uint64_t skipped = 0;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    try {
      read_checkpoint_file(*it, state);
      if (skipped > 0) corrupt_skipped_counter().add(skipped);
      return *it;
    } catch (const CheckpointError& e) {
      last_error = e.what();
    } catch (const util::SerializationError& e) {
      last_error = e.what();
    }
    ++skipped;
    util::log_warn("skipping unusable checkpoint {}: {}", it->string(),
                   last_error);
  }
  corrupt_skipped_counter().add(skipped);
  throw CheckpointError(util::format(
      "all {} checkpoints in {} are unreadable (last error: {})",
      files.size(), options_.dir.string(), last_error));
}

}  // namespace dras::ckpt
