// Checkpoint directory management: cadence, naming, retention, and
// fallback restore.
//
// Files are named "ckpt-<episode, zero-padded>.dras" so lexicographic
// and episode order coincide; anything else in the directory (including
// util::atomic_write_file temporaries from a crashed writer) is ignored.
// restore_latest() walks checkpoints newest-first and skips any that
// fail their checksum or decode, so a corrupted newest snapshot degrades
// to the most recent valid one instead of killing the resume.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <vector>

#include "ckpt/checkpoint.h"

namespace dras::exec {
class AsyncWriter;
}  // namespace dras::exec

namespace dras::ckpt {

/// Atomic pointer file (`<dir>/latest`) naming the most recently
/// *completed* checkpoint.  Written with util::atomic_write_file after
/// the snapshot itself has fully landed, so a reader following the
/// pointer can never open a partially-renamed checkpoint.  The name
/// never parses as a checkpoint (parse_episode rejects it), so list()
/// and restore_latest() ignore it.
inline constexpr std::string_view kLatestPointerName = "latest";

struct CheckpointManagerOptions {
  std::filesystem::path dir;
  /// Save after every N completed episodes; 0 = only the final flush.
  std::size_t every = 1;
  /// Retain at most this many checkpoint files (oldest pruned); 0 = all.
  std::size_t keep_last = 3;
  /// Background checkpointing: when set, save() serializes the state on
  /// the calling (trainer) thread — so the bytes are identical to a
  /// synchronous save — and hands the fsync+rename, `latest` pointer
  /// update and prune to this writer thread.  Not owned; must outlive
  /// the manager's last save.  restore_latest() waits for the writer to
  /// go idle first, so in-process rollback never races a pending write.
  exec::AsyncWriter* writer = nullptr;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerOptions options);

  /// Quiesces the async writer (when one is configured): queued save()
  /// jobs reference this manager, so it must not die before they land.
  ~CheckpointManager();

  [[nodiscard]] const CheckpointManagerOptions& options() const noexcept {
    return options_;
  }

  /// Should the trainer checkpoint after `episodes_done` episodes?
  [[nodiscard]] bool should_save(std::size_t episodes_done) const noexcept;

  /// Write `state` as the checkpoint for `episode`, update the `latest`
  /// pointer, then prune old files.  Returns the written path.  With an
  /// async writer configured the serialization still happens here, on
  /// the calling thread; the disk work is queued and the path returned
  /// immediately (it may not be durable yet — wait_idle() the writer
  /// before depending on it).
  std::filesystem::path save(const TrainingState& state, std::size_t episode);

  /// Restore from the newest valid checkpoint, skipping (with a logged
  /// warning) any that fail checksum or decode.  Returns the restored
  /// path, or nullopt when the directory holds no checkpoint at all.
  /// Throws CheckpointError when checkpoints exist but every one is
  /// unreadable — `state` may then be partially mutated and must not be
  /// trained.
  std::optional<std::filesystem::path> restore_latest(
      const TrainingState& state);

  /// Checkpoint files in the directory, ascending by episode.
  [[nodiscard]] std::vector<std::filesystem::path> list() const;

  /// Episode of the last save() this manager performed, if any.
  [[nodiscard]] std::optional<std::size_t> last_saved_episode()
      const noexcept {
    return last_saved_;
  }

  /// Path save() would use for `episode`.
  [[nodiscard]] std::filesystem::path path_for(std::size_t episode) const;

  /// Episode number encoded in a checkpoint filename, or nullopt for
  /// non-checkpoint files.
  [[nodiscard]] static std::optional<std::size_t> parse_episode(
      const std::filesystem::path& path);

 private:
  void prune();
  void write_latest_pointer(const std::filesystem::path& just_written);

  CheckpointManagerOptions options_;
  std::optional<std::size_t> last_saved_;
};

/// Newest checkpoint file in `dir` by episode number, or nullopt when
/// the directory holds none (or does not exist).  Same naming filter as
/// CheckpointManager::list().
[[nodiscard]] std::optional<std::filesystem::path> newest_checkpoint(
    const std::filesystem::path& dir);

/// The checkpoint named by `<dir>/latest`, when the pointer file exists,
/// names a managed checkpoint (ckpt-<episode>.dras) and that file is
/// still present.  A missing, malformed or stale pointer (e.g. naming a
/// pruned file) resolves to nullopt — callers fall back to
/// newest_checkpoint().
[[nodiscard]] std::optional<std::filesystem::path> read_latest_pointer(
    const std::filesystem::path& dir);

/// Warm start: load only the agent slice of a checkpoint into `agent`,
/// ignoring whatever trainer/curriculum/monitor/telemetry state the file
/// also carries ("AGNT" is always the first payload section, so the
/// trailing sections are simply never read).  The agent's configuration
/// fingerprint still guards the load — a checkpoint written with a
/// different topology, seed or hyper-parameters is rejected with
/// util::SerializationError.  Framing defects throw CheckpointError.
/// With `relaxed` the fingerprint mismatch is logged instead (see
/// core::DrasAgent::load_state) so same-topology parameters transfer
/// across presets; a real topology mismatch still throws.
void load_agent_from_checkpoint(const std::filesystem::path& path,
                                core::DrasAgent& agent,
                                bool relaxed = false);

}  // namespace dras::ckpt
