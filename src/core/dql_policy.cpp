#include "core/dql_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/binio.h"

namespace dras::core {

namespace {
/// Wall time of one policy update (TD pass + Adam step, or gradient
/// deposit in deferred mode).  Shared name with PGPolicy: a run trains
/// one policy kind, and the span/metric describes "the NN update".
obs::HdrHistogram& update_us_hdr() {
  static obs::HdrHistogram& hdr = obs::Registry::global().hdr("nn.update_us");
  return hdr;
}
}  // namespace

DQLPolicy::DQLPolicy(const DQLConfig& config, std::uint64_t seed)
    : config_(config),
      network_([&] {
        if (config.net.outputs != 1)
          throw std::invalid_argument("DQL network must have one output");
        util::Rng init_rng(util::derive_seed(seed, "dql-init"));
        return nn::Network(config.net, init_rng);
      }()),
      optimizer_(network_.parameter_count(), config.adam),
      epsilon_(config.epsilon_init) {}

double DQLPolicy::q_value(std::span<const float> state) {
  return static_cast<double>(network_.forward(state)[0]);
}

std::size_t DQLPolicy::select_action(
    const std::vector<std::vector<float>>& candidates, util::Rng& rng,
    bool explore) {
  if (candidates.empty())
    throw std::invalid_argument("no candidates to select among");
  if (explore && rng.bernoulli(epsilon_))
    return rng.uniform_index(candidates.size());
  std::size_t best = 0;
  double best_q = q_value(candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double q = q_value(candidates[i]);
    if (q > best_q) {
      best_q = q;
      best = i;
    }
  }
  return best;
}

void DQLPolicy::record(std::vector<std::vector<float>> candidates,
                       std::size_t action, double reward) {
  assert(action < candidates.size());
  memory_.push_back(Transition{std::move(candidates), action, reward});
}

double DQLPolicy::max_q(const std::vector<std::vector<float>>& states) {
  double best = q_value(states.front());
  for (std::size_t i = 1; i < states.size(); ++i)
    best = std::max(best, q_value(states[i]));
  return best;
}

void DQLPolicy::update() {
  if (memory_.empty()) return;
  obs::Span update_span(
      "nn.update",
      {obs::targ("steps", static_cast<std::uint64_t>(memory_.size()))},
      &update_us_hdr());

  // Bootstrap targets first (they query the network with current θ).
  std::vector<double> targets(memory_.size());
  for (std::size_t k = 0; k < memory_.size(); ++k) {
    double target = memory_[k].reward;
    if (k + 1 < memory_.size())
      target += config_.gamma * max_q(memory_[k + 1].candidates);
    targets[k] = target;
  }

  network_.zero_gradients();
  float td_error_grad[1];
  double loss_acc = 0.0;
  for (std::size_t k = 0; k < memory_.size(); ++k) {
    const Transition& tr = memory_[k];
    const double q_old = q_value(tr.candidates[tr.action]);
    // Semi-gradient of ½(Q − target)² w.r.t. θ: (Q − target)·∇Q.
    const double td_error = q_old - targets[k];
    loss_acc += 0.5 * td_error * td_error;
    td_error_grad[0] = static_cast<float>(td_error);
    network_.backward(std::span<const float>(td_error_grad, 1));
  }
  const auto scale = 1.0f / static_cast<float>(memory_.size());
  for (float& g : network_.gradients()) g *= scale;
  double grad_sq = 0.0;
  for (const float g : network_.gradients())
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  last_loss_ = loss_acc / static_cast<double>(memory_.size());
  last_grad_norm_ = std::sqrt(grad_sq);
  if (sink_ != nullptr) {
    // Deferred mode (data-parallel rollout): deposit the batch-mean
    // gradient for the round's reduction; parameters stay frozen at
    // their round-start values.  ε still decays — the schedule is per
    // update consumed, and it steers the clone's own exploration.
    sink_->add(network_.gradients(), last_loss_);
  } else {
    optimizer_.step(network_.parameters(), network_.gradients());
  }
  network_.zero_gradients();
  memory_.clear();

  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  ++updates_;
}

void DQLPolicy::apply_reduced_update(std::span<const float> gradient,
                                     double mean_loss,
                                     std::size_t update_count) {
  if (update_count == 0) return;
  const auto grads = network_.gradients();
  if (gradient.size() != grads.size())
    throw std::invalid_argument(
        "DQLPolicy::apply_reduced_update: gradient length mismatch");
  std::copy(gradient.begin(), gradient.end(), grads.begin());
  double grad_sq = 0.0;
  for (const float g : grads)
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  last_loss_ = mean_loss;
  last_grad_norm_ = std::sqrt(grad_sq);
  optimizer_.step(network_.parameters(), grads);
  network_.zero_gradients();
  for (std::size_t k = 0; k < update_count; ++k)
    epsilon_ =
        std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  updates_ += update_count;
}

void DQLPolicy::save_state(util::BinaryWriter& out) const {
  out.section("DQLP", 1);
  network_.save_state(out);
  optimizer_.save_state(out);
  out.f64(epsilon_);
  out.u64(updates_);
  out.f64(last_loss_);
  out.f64(last_grad_norm_);
  out.u64(memory_.size());
  for (const Transition& tr : memory_) {
    out.u64(tr.candidates.size());
    for (const auto& candidate : tr.candidates) out.f32_span(candidate);
    out.u64(tr.action);
    out.f64(tr.reward);
  }
}

void DQLPolicy::load_state(util::BinaryReader& in) {
  in.section("DQLP", 1);
  network_.load_state(in);
  optimizer_.load_state(in);
  epsilon_ = in.f64();
  if (!(epsilon_ >= 0.0 && epsilon_ <= 1.0))
    throw util::SerializationError(
        "DQL epsilon outside [0, 1] in checkpoint");
  updates_ = in.u64();
  last_loss_ = in.f64();
  last_grad_norm_ = in.f64();
  memory_.clear();
  const std::uint64_t transitions = in.u64();
  memory_.reserve(transitions);
  for (std::uint64_t k = 0; k < transitions; ++k) {
    Transition tr;
    const std::uint64_t candidates = in.u64();
    tr.candidates.reserve(candidates);
    for (std::uint64_t c = 0; c < candidates; ++c)
      tr.candidates.push_back(in.f32_vector());
    tr.action = in.u64();
    tr.reward = in.f64();
    if (tr.candidates.empty() || tr.action >= tr.candidates.size())
      throw util::SerializationError(
          "DQL transition carries an out-of-range action in checkpoint");
    memory_.push_back(std::move(tr));
  }
}

}  // namespace dras::core
