#include "core/dql_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dras::core {

DQLPolicy::DQLPolicy(const DQLConfig& config, std::uint64_t seed)
    : config_(config),
      network_([&] {
        if (config.net.outputs != 1)
          throw std::invalid_argument("DQL network must have one output");
        util::Rng init_rng(util::derive_seed(seed, "dql-init"));
        return nn::Network(config.net, init_rng);
      }()),
      optimizer_(network_.parameter_count(), config.adam),
      epsilon_(config.epsilon_init) {}

double DQLPolicy::q_value(std::span<const float> state) {
  return static_cast<double>(network_.forward(state)[0]);
}

std::size_t DQLPolicy::select_action(
    const std::vector<std::vector<float>>& candidates, util::Rng& rng,
    bool explore) {
  if (candidates.empty())
    throw std::invalid_argument("no candidates to select among");
  if (explore && rng.bernoulli(epsilon_))
    return rng.uniform_index(candidates.size());
  std::size_t best = 0;
  double best_q = q_value(candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double q = q_value(candidates[i]);
    if (q > best_q) {
      best_q = q;
      best = i;
    }
  }
  return best;
}

void DQLPolicy::record(std::vector<std::vector<float>> candidates,
                       std::size_t action, double reward) {
  assert(action < candidates.size());
  memory_.push_back(Transition{std::move(candidates), action, reward});
}

double DQLPolicy::max_q(const std::vector<std::vector<float>>& states) {
  double best = q_value(states.front());
  for (std::size_t i = 1; i < states.size(); ++i)
    best = std::max(best, q_value(states[i]));
  return best;
}

void DQLPolicy::update() {
  if (memory_.empty()) return;

  // Bootstrap targets first (they query the network with current θ).
  std::vector<double> targets(memory_.size());
  for (std::size_t k = 0; k < memory_.size(); ++k) {
    double target = memory_[k].reward;
    if (k + 1 < memory_.size())
      target += config_.gamma * max_q(memory_[k + 1].candidates);
    targets[k] = target;
  }

  network_.zero_gradients();
  float td_error_grad[1];
  double loss_acc = 0.0;
  for (std::size_t k = 0; k < memory_.size(); ++k) {
    const Transition& tr = memory_[k];
    const double q_old = q_value(tr.candidates[tr.action]);
    // Semi-gradient of ½(Q − target)² w.r.t. θ: (Q − target)·∇Q.
    const double td_error = q_old - targets[k];
    loss_acc += 0.5 * td_error * td_error;
    td_error_grad[0] = static_cast<float>(td_error);
    network_.backward(std::span<const float>(td_error_grad, 1));
  }
  const auto scale = 1.0f / static_cast<float>(memory_.size());
  for (float& g : network_.gradients()) g *= scale;
  double grad_sq = 0.0;
  for (const float g : network_.gradients())
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  last_loss_ = loss_acc / static_cast<double>(memory_.size());
  last_grad_norm_ = std::sqrt(grad_sq);
  optimizer_.step(network_.parameters(), network_.gradients());
  network_.zero_gradients();
  memory_.clear();

  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  ++updates_;
}

}  // namespace dras::core
