// DRAS-DQL: deep-Q head over the shared five-layer network
// (paper §III-B, Eq. 4).
//
// The network scores one job at a time: the input is a single job block
// plus the node rows, the output a scalar Q.  A window of W jobs is scored
// with W forward passes of the same network; the agent normally takes the
// argmax, or a uniformly random job with probability ε (ε starts at 1.0
// and decays by ×0.995 per update).  Learning is semi-gradient TD:
//
//   θ ← θ − α Σ_k ∇θ Q(s_k,a_k) ( Q(s_k,a_k) − [r_k + γ·max_a Q(s_{k+1},a)] )
//
// The paper's Eq. 4 omits γ; we expose it (default 0.99) and note the
// deviation in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/adam.h"
#include "nn/grad_accumulator.h"
#include "nn/network.h"
#include "util/rng.h"

namespace dras::core {

struct DQLConfig {
  nn::NetworkConfig net;  ///< outputs must be 1.
  nn::AdamConfig adam;
  double gamma = 0.99;
  double epsilon_init = 1.0;
  double epsilon_decay = 0.995;  ///< multiplicative, per update (§III-B).
  double epsilon_min = 0.01;
};

class DQLPolicy {
 public:
  DQLPolicy(const DQLConfig& config, std::uint64_t seed);

  /// Q-value of a single encoded (job, nodes) state.
  [[nodiscard]] double q_value(std::span<const float> state);

  /// ε-greedy selection among candidate states (one encoding per job in
  /// the window).  With `explore` false the choice is pure argmax.
  [[nodiscard]] std::size_t select_action(
      const std::vector<std::vector<float>>& candidates, util::Rng& rng,
      bool explore);

  /// Append one transition.  `candidates` are the encodings the selection
  /// chose among; the next recorded transition supplies s_{k+1}.
  void record(std::vector<std::vector<float>> candidates, std::size_t action,
              double reward);

  /// Eq. 4 semi-gradient update over the recorded transitions; clears the
  /// memory and decays ε.  No-op when the memory is empty.
  void update();

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] std::size_t pending_steps() const noexcept {
    return memory_.size();
  }
  [[nodiscard]] std::size_t updates_done() const noexcept { return updates_; }
  /// Mean TD loss ½(Q − target)² of the last update; 0 before the first.
  [[nodiscard]] double last_loss() const noexcept { return last_loss_; }
  /// L2 norm of the batch-averaged gradient applied by the last update.
  [[nodiscard]] double last_grad_norm() const noexcept {
    return last_grad_norm_;
  }
  [[nodiscard]] nn::Network& network() noexcept { return network_; }
  [[nodiscard]] const nn::Network& network() const noexcept {
    return network_;
  }
  [[nodiscard]] nn::Adam& optimizer() noexcept { return optimizer_; }
  [[nodiscard]] const nn::Adam& optimizer() const noexcept {
    return optimizer_;
  }

  void discard_memory() { memory_.clear(); }

  // --- Data-parallel rollout hooks (src/rollout) ---

  /// Divert updates into `sink`: update() computes the batch-mean TD
  /// gradient and telemetry exactly as usual — including the per-update
  /// ε decay, which drives the clone's own later exploration — but
  /// deposits the gradient instead of stepping the optimiser.  Null
  /// restores normal stepping.  Not owned, never serialized.
  void set_gradient_sink(nn::GradientAccumulator* sink) noexcept {
    sink_ = sink;
  }
  [[nodiscard]] nn::GradientAccumulator* gradient_sink() const noexcept {
    return sink_;
  }

  /// One optimiser step with an externally reduced mean gradient
  /// standing in for `update_count` deferred updates: ε decays once per
  /// deferred update (the schedule is per update consumed, not per
  /// optimiser step) and the update counter advances accordingly.
  /// No-op when update_count is 0.
  void apply_reduced_update(std::span<const float> gradient,
                            double mean_loss, std::size_t update_count);

  /// Checkpoint hooks ("DQLP" section): network parameters, optimiser
  /// moments, the ε schedule position, update telemetry and any pending
  /// transitions.  A restored policy continues bit-identically.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  struct Transition {
    std::vector<std::vector<float>> candidates;
    std::size_t action = 0;
    double reward = 0.0;
  };

  [[nodiscard]] double max_q(const std::vector<std::vector<float>>& states);

  DQLConfig config_;
  nn::Network network_;
  nn::Adam optimizer_;
  std::vector<Transition> memory_;
  double epsilon_;
  std::size_t updates_ = 0;
  double last_loss_ = 0.0;
  double last_grad_norm_ = 0.0;
  nn::GradientAccumulator* sink_ = nullptr;  // transient, never serialized
};

}  // namespace dras::core
