#include "core/dras_agent.h"

#include <cassert>
#include <stdexcept>

#include "core/window.h"

namespace dras::core {

std::string_view to_string(AgentKind kind) noexcept {
  return kind == AgentKind::PG ? "DRAS-PG" : "DRAS-DQL";
}

nn::NetworkConfig DrasConfig::network_config() const {
  nn::NetworkConfig net;
  net.fc1 = fc1;
  net.fc2 = fc2;
  if (kind == AgentKind::PG) {
    net.input_rows = 2 * window + static_cast<std::size_t>(total_nodes);
    net.outputs = window;
  } else {
    net.input_rows = 2 + static_cast<std::size_t>(total_nodes);
    net.outputs = 1;
  }
  return net;
}

DrasAgent::DrasAgent(const DrasConfig& config)
    : config_(config),
      name_(to_string(config.kind)),
      reward_(config.reward_kind, config.reward_weights),
      encoder_(config.total_nodes, config.time_scale),
      rng_(util::derive_seed(config.seed, "dras-agent")) {
  if (config.total_nodes <= 0)
    throw std::invalid_argument("agent needs a positive node count");
  if (config.window == 0)
    throw std::invalid_argument("agent needs a non-empty window");
  if (config.kind == AgentKind::PG) {
    PGConfig pg_cfg;
    pg_cfg.net = config.network_config();
    pg_cfg.adam = config.adam;
    pg_ = std::make_unique<PGPolicy>(pg_cfg, config.seed);
  } else {
    DQLConfig dql_cfg;
    dql_cfg.net = config.network_config();
    dql_cfg.adam = config.adam;
    dql_cfg.gamma = config.gamma;
    dql_cfg.epsilon_init = config.epsilon_init;
    dql_cfg.epsilon_decay = config.epsilon_decay;
    dql_cfg.epsilon_min = config.epsilon_min;
    dql_ = std::make_unique<DQLPolicy>(dql_cfg, config.seed);
  }
}

std::unique_ptr<DrasAgent> DrasAgent::clone_agent() const {
  auto copy = std::make_unique<DrasAgent>(config_);
  // Policy heads are plain value types (vectors + PODs), so copy-assignment
  // is an exact deep copy: parameters, Adam moments, epsilon, baselines and
  // any pending experience memory.
  if (pg_) *copy->pg_ = *pg_;
  if (dql_) *copy->dql_ = *dql_;
  copy->rng_ = rng_;
  copy->training_ = training_;
  copy->staged_state_ = staged_state_;
  copy->staged_candidates_ = staged_candidates_;
  copy->staged_valid_ = staged_valid_;
  copy->staged_action_ = staged_action_;
  copy->staged_ = staged_;
  copy->episode_reward_ = episode_reward_;
  copy->episode_actions_ = episode_actions_;
  copy->instances_seen_ = instances_seen_;
  return copy;
}

std::unique_ptr<sim::Scheduler> DrasAgent::clone() const {
  return clone_agent();
}

nn::Network& DrasAgent::network() {
  return pg_ ? pg_->network() : dql_->network();
}
const nn::Network& DrasAgent::network() const {
  return pg_ ? pg_->network() : dql_->network();
}

void DrasAgent::begin_episode() {
  episode_reward_ = 0.0;
  episode_actions_ = 0;
  staged_ = false;
  // Parameters persist across episodes: training is continual (§III-C).
  // The action-sampling stream restarts so that an episode's trajectory is
  // a deterministic function of (parameters, trace, seed).
  rng_ = util::Rng(util::derive_seed(config_.seed, "dras-agent"));
}

void DrasAgent::end_episode() {
  // Flush a partial batch so no experience leaks across episodes.
  if (training_) {
    if (pg_) pg_->update();
    if (dql_) dql_->update();
  }
}

std::size_t DrasAgent::select(const sim::SchedulingContext& ctx,
                              std::span<const sim::Job* const> window) {
  assert(!window.empty());
  const std::size_t valid = window.size();
  std::size_t action = 0;
  if (config_.kind == AgentKind::PG) {
    encoder_.encode_window(ctx, window, config_.window, encode_scratch_);
    // The PG policy is stochastic at training AND evaluation time: "a
    // scheduling action is stochastically drawn from the W jobs following
    // their probability distributions" (§III-B).  A deterministic argmax
    // would let a positional bias starve whatever job it never points at.
    action = pg_->sample_action(encode_scratch_, valid, rng_);
    if (training_) {
      staged_state_ = encode_scratch_;
      staged_valid_ = valid;
      staged_action_ = action;
      staged_ = true;
    }
  } else {
    staged_candidates_.clear();
    staged_candidates_.reserve(valid);
    for (const sim::Job* job : window) {
      encoder_.encode_job(ctx, *job, encode_scratch_);
      staged_candidates_.push_back(encode_scratch_);
    }
    action = dql_->select_action(staged_candidates_, rng_,
                                 /*explore=*/training_);
    staged_action_ = action;
    staged_ = training_;
  }
  return action;
}

void DrasAgent::commit_reward(double reward) {
  episode_reward_ += reward;
  ++episode_actions_;
  if (!staged_) return;
  if (config_.kind == AgentKind::PG) {
    pg_->record(std::move(staged_state_), staged_valid_, staged_action_,
                reward);
  } else {
    dql_->record(std::move(staged_candidates_), staged_action_, reward);
  }
  staged_ = false;
}

void DrasAgent::maybe_update() {
  ++instances_seen_;
  if (!training_) return;
  if (instances_seen_ % static_cast<std::size_t>(config_.update_every) != 0)
    return;
  if (pg_) pg_->update();
  if (dql_) dql_->update();
}

void DrasAgent::schedule(sim::SchedulingContext& ctx) {
  // --- Level 1: immediate execution or reservation (§III-B). ---
  // Skipped while the reservation ledger is full (at the paper's depth 1:
  // whenever a reservation from an earlier instance is outstanding) — the
  // reservation blocks the machine head, so the only legal starts are
  // backfills, which is precisely level 2's job.
  std::vector<sim::Job*> eligible;
  while (!ctx.reservation().full()) {
    eligible.clear();
    for (sim::Job* job : ctx.queue())
      if (!ctx.is_reserved(job->id)) eligible.push_back(job);
    if (eligible.empty()) break;
    const auto window = truncate_window(eligible, config_.window);
    const std::size_t idx = select(ctx, window);
    const sim::Job* job = window[idx];
    if (ctx.cluster().fits(job->size) && ctx.start_now(job->id)) {
      commit_reward(reward_.step_reward(ctx, *job));
      continue;
    }
    if (ctx.reserve(job->id)) {
      commit_reward(reward_.step_reward(ctx, *job));
      if (ctx.reservation().full()) break;  // paper behaviour at depth 1
      continue;
    }
    // Neither startable nor reservable (e.g. fitting-but-unsafe with a
    // full profile): drop the staged experience and end level 1.
    discard_staged();
    break;
  }

  // --- Level 2: backfilling against the reservation (§III-B). ---
  if (ctx.reservation().active()) {
    while (true) {
      const auto candidates = ctx.backfill_candidates();
      if (candidates.empty()) break;
      const auto window = truncate_window(candidates, config_.window);
      const std::size_t idx = select(ctx, window);
      const sim::Job* job = window[idx];
      const bool ok = ctx.backfill(job->id);
      assert(ok);
      (void)ok;
      commit_reward(reward_.step_reward(ctx, *job));
    }
  }

  maybe_update();
}

}  // namespace dras::core
