#include "core/dras_agent.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/window.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/logging.h"

namespace dras::core {

std::string_view to_string(AgentKind kind) noexcept {
  return kind == AgentKind::PG ? "DRAS-PG" : "DRAS-DQL";
}

nn::NetworkConfig DrasConfig::network_config() const {
  nn::NetworkConfig net;
  net.fc1 = fc1;
  net.fc2 = fc2;
  if (kind == AgentKind::PG) {
    net.input_rows = 2 * window + static_cast<std::size_t>(total_nodes);
    net.outputs = window;
  } else {
    net.input_rows = 2 + static_cast<std::size_t>(total_nodes);
    net.outputs = 1;
  }
  if (failure_features) net.input_rows += StateEncoder::kFailureRows;
  if (fairness_features) net.input_rows += StateEncoder::kFairnessRows;
  return net;
}

DrasAgent::DrasAgent(const DrasConfig& config)
    : config_(config),
      name_(to_string(config.kind)),
      reward_(config.reward_kind, config.reward_weights),
      encoder_(config.total_nodes, config.time_scale,
               config.failure_features, config.fairness_features),
      rng_(util::derive_seed(config.seed, "dras-agent")) {
  if (config.total_nodes <= 0)
    throw std::invalid_argument("agent needs a positive node count");
  if (config.window == 0)
    throw std::invalid_argument("agent needs a non-empty window");
  if (config.kind == AgentKind::PG) {
    PGConfig pg_cfg;
    pg_cfg.net = config.network_config();
    pg_cfg.adam = config.adam;
    pg_ = std::make_unique<PGPolicy>(pg_cfg, config.seed);
  } else {
    DQLConfig dql_cfg;
    dql_cfg.net = config.network_config();
    dql_cfg.adam = config.adam;
    dql_cfg.gamma = config.gamma;
    dql_cfg.epsilon_init = config.epsilon_init;
    dql_cfg.epsilon_decay = config.epsilon_decay;
    dql_cfg.epsilon_min = config.epsilon_min;
    dql_ = std::make_unique<DQLPolicy>(dql_cfg, config.seed);
  }
}

std::unique_ptr<DrasAgent> DrasAgent::clone_agent() const {
  auto copy = std::make_unique<DrasAgent>(config_);
  // Policy heads are plain value types (vectors + PODs), so copy-assignment
  // is an exact deep copy: parameters, Adam moments, epsilon, baselines and
  // any pending experience memory.
  if (pg_) *copy->pg_ = *pg_;
  if (dql_) *copy->dql_ = *dql_;
  copy->rng_ = rng_;
  copy->training_ = training_;
  copy->staged_state_ = staged_state_;
  copy->staged_candidates_ = staged_candidates_;
  copy->staged_valid_ = staged_valid_;
  copy->staged_action_ = staged_action_;
  copy->staged_ = staged_;
  copy->episode_reward_ = episode_reward_;
  copy->episode_actions_ = episode_actions_;
  copy->instances_seen_ = instances_seen_;
  copy->rng_nonce_ = rng_nonce_;
  copy->recent_actions_ = recent_actions_;
  copy->recent_actions_head_ = recent_actions_head_;
  return copy;
}

std::vector<std::uint32_t> DrasAgent::recent_actions() const {
  std::vector<std::uint32_t> ordered;
  ordered.reserve(recent_actions_.size());
  for (std::size_t i = 0; i < recent_actions_.size(); ++i) {
    ordered.push_back(
        recent_actions_[(recent_actions_head_ + i) % recent_actions_.size()]);
  }
  return ordered;
}

std::unique_ptr<sim::Scheduler> DrasAgent::clone() const {
  return clone_agent();
}

namespace {
/// Order-sensitive FNV-1a over the configuration fields that must match
/// between the checkpointing agent and the restoring one.  A fingerprint
/// (rather than field-by-field storage) keeps the format stable when
/// DrasConfig grows: new fields extend the digest, old checkpoints are
/// rejected with a clear error instead of being silently misread.
std::uint64_t config_fingerprint(const DrasConfig& c) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_f64 = [&mix](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(c.kind));
  mix(static_cast<std::uint64_t>(c.total_nodes));
  mix(c.window);
  mix(c.fc1);
  mix(c.fc2);
  mix_f64(c.time_scale);
  mix(static_cast<std::uint64_t>(c.reward_kind));
  mix_f64(c.reward_weights.w1);
  mix_f64(c.reward_weights.w2);
  mix_f64(c.reward_weights.w3);
  mix(static_cast<std::uint64_t>(c.update_every));
  mix_f64(c.adam.learning_rate);
  mix_f64(c.adam.beta1);
  mix_f64(c.adam.beta2);
  mix_f64(c.adam.epsilon);
  mix_f64(c.adam.max_grad_norm);
  mix_f64(c.gamma);
  mix_f64(c.epsilon_init);
  mix_f64(c.epsilon_decay);
  mix_f64(c.epsilon_min);
  mix(c.seed);
  // Mixed only when enabled so every pre-existing fault-free checkpoint
  // keeps its historical fingerprint.
  if (c.failure_features) mix(0xFA17FEA7u);
  // Same discipline for the fairness extensions: a fairness-shaped
  // reward or fairness input rows change what the parameters mean, but
  // fairness-off agents keep the historical fingerprint bit-for-bit.
  if (c.reward_weights.fairness != 0.0) {
    mix(0xFA15FA15u);
    mix_f64(c.reward_weights.fairness);
  }
  if (c.fairness_features) mix(0xFA15FEA7u);
  return h;
}
}  // namespace

void DrasAgent::save_state(util::BinaryWriter& out) const {
  out.section("AGNT", 1);
  out.u8(config_.kind == AgentKind::PG ? 0 : 1);
  out.u64(config_fingerprint(config_));
  if (pg_) pg_->save_state(out);
  if (dql_) dql_->save_state(out);
  for (const std::uint64_t word : rng_.state()) out.u64(word);
  out.boolean(training_);
  out.f64(episode_reward_);
  out.u64(episode_actions_);
  out.u64(instances_seen_);
  out.boolean(staged_);
  if (staged_) {
    out.f32_span(staged_state_);
    out.u64(staged_candidates_.size());
    for (const auto& candidate : staged_candidates_)
      out.f32_span(candidate);
    out.u64(staged_valid_);
    out.u64(staged_action_);
  }
}

void DrasAgent::load_state(util::BinaryReader& in, bool relaxed) {
  in.section("AGNT", 1);
  const std::uint8_t kind = in.u8();
  if (kind != (config_.kind == AgentKind::PG ? 0 : 1))
    throw util::SerializationError(util::format(
        "checkpoint holds a {} agent, this agent is {}",
        kind == 0 ? "DRAS-PG" : "DRAS-DQL", name_));
  const std::uint64_t fingerprint = in.u64();
  if (fingerprint != config_fingerprint(config_)) {
    if (!relaxed)
      throw util::SerializationError(
          "checkpoint was written with a different agent configuration "
          "(topology, seed or hyper-parameters); refusing to restore "
          "(pass the relaxed/--warm-start-relaxed path to transfer "
          "same-topology parameters across presets)");
    // Relaxed transfer: the checkpoint stores only the digest, so the
    // diff we can log is the hash pair plus this agent's structural
    // summary — enough to audit what the transfer target looked like.
    // Anything structurally incompatible still fails below, where the
    // parameter tensors carry their own shape checks.
    char stored_hex[17];
    char local_hex[17];
    std::snprintf(stored_hex, sizeof(stored_hex), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    std::snprintf(local_hex, sizeof(local_hex), "%016llx",
                  static_cast<unsigned long long>(
                      config_fingerprint(config_)));
    util::log_warn(
        "relaxed warm start: checkpoint fingerprint {} != local {}; "
        "adopting parameters into local config (kind={} nodes={} "
        "window={} fc1={} fc2={} time_scale={} reward={} seed={})",
        stored_hex, local_hex, name_, config_.total_nodes, config_.window,
        config_.fc1, config_.fc2, config_.time_scale,
        to_string(config_.reward_kind), config_.seed);
  }
  if (pg_) pg_->load_state(in);
  if (dql_) dql_->load_state(in);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = in.u64();
  rng_.set_state(rng_state);
  training_ = in.boolean();
  episode_reward_ = in.f64();
  episode_actions_ = in.u64();
  instances_seen_ = in.u64();
  staged_ = in.boolean();
  staged_state_.clear();
  staged_candidates_.clear();
  staged_valid_ = 0;
  staged_action_ = 0;
  if (staged_) {
    staged_state_ = in.f32_vector();
    const std::uint64_t candidates = in.u64();
    staged_candidates_.reserve(candidates);
    for (std::uint64_t c = 0; c < candidates; ++c)
      staged_candidates_.push_back(in.f32_vector());
    staged_valid_ = in.u64();
    staged_action_ = in.u64();
  }
}

nn::Network& DrasAgent::network() {
  return pg_ ? pg_->network() : dql_->network();
}
const nn::Network& DrasAgent::network() const {
  return pg_ ? pg_->network() : dql_->network();
}

void DrasAgent::begin_episode() {
  episode_reward_ = 0.0;
  episode_actions_ = 0;
  staged_ = false;
  // Parameters persist across episodes: training is continual (§III-C).
  // The action-sampling stream restarts so that an episode's trajectory is
  // a deterministic function of (parameters, trace, seed).  A non-zero
  // recovery nonce swaps in a sibling stream so a rolled-back episode
  // explores a different trajectory (still deterministic per nonce).
  rng_ = util::Rng(
      rng_nonce_ == 0
          ? util::derive_seed(config_.seed, "dras-agent")
          : util::derive_seed(
                config_.seed,
                util::format("dras-agent-recovery-{}", rng_nonce_)));
}

void DrasAgent::end_episode() {
  // Flush a partial batch so no experience leaks across episodes.
  if (training_) {
    if (pg_) pg_->update();
    if (dql_) dql_->update();
  }
}

std::size_t DrasAgent::select(const sim::SchedulingContext& ctx,
                              std::span<const sim::Job* const> window) {
  assert(!window.empty());
  const std::size_t valid = window.size();
  std::size_t action = 0;
  if (config_.kind == AgentKind::PG) {
    encoder_.encode_window(ctx, window, config_.window, encode_scratch_);
    // The PG policy is stochastic at training AND evaluation time: "a
    // scheduling action is stochastically drawn from the W jobs following
    // their probability distributions" (§III-B).  A deterministic argmax
    // would let a positional bias starve whatever job it never points at.
    action = pg_->sample_action(encode_scratch_, valid, rng_);
    if (training_) {
      staged_state_ = encode_scratch_;
      staged_valid_ = valid;
      staged_action_ = action;
      staged_ = true;
    }
  } else {
    staged_candidates_.clear();
    staged_candidates_.reserve(valid);
    for (const sim::Job* job : window) {
      encoder_.encode_job(ctx, *job, encode_scratch_);
      staged_candidates_.push_back(encode_scratch_);
    }
    action = dql_->select_action(staged_candidates_, rng_,
                                 /*explore=*/training_);
    staged_action_ = action;
    staged_ = training_;
  }
  return action;
}

void DrasAgent::commit_reward(double reward) {
  episode_reward_ += reward;
  ++episode_actions_;
  if (!staged_) return;
  if (recent_actions_.size() < kRecentActionDepth) {
    recent_actions_.push_back(static_cast<std::uint32_t>(staged_action_));
  } else {
    recent_actions_[recent_actions_head_] =
        static_cast<std::uint32_t>(staged_action_);
    recent_actions_head_ = (recent_actions_head_ + 1) % kRecentActionDepth;
  }
  if (config_.kind == AgentKind::PG) {
    pg_->record(std::move(staged_state_), staged_valid_, staged_action_,
                reward);
  } else {
    dql_->record(std::move(staged_candidates_), staged_action_, reward);
  }
  staged_ = false;
}

void DrasAgent::maybe_update() {
  ++instances_seen_;
  if (!training_) return;
  if (instances_seen_ % static_cast<std::size_t>(config_.update_every) != 0)
    return;
  if (pg_) pg_->update();
  if (dql_) dql_->update();
}

void DrasAgent::schedule(sim::SchedulingContext& ctx) {
  // --- Level 1: immediate execution or reservation (§III-B). ---
  // Skipped while the reservation ledger is full (at the paper's depth 1:
  // whenever a reservation from an earlier instance is outstanding) — the
  // reservation blocks the machine head, so the only legal starts are
  // backfills, which is precisely level 2's job.
  std::vector<sim::Job*> eligible;
  while (!ctx.reservation().full()) {
    eligible.clear();
    for (sim::Job* job : ctx.queue())
      if (!ctx.is_reserved(job->id)) eligible.push_back(job);
    if (eligible.empty()) break;
    const auto window = truncate_window(eligible, config_.window);
    const std::size_t idx = select(ctx, window);
    const sim::Job* job = window[idx];
    if (ctx.cluster().fits(job->size) && ctx.start_now(job->id)) {
      commit_reward(reward_.step_reward(ctx, *job));
      continue;
    }
    if (ctx.reserve(job->id)) {
      commit_reward(reward_.step_reward(ctx, *job));
      if (ctx.reservation().full()) break;  // paper behaviour at depth 1
      continue;
    }
    // Neither startable nor reservable (e.g. fitting-but-unsafe with a
    // full profile): drop the staged experience and end level 1.
    discard_staged();
    break;
  }

  // --- Level 2: backfilling against the reservation (§III-B). ---
  if (ctx.reservation().active()) {
    while (true) {
      const auto candidates = ctx.backfill_candidates();
      if (candidates.empty()) break;
      const auto window = truncate_window(candidates, config_.window);
      const std::size_t idx = select(ctx, window);
      const sim::Job* job = window[idx];
      const bool ok = ctx.backfill(job->id);
      assert(ok);
      (void)ok;
      commit_reward(reward_.step_reward(ctx, *job));
    }
  }

  maybe_update();
}

}  // namespace dras::core
