// The DRAS scheduling agent (paper §III).
//
// DrasAgent implements the hierarchical two-level decision procedure of
// §III-B on top of either the PG or the DQL policy head:
//
//   level 1: repeatedly select a job from the W-slot window at the front
//            of the wait queue; start it if it fits.  The first selected
//            job that does not fit is *reserved* at its earliest start,
//            which hands control to level 2.
//   level 2: fill the window with backfill candidates (jobs that fit the
//            holes before the reserved start) and select one at a time
//            until no candidate remains.
//
// Every selection produces a reward (Eq. 1 or Eq. 2) evaluated on the
// post-action state; every `update_every` scheduling instances the policy
// performs one parameter update and clears its memory (§III-C).  With
// training disabled the agent acts greedily and collects no experience —
// that is the evaluation mode used for validation reward curves.  Keeping
// training enabled during testing gives the continual adaptation of §V-D.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/dql_policy.h"
#include "core/pg_policy.h"
#include "core/reward.h"
#include "core/state_encoder.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::core {

enum class AgentKind { PG, DQL };

[[nodiscard]] std::string_view to_string(AgentKind kind) noexcept;

struct DrasConfig {
  AgentKind kind = AgentKind::PG;
  int total_nodes = 0;
  std::size_t window = 50;      ///< W (§III-B; Table III output width).
  std::size_t fc1 = 0;          ///< Hidden layer widths (Table III).
  std::size_t fc2 = 0;
  double time_scale = 86400.0;  ///< Encoder normalisation (max walltime).
  RewardKind reward_kind = RewardKind::Capability;
  RewardWeights reward_weights;
  int update_every = 10;        ///< Scheduling instances per update (§III-C).
  nn::AdamConfig adam;          ///< lr 1e-3 (paper §IV-D).
  double gamma = 0.99;          ///< DQL bootstrap discount.
  double epsilon_init = 1.0;    ///< DQL exploration (§III-B).
  double epsilon_decay = 0.995;
  double epsilon_min = 0.01;
  std::uint64_t seed = 1;
  /// Append failure/recovery features to the state vector (recent fault
  /// rate, fraction of nodes down, requeued-work backlog; sim/fault.h).
  /// Adds two input rows to the network.  Off by default so fault-free
  /// agents keep their historical topology and checkpoint fingerprint.
  bool failure_features = false;
  /// Append fair-share features to the state vector (candidate user
  /// shares, queue user diversity; src/fair).  Adds two input rows.
  /// Off by default, same fingerprint discipline as failure_features.
  /// The fairness *reward* term is reward_weights.fairness.
  bool fairness_features = false;

  [[nodiscard]] nn::NetworkConfig network_config() const;
};

class DrasAgent final : public sim::Scheduler {
 public:
  explicit DrasAgent(const DrasConfig& config);

  [[nodiscard]] std::string_view name() const override { return name_; }
  void begin_episode() override;
  void end_episode() override;
  void schedule(sim::SchedulingContext& ctx) override;
  /// Deep copy of the agent: network parameters, optimiser moments,
  /// exploration schedule (DQL epsilon), PG baseline statistics, pending
  /// experience, RNG position, update cadence (instances_seen_) and the
  /// training flag all carry over, so the clone behaves bit-identically to
  /// the original from this point on — including under continual
  /// adaptation (training enabled during evaluation, §V-D).
  [[nodiscard]] std::unique_ptr<DrasAgent> clone_agent() const;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override;

  /// Enable/disable learning.  Disabled = greedy evaluation, no updates.
  void set_training(bool enabled) noexcept { training_ = enabled; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  /// Sum of step rewards collected during the current/last episode
  /// (the quantity plotted in Fig. 5).
  [[nodiscard]] double episode_reward() const noexcept {
    return episode_reward_;
  }
  [[nodiscard]] std::size_t episode_actions() const noexcept {
    return episode_actions_;
  }

  // --- Training telemetry (kind-agnostic views over the policy head) ---
  /// Loss of the most recent parameter update (0 before the first).
  [[nodiscard]] double last_update_loss() const noexcept {
    return pg_ ? pg_->last_loss() : dql_->last_loss();
  }
  /// Gradient L2 norm of the most recent parameter update.
  [[nodiscard]] double last_update_grad_norm() const noexcept {
    return pg_ ? pg_->last_grad_norm() : dql_->last_grad_norm();
  }
  /// Parameter updates performed so far.
  [[nodiscard]] std::size_t updates_done() const noexcept {
    return pg_ ? pg_->updates_done() : dql_->updates_done();
  }
  /// Current exploration rate; 0 for PG (which explores by sampling).
  [[nodiscard]] double epsilon() const noexcept {
    return dql_ ? dql_->epsilon() : 0.0;
  }

  /// Checkpoint hooks ("AGNT" section): configuration fingerprint, the
  /// active policy head (parameters, Adam moments, ε schedule, baselines,
  /// pending experience), the action-sampling RNG position, training
  /// flag, episode accounting and staged experience.  load_state()
  /// throws util::SerializationError when the checkpoint was written by
  /// an agent with a different configuration (kind, topology, seed or
  /// hyper-parameters) — restoring it would silently change the run.
  /// With `relaxed` a fingerprint mismatch is logged (stored vs local
  /// hash plus the local structural summary) and the load proceeds —
  /// cross-preset transfer for same-topology agents; the parameter
  /// shape checks below still reject a genuinely different topology,
  /// and a kind mismatch (PG vs DQL) always throws.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in, bool relaxed = false);

  [[nodiscard]] const DrasConfig& config() const noexcept { return config_; }
  [[nodiscard]] nn::Network& network();
  [[nodiscard]] const nn::Network& network() const;
  /// The active policy head's Adam optimiser (LR backoff lives here).
  [[nodiscard]] nn::Adam& optimizer() noexcept {
    return pg_ ? pg_->optimizer() : dql_->optimizer();
  }
  [[nodiscard]] const nn::Adam& optimizer() const noexcept {
    return pg_ ? pg_->optimizer() : dql_->optimizer();
  }
  /// Non-null exactly when kind == PG / DQL respectively.
  [[nodiscard]] PGPolicy* pg() noexcept { return pg_.get(); }
  [[nodiscard]] DQLPolicy* dql() noexcept { return dql_.get(); }

  /// Divergence-recovery stream perturbation.  Nonce 0 (the default)
  /// reproduces the historical action-sampling stream exactly; a
  /// non-zero nonce derives a fresh deterministic stream per value, so a
  /// rolled-back episode does not replay the exact trajectory that
  /// diverged.  Takes effect at the next begin_episode().
  void set_rng_nonce(std::uint64_t nonce) noexcept { rng_nonce_ = nonce; }
  [[nodiscard]] std::uint64_t rng_nonce() const noexcept {
    return rng_nonce_;
  }

  /// The most recent window-slot selections (newest last, bounded
  /// depth) — the "last actions" block of the divergence diagnostics
  /// dump.  Survives episode boundaries; not checkpointed.
  [[nodiscard]] std::vector<std::uint32_t> recent_actions() const;

  // --- Data-parallel rollout hooks (src/rollout) ---

  /// Divert policy updates into `sink` (see the policy heads): the
  /// rollout pool arms each clone with a per-slot accumulator so its
  /// episode leaves the parameters untouched.  Null restores normal
  /// in-place optimisation.  Not owned, never serialized or cloned as
  /// an armed pointer (the original is always unarmed when cloned).
  void set_gradient_sink(nn::GradientAccumulator* sink) noexcept {
    if (pg_) pg_->set_gradient_sink(sink);
    if (dql_) dql_->set_gradient_sink(sink);
  }

  /// One optimiser step with the round's reduced mean gradient standing
  /// in for `update_count` deferred clone updates (forwards to the
  /// active policy head).  No-op when update_count is 0.
  void apply_reduced_update(std::span<const float> gradient,
                            double mean_loss, std::size_t update_count) {
    if (pg_) pg_->apply_reduced_update(gradient, mean_loss, update_count);
    if (dql_) dql_->apply_reduced_update(gradient, mean_loss, update_count);
  }

  /// Scheduling instances consumed so far (the `update_every` cadence
  /// phase, which carries across episodes and is checkpointed).
  [[nodiscard]] std::size_t instances_seen() const noexcept {
    return instances_seen_;
  }
  /// Advance the cadence phase by the instances a round's clones
  /// consumed, so a later serial episode flushes on the same schedule a
  /// legacy run would have.
  void advance_instances(std::size_t delta) noexcept {
    instances_seen_ += delta;
  }

  /// Adopt a finished clone's episode telemetry (episode reward/action
  /// count and the recent-actions diagnostics ring).  Called per slot in
  /// task-index order, so after a round the original reports the last
  /// slot's episode — mirroring what the legacy loop's final episode
  /// would have left behind.
  void adopt_episode_telemetry(const DrasAgent& clone) {
    episode_reward_ = clone.episode_reward_;
    episode_actions_ = clone.episode_actions_;
    recent_actions_ = clone.recent_actions_;
    recent_actions_head_ = clone.recent_actions_head_;
  }

 private:
  /// Select a job index within `window`; stages the experience so that
  /// `commit_reward` can attach the post-action reward.
  [[nodiscard]] std::size_t select(const sim::SchedulingContext& ctx,
                                   std::span<const sim::Job* const> window);
  void commit_reward(double reward);
  /// Drop a staged experience whose action turned out to be illegal.
  void discard_staged() noexcept { staged_ = false; }
  void maybe_update();

  DrasConfig config_;
  std::string name_;
  RewardFunction reward_;
  StateEncoder encoder_;
  std::unique_ptr<PGPolicy> pg_;
  std::unique_ptr<DQLPolicy> dql_;
  util::Rng rng_;
  bool training_ = true;

  // Staged experience between select() and commit_reward().
  std::vector<float> staged_state_;                 // PG
  std::vector<std::vector<float>> staged_candidates_;  // DQL
  std::size_t staged_valid_ = 0;
  std::size_t staged_action_ = 0;
  bool staged_ = false;

  double episode_reward_ = 0.0;
  std::size_t episode_actions_ = 0;
  std::size_t instances_seen_ = 0;
  std::vector<float> encode_scratch_;

  std::uint64_t rng_nonce_ = 0;
  static constexpr std::size_t kRecentActionDepth = 32;
  std::vector<std::uint32_t> recent_actions_;  // ring, oldest at head_
  std::size_t recent_actions_head_ = 0;
};

}  // namespace dras::core
