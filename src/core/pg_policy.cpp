#include "core/pg_policy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/ops.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/binio.h"

namespace dras::core {

namespace {
/// Wall time of one policy update (batch REINFORCE pass + Adam step,
/// or gradient deposit in deferred mode).
obs::HdrHistogram& update_us_hdr() {
  static obs::HdrHistogram& hdr = obs::Registry::global().hdr("nn.update_us");
  return hdr;
}
}  // namespace

PGPolicy::PGPolicy(const PGConfig& config, std::uint64_t seed)
    : config_(config),
      network_([&] {
        util::Rng init_rng(util::derive_seed(seed, "pg-init"));
        return nn::Network(config.net, init_rng);
      }()),
      optimizer_(network_.parameter_count(), config.adam) {
  probs_scratch_.resize(config_.net.outputs);
}

void PGPolicy::action_probabilities(std::span<const float> state,
                                    std::size_t valid,
                                    std::vector<float>& probs) {
  if (valid == 0 || valid > config_.net.outputs)
    throw std::invalid_argument("invalid action count");
  const auto logits = network_.forward(state);
  probs.resize(logits.size());
  nn::softmax_masked(logits, probs, valid);
}

std::size_t PGPolicy::sample_action(std::span<const float> state,
                                    std::size_t valid, util::Rng& rng) {
  action_probabilities(state, valid, probs_scratch_);
  std::vector<double> weights(probs_scratch_.begin(),
                              probs_scratch_.begin() +
                                  static_cast<std::ptrdiff_t>(valid));
  const std::size_t pick = rng.weighted_index(weights.data(), valid);
  return pick < valid ? pick : 0;
}

std::size_t PGPolicy::greedy_action(std::span<const float> state,
                                    std::size_t valid) {
  action_probabilities(state, valid, probs_scratch_);
  return static_cast<std::size_t>(
      std::max_element(probs_scratch_.begin(),
                       probs_scratch_.begin() +
                           static_cast<std::ptrdiff_t>(valid)) -
      probs_scratch_.begin());
}

void PGPolicy::record(std::vector<float> state, std::size_t valid,
                      std::size_t action, double reward) {
  assert(action < valid && valid <= config_.net.outputs);
  memory_.push_back(Step{std::move(state), valid, action, reward});
}

void PGPolicy::update() {
  if (memory_.empty()) return;
  const std::size_t k_total = memory_.size();
  obs::Span update_span(
      "nn.update", {obs::targ("steps", static_cast<std::uint64_t>(k_total))},
      &update_us_hdr());

  // Returns-to-go: G_k = sum_{k' >= k} r_{k'} (Eq. 3, undiscounted).
  std::vector<double> returns(k_total);
  double acc = 0.0;
  for (std::size_t k = k_total; k-- > 0;) {
    acc += memory_[k].reward;
    returns[k] = acc;
  }

  if (baseline_sum_.size() < k_total) {
    baseline_sum_.resize(k_total, 0.0);
    baseline_count_.resize(k_total, 0);
  }

  // All K window evaluations run as one batched forward: the recorded
  // states and the parameters are both fixed for the whole sweep, so
  // forward_batch_retained() replaces K forward() calls (bit-identical
  // per sample — see nn::gemm_batch) and stage_batch_sample() below
  // rehydrates each sample's activations for its backward pass.
  const std::size_t input_size = config_.net.input_size();
  const std::size_t outputs = config_.net.outputs;
  batch_states_.resize(k_total * input_size);
  for (std::size_t k = 0; k < k_total; ++k) {
    const Step& step = memory_[k];
    assert(step.state.size() == input_size);
    std::copy(step.state.begin(), step.state.end(),
              batch_states_.begin() +
                  static_cast<std::ptrdiff_t>(k * input_size));
  }
  batch_logits_.resize(k_total * outputs);
  network_.forward_batch_retained(batch_states_, k_total, batch_logits_);

  network_.zero_gradients();
  std::vector<float> grad_logits(config_.net.outputs);
  double loss_acc = 0.0;
  for (std::size_t k = 0; k < k_total; ++k) {
    const Step& step = memory_[k];
    const double baseline = baseline_count_[k] > 0
                                ? baseline_sum_[k] /
                                      static_cast<double>(baseline_count_[k])
                                : 0.0;
    const double advantage = returns[k] - baseline;
    // Update the running baseline with this batch's return (after use, so
    // b_k averages over *past* parameter updates only).
    baseline_sum_[k] += returns[k];
    ++baseline_count_[k];

    // Gradient of −log π(a|s)·A at the logits: (softmax − onehot_a)·A.
    const std::span<const float> logits(batch_logits_.data() + k * outputs,
                                        outputs);
    nn::softmax_masked(logits, probs_scratch_, step.valid);
    const double p_action =
        std::max(static_cast<double>(probs_scratch_[step.action]), 1e-12);
    loss_acc += -std::log(p_action) * advantage;
    const auto adv = static_cast<float>(advantage);
    for (std::size_t i = 0; i < grad_logits.size(); ++i)
      grad_logits[i] = probs_scratch_[i] * adv;
    grad_logits[step.action] -= adv;
    network_.stage_batch_sample(k);
    network_.backward(grad_logits);
  }

  // Average over the batch, matching the 1/K-free form of Eq. 3 loosely but
  // keeping step magnitude independent of batch length.
  const auto scale = 1.0f / static_cast<float>(k_total);
  for (float& g : network_.gradients()) g *= scale;
  double grad_sq = 0.0;
  for (const float g : network_.gradients())
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  last_loss_ = loss_acc / static_cast<double>(k_total);
  last_grad_norm_ = std::sqrt(grad_sq);
  if (sink_ != nullptr) {
    // Deferred mode (data-parallel rollout): deposit the batch-mean
    // gradient for the round's reduction; parameters stay frozen at
    // their round-start values.
    sink_->add(network_.gradients(), last_loss_);
  } else {
    optimizer_.step(network_.parameters(), network_.gradients());
  }
  network_.zero_gradients();
  memory_.clear();
  ++updates_;
}

void PGPolicy::apply_reduced_update(std::span<const float> gradient,
                                    double mean_loss,
                                    std::size_t update_count) {
  if (update_count == 0) return;
  const auto grads = network_.gradients();
  if (gradient.size() != grads.size())
    throw std::invalid_argument(
        "PGPolicy::apply_reduced_update: gradient length mismatch");
  std::copy(gradient.begin(), gradient.end(), grads.begin());
  double grad_sq = 0.0;
  for (const float g : grads)
    grad_sq += static_cast<double>(g) * static_cast<double>(g);
  last_loss_ = mean_loss;
  last_grad_norm_ = std::sqrt(grad_sq);
  optimizer_.step(network_.parameters(), grads);
  network_.zero_gradients();
  updates_ += update_count;
}

void PGPolicy::merge_baseline_delta(const BaselineSnapshot& base,
                                    const PGPolicy& updated) {
  const std::size_t k_total = updated.baseline_sum_.size();
  if (baseline_sum_.size() < k_total) {
    baseline_sum_.resize(k_total, 0.0);
    baseline_count_.resize(k_total, 0);
  }
  for (std::size_t k = 0; k < k_total; ++k) {
    const double base_sum = k < base.sum.size() ? base.sum[k] : 0.0;
    const std::size_t base_count = k < base.count.size() ? base.count[k] : 0;
    baseline_sum_[k] += updated.baseline_sum_[k] - base_sum;
    baseline_count_[k] += updated.baseline_count_[k] - base_count;
  }
}

void PGPolicy::save_state(util::BinaryWriter& out) const {
  out.section("PGPO", 1);
  network_.save_state(out);
  optimizer_.save_state(out);
  out.f64_span(baseline_sum_);
  std::vector<std::uint64_t> counts(baseline_count_.begin(),
                                    baseline_count_.end());
  out.u64_span(counts);
  out.u64(updates_);
  out.f64(last_loss_);
  out.f64(last_grad_norm_);
  out.u64(memory_.size());
  for (const Step& step : memory_) {
    out.f32_span(step.state);
    out.u64(step.valid);
    out.u64(step.action);
    out.f64(step.reward);
  }
}

void PGPolicy::load_state(util::BinaryReader& in) {
  in.section("PGPO", 1);
  network_.load_state(in);
  optimizer_.load_state(in);
  baseline_sum_ = in.f64_vector();
  const auto counts = in.u64_vector();
  if (counts.size() != baseline_sum_.size())
    throw util::SerializationError(
        "PG baseline sum/count length mismatch in checkpoint");
  baseline_count_.assign(counts.begin(), counts.end());
  updates_ = in.u64();
  last_loss_ = in.f64();
  last_grad_norm_ = in.f64();
  memory_.clear();
  const std::uint64_t steps = in.u64();
  memory_.reserve(steps);
  for (std::uint64_t k = 0; k < steps; ++k) {
    Step step;
    step.state = in.f32_vector();
    step.valid = in.u64();
    step.action = in.u64();
    step.reward = in.f64();
    if (step.valid == 0 || step.valid > config_.net.outputs ||
        step.action >= step.valid)
      throw util::SerializationError(
          "PG memory step carries an out-of-range action in checkpoint");
    memory_.push_back(std::move(step));
  }
}

}  // namespace dras::core
