// DRAS-PG: policy-gradient head over the shared five-layer network
// (paper §III-B, Eq. 3).
//
// The network maps the encoded window state to W logits; a masked softmax
// turns the first `valid` logits into a distribution over the jobs present
// in the window, and the action is drawn stochastically from it.  Updates
// are episodic REINFORCE with a per-step baseline:
//
//   θ ← θ + α Σ_k ∇θ log πθ(s_k, a_k) ( Σ_{k'>=k} r_{k'} − b_k )
//
// where b_k is the running mean over all past updates of the cumulative
// reward from step k onward.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/adam.h"
#include "nn/grad_accumulator.h"
#include "nn/network.h"
#include "util/rng.h"

namespace dras::core {

struct PGConfig {
  nn::NetworkConfig net;  ///< outputs = window slots W.
  nn::AdamConfig adam;    ///< lr defaults to the paper's 1e-3.
};

class PGPolicy {
 public:
  PGPolicy(const PGConfig& config, std::uint64_t seed);

  /// Stochastic draw from the masked softmax over the first `valid`
  /// actions (training-time behaviour).
  [[nodiscard]] std::size_t sample_action(std::span<const float> state,
                                          std::size_t valid, util::Rng& rng);

  /// Deterministic argmax action (evaluation-time behaviour).
  [[nodiscard]] std::size_t greedy_action(std::span<const float> state,
                                          std::size_t valid);

  /// Action probabilities for the given state (masked softmax).
  void action_probabilities(std::span<const float> state, std::size_t valid,
                            std::vector<float>& probs);

  /// Append one experience step to the on-policy memory.
  void record(std::vector<float> state, std::size_t valid, std::size_t action,
              double reward);

  /// Eq. 3 update over the recorded steps; clears the memory afterwards
  /// ("updates its parameters based on the collected observations and then
  /// clears the memory", §III-C).  No-op when the memory is empty.
  void update();

  [[nodiscard]] std::size_t pending_steps() const noexcept {
    return memory_.size();
  }
  [[nodiscard]] std::size_t updates_done() const noexcept { return updates_; }
  /// Mean REINFORCE surrogate loss (−log π·A) of the last update; 0 before
  /// the first update.  Telemetry only — not part of the learning rule.
  [[nodiscard]] double last_loss() const noexcept { return last_loss_; }
  /// L2 norm of the batch-averaged gradient applied by the last update.
  [[nodiscard]] double last_grad_norm() const noexcept {
    return last_grad_norm_;
  }
  [[nodiscard]] nn::Network& network() noexcept { return network_; }
  [[nodiscard]] const nn::Network& network() const noexcept {
    return network_;
  }
  [[nodiscard]] nn::Adam& optimizer() noexcept { return optimizer_; }
  [[nodiscard]] const nn::Adam& optimizer() const noexcept {
    return optimizer_;
  }

  /// Drop recorded experience without updating (e.g. when switching from
  /// training to evaluation mid-run).
  void discard_memory() { memory_.clear(); }

  // --- Data-parallel rollout hooks (src/rollout) ---

  /// Divert updates into `sink`: update() computes the batch-mean
  /// gradient, loss and baseline bookkeeping exactly as usual, but
  /// deposits the gradient instead of stepping the optimiser, so the
  /// parameters stay frozen at their round-start values.  Null restores
  /// normal stepping.  The pointer is not owned and must outlive the
  /// diverted updates; it is never serialized.
  void set_gradient_sink(nn::GradientAccumulator* sink) noexcept {
    sink_ = sink;
  }
  [[nodiscard]] nn::GradientAccumulator* gradient_sink() const noexcept {
    return sink_;
  }

  /// One optimiser step with an externally reduced mean gradient
  /// standing in for `update_count` deferred updates (telemetry — loss,
  /// grad norm, update counter — advances accordingly).  No-op when
  /// update_count is 0.
  void apply_reduced_update(std::span<const float> gradient,
                            double mean_loss, std::size_t update_count);

  /// Copy of the running baseline statistics, taken at a round boundary
  /// so merge_baseline_delta() can fold in what each clone learned.
  struct BaselineSnapshot {
    std::vector<double> sum;
    std::vector<std::size_t> count;
  };
  [[nodiscard]] BaselineSnapshot baseline_snapshot() const {
    return BaselineSnapshot{baseline_sum_, baseline_count_};
  }
  /// Fold the baseline changes `updated` made relative to `base` into
  /// this policy.  Callers own the reduction-order contract: merge
  /// clones in ascending task index so the double sums are bit-stable
  /// for any worker count.
  void merge_baseline_delta(const BaselineSnapshot& base,
                            const PGPolicy& updated);

  /// Checkpoint hooks ("PGPO" section): network parameters, optimiser
  /// moments, baseline statistics, update telemetry and any pending
  /// on-policy memory.  A restored policy continues bit-identically.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  struct Step {
    std::vector<float> state;
    std::size_t valid = 0;
    std::size_t action = 0;
    double reward = 0.0;
  };

  PGConfig config_;
  nn::Network network_;
  nn::Adam optimizer_;
  std::vector<Step> memory_;
  // Running baseline statistics per step index k.
  std::vector<double> baseline_sum_;
  std::vector<std::size_t> baseline_count_;
  std::size_t updates_ = 0;
  double last_loss_ = 0.0;
  double last_grad_norm_ = 0.0;
  std::vector<float> probs_scratch_;
  // update() scratch: the batched forward's packed states and logits
  // (states and parameters are fixed across an update, so all K
  // forwards run as one forward_batch_retained call).
  std::vector<float> batch_states_, batch_logits_;
  nn::GradientAccumulator* sink_ = nullptr;  // transient, never serialized
};

}  // namespace dras::core
