#include "core/presets.h"

namespace dras::core {

nn::NetworkConfig SystemPreset::pg_network() const {
  nn::NetworkConfig net;
  net.input_rows = 2 * window + static_cast<std::size_t>(nodes);
  net.fc1 = fc1;
  net.fc2 = fc2;
  net.outputs = window;
  return net;
}

nn::NetworkConfig SystemPreset::dql_network() const {
  nn::NetworkConfig net;
  net.input_rows = 2 + static_cast<std::size_t>(nodes);
  net.fc1 = fc1;
  net.fc2 = fc2;
  net.outputs = 1;
  return net;
}

DrasConfig SystemPreset::agent_config(AgentKind kind,
                                      std::uint64_t seed) const {
  DrasConfig cfg;
  cfg.kind = kind;
  cfg.total_nodes = nodes;
  cfg.window = window;
  cfg.fc1 = fc1;
  cfg.fc2 = fc2;
  cfg.time_scale = max_walltime;
  cfg.reward_kind = reward;
  cfg.seed = seed;
  return cfg;
}

SystemPreset theta() {
  SystemPreset p;
  p.name = "theta";
  p.nodes = 4360;
  p.window = 50;
  p.fc1 = 4000;
  p.fc2 = 1000;
  p.reward = RewardKind::Capability;
  p.max_walltime = 86400.0;  // 1 day (Table II)
  return p;
}

SystemPreset cori() {
  SystemPreset p;
  p.name = "cori";
  p.nodes = 12076;
  p.window = 50;
  p.fc1 = 10000;
  p.fc2 = 4000;
  p.reward = RewardKind::Capacity;
  p.max_walltime = 7.0 * 86400.0;  // 7 days (Table II)
  return p;
}

SystemPreset theta_mini() {
  SystemPreset p;
  p.name = "theta-mini";
  p.nodes = 272;  // 4360 / 16, rounded to keep 128/16 = 8-node granularity
  p.window = 10;
  p.fc1 = 256;
  p.fc2 = 64;
  p.reward = RewardKind::Capability;
  p.max_walltime = 86400.0;
  return p;
}

SystemPreset cori_mini() {
  SystemPreset p;
  p.name = "cori-mini";
  p.nodes = 256;
  p.window = 10;
  p.fc1 = 256;
  p.fc2 = 64;
  p.reward = RewardKind::Capacity;
  p.max_walltime = 2.0 * 86400.0;  // mini model caps runtimes at 2 days
  return p;
}

}  // namespace dras::core
