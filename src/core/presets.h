// System presets: the paper's two target systems (Table II / Table III)
// plus proportionally scaled-down "mini" variants used by the trace-driven
// experiments so each bench completes in seconds to minutes.
//
//   theta  — ALCF Theta:  4,360 user nodes (4,392 minus 32 debug nodes,
//            §IV-C), capability computing, reward Eq. 1, W = 50,
//            hidden 4000/1000, max walltime 1 day.
//   cori   — NERSC Cori: 12,076 nodes, capacity computing, reward Eq. 2,
//            W = 50, hidden 10000/4000, max walltime 7 days.
//   *_mini — node counts and job sizes divided by 16, W = 10, small hidden
//            layers.  Scheduling dynamics depend on job-size-to-machine
//            ratios and load, which the scaling preserves (DESIGN.md §1).
#pragma once

#include <string>

#include "core/dras_agent.h"

namespace dras::core {

struct SystemPreset {
  std::string name;
  int nodes = 0;
  std::size_t window = 50;
  std::size_t fc1 = 0;
  std::size_t fc2 = 0;
  RewardKind reward = RewardKind::Capability;
  double max_walltime = 86400.0;  ///< Seconds; also the encoder time scale.

  /// Network shapes as in Table III.
  [[nodiscard]] nn::NetworkConfig pg_network() const;
  [[nodiscard]] nn::NetworkConfig dql_network() const;

  /// Ready-to-use agent configuration for this system.
  [[nodiscard]] DrasConfig agent_config(AgentKind kind,
                                        std::uint64_t seed) const;
};

[[nodiscard]] SystemPreset theta();
[[nodiscard]] SystemPreset cori();
[[nodiscard]] SystemPreset theta_mini();
[[nodiscard]] SystemPreset cori_mini();

}  // namespace dras::core
