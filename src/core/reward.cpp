#include "core/reward.h"

#include <algorithm>

namespace dras::core {

std::string_view to_string(RewardKind kind) noexcept {
  return kind == RewardKind::Capability ? "capability" : "capacity";
}

RewardFunction::RewardFunction(RewardKind kind, RewardWeights weights)
    : kind_(kind), weights_(weights) {}

double RewardFunction::step_reward(const sim::SchedulingContext& ctx,
                                   const sim::Job& job) const {
  const auto n_total = static_cast<double>(ctx.cluster().total_nodes());
  double reward = 0.0;
  switch (kind_) {
    case RewardKind::Capability: {
      const double wait = std::max(ctx.now() - job.submit_time, 0.0);
      // t_max covers the selected job too: the selected job may itself have
      // been the longest-waiting one before the action removed it.
      const double t_max =
          std::max({ctx.max_queued_time(), wait, kQueuedTimeFloor});
      const double wait_share = wait / t_max;
      const double size_share = static_cast<double>(job.size) / n_total;
      const double util = ctx.cluster().utilization();
      reward = weights_.w1 * wait_share + weights_.w2 * size_share +
               weights_.w3 * util;
      break;
    }
    case RewardKind::Capacity: {
      const auto& queue = ctx.queue();
      if (queue.empty()) break;
      double sum = 0.0;
      for (const sim::Job* waiting : queue) {
        const double queued =
            std::max(ctx.now() - waiting->submit_time, kQueuedTimeFloor);
        sum += -1.0 / queued;
      }
      reward = sum / static_cast<double>(queue.size());
      break;
    }
  }
  // Opt-in fairness shaping: favour users holding a small decayed share
  // of the machine.  Guarded so weight 0 stays bit-identical (no +0.0).
  if (weights_.fairness != 0.0)
    reward += weights_.fairness * (1.0 - ctx.user_share(job.user_id));
  return reward;
}

double RewardFunction::job_value(const sim::SchedulingContext& ctx,
                                 const sim::Job& job) const {
  const auto n_total = static_cast<double>(ctx.cluster().total_nodes());
  const double queued =
      std::max(ctx.now() - job.submit_time, kQueuedTimeFloor);
  switch (kind_) {
    case RewardKind::Capability: {
      const double t_max = std::max(ctx.max_queued_time(), kQueuedTimeFloor);
      // Selecting the job contributes its wait share, its size share and —
      // by occupying size nodes — the same size share of utilisation.
      return weights_.w1 * (queued / t_max) +
             (weights_.w2 + weights_.w3) *
                 (static_cast<double>(job.size) / n_total);
    }
    case RewardKind::Capacity:
      // Removing the job deletes its −1/t_j penalty from Eq. 2.
      return 1.0 / queued;
  }
  return 0.0;
}

}  // namespace dras::core
