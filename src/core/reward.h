// Scheduling reward functions (paper §III-A).
//
// Capability computing (Eq. 1):  w1·t̄/t_max + w2·n̄/N + w3·N_used/N
//   — balances starvation avoidance (reward selecting long-waiting jobs),
//     capability-job promotion (reward selecting large jobs), and system
//     utilisation.  Weights default to the paper's 1/3 each (§IV-D).
//
// Capacity computing (Eq. 2):  ( Σ_{j∈J} −1/t_j ) / c
//   — a penalty over the jobs *left* in the queue, largest for recently
//     submitted jobs, aimed at minimising average wait.
//
// DRAS decomposes each scheduling instance into single-job selections, so
// the reward is evaluated per selection, immediately after the action.
#pragma once

#include "sim/scheduler.h"

namespace dras::core {

enum class RewardKind {
  Capability,  ///< Eq. 1 — used for Theta-like systems.
  Capacity,    ///< Eq. 2 — used for Cori-like systems.
};

[[nodiscard]] std::string_view to_string(RewardKind kind) noexcept;

struct RewardWeights {
  double w1 = 1.0 / 3.0;  ///< starvation avoidance (wait share)
  double w2 = 1.0 / 3.0;  ///< capability promotion (size share)
  double w3 = 1.0 / 3.0;  ///< utilisation share
  /// Opt-in fairness shaping (src/fair, DESIGN.md §12): adds
  /// fairness × (1 − user_share) to every step reward, rewarding the
  /// selection of jobs from users holding a small decayed share of the
  /// machine.  At 0 (the default) the term — and its branch — vanish,
  /// leaving rewards byte-identical to the unshaped function.
  double fairness = 0.0;
};

class RewardFunction {
 public:
  explicit RewardFunction(RewardKind kind, RewardWeights weights = {});

  [[nodiscard]] RewardKind kind() const noexcept { return kind_; }
  [[nodiscard]] const RewardWeights& weights() const noexcept {
    return weights_;
  }

  /// Reward for having just selected `job`, evaluated on the post-action
  /// environment state in `ctx`.
  [[nodiscard]] double step_reward(const sim::SchedulingContext& ctx,
                                   const sim::Job& job) const;

  /// Myopic per-job value used by the knapsack Optimization baseline: the
  /// immediate objective gain of selecting `job` right now.  Shares the
  /// scheduling objective with DRAS ("for a fair comparison, we use the
  /// same scheduling objectives for Optimization and for DRAS", §IV-A).
  [[nodiscard]] double job_value(const sim::SchedulingContext& ctx,
                                 const sim::Job& job) const;

 private:
  RewardKind kind_;
  RewardWeights weights_;
};

/// Floor applied to queued times before reciprocals (avoids 1/0 blow-ups
/// for jobs selected or evaluated immediately after submission).
inline constexpr double kQueuedTimeFloor = 1.0;

}  // namespace dras::core
