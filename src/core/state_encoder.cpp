#include "core/state_encoder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dras::core {

StateEncoder::StateEncoder(int total_nodes, double time_scale,
                           bool failure_features)
    : total_nodes_(total_nodes),
      time_scale_(time_scale),
      failure_features_(failure_features) {
  if (total_nodes <= 0 || time_scale <= 0.0)
    throw std::invalid_argument("encoder needs positive nodes/time scale");
}

void StateEncoder::write_job_block(const sim::Job& job, sim::Time now,
                                   float* out) const noexcept {
  const auto n = static_cast<float>(total_nodes_);
  const auto ts = static_cast<float>(time_scale_);
  // Row 1: size, runtime estimate.
  out[0] = static_cast<float>(job.size) / n;
  out[1] = static_cast<float>(job.runtime_estimate) / ts;
  // Row 2: priority, queued time.
  out[2] = static_cast<float>(job.priority);
  out[3] = static_cast<float>(std::max(0.0, now - job.submit_time)) / ts;
}

void StateEncoder::append_nodes(const sim::SchedulingContext& ctx,
                                float* out) const {
  ctx.cluster().encode_nodes(ctx.now(), node_scratch_);
  assert(node_scratch_.size() == static_cast<std::size_t>(total_nodes_));
  const auto ts = static_cast<float>(time_scale_);
  for (std::size_t i = 0; i < node_scratch_.size(); ++i) {
    out[2 * i] = node_scratch_[i].available;
    out[2 * i + 1] = node_scratch_[i].release_delta / ts;
  }
}

void StateEncoder::append_failure_rows(const sim::SchedulingContext& ctx,
                                       float* out) const noexcept {
  // Row 1: recent fault rate (failures per node in the feature window),
  //        fraction of machine nodes currently down.
  out[0] = static_cast<float>(ctx.recent_fault_rate());
  out[1] = static_cast<float>(ctx.fraction_down());
  // Row 2: requeued-work backlog in machine-time_scale units; padding.
  out[2] = static_cast<float>(
      ctx.requeued_backlog() /
      (static_cast<double>(total_nodes_) * time_scale_));
  out[3] = 0.0f;
}

void StateEncoder::encode_window(const sim::SchedulingContext& ctx,
                                 std::span<const sim::Job* const> window,
                                 std::size_t window_slots,
                                 std::vector<float>& out) const {
  if (window.size() > window_slots)
    throw std::invalid_argument("window holds more jobs than slots");
  out.assign(pg_input_size(window_slots), 0.0f);
  float* cursor = out.data();
  for (const sim::Job* job : window) {
    write_job_block(*job, ctx.now(), cursor);
    cursor += 4;
  }
  // Remaining slots stay zero (invalid actions are masked downstream).
  cursor = out.data() + 4 * window_slots;
  append_nodes(ctx, cursor);
  if (failure_features_)
    append_failure_rows(
        ctx, cursor + 2 * static_cast<std::size_t>(total_nodes_));
}

void StateEncoder::encode_job(const sim::SchedulingContext& ctx,
                              const sim::Job& job,
                              std::vector<float>& out) const {
  out.assign(dql_input_size(), 0.0f);
  write_job_block(job, ctx.now(), out.data());
  append_nodes(ctx, out.data() + 4);
  if (failure_features_)
    append_failure_rows(
        ctx, out.data() + 4 + 2 * static_cast<std::size_t>(total_nodes_));
}

}  // namespace dras::core
