#include "core/state_encoder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dras::core {

StateEncoder::StateEncoder(int total_nodes, double time_scale,
                           bool failure_features, bool fairness_features)
    : total_nodes_(total_nodes),
      time_scale_(time_scale),
      failure_features_(failure_features),
      fairness_features_(fairness_features) {
  if (total_nodes <= 0 || time_scale <= 0.0)
    throw std::invalid_argument("encoder needs positive nodes/time scale");
}

void StateEncoder::write_job_block(const sim::Job& job, sim::Time now,
                                   float* out) const noexcept {
  const auto n = static_cast<float>(total_nodes_);
  const auto ts = static_cast<float>(time_scale_);
  // Row 1: size, runtime estimate.
  out[0] = static_cast<float>(job.size) / n;
  out[1] = static_cast<float>(job.runtime_estimate) / ts;
  // Row 2: priority, queued time.
  out[2] = static_cast<float>(job.priority);
  out[3] = static_cast<float>(std::max(0.0, now - job.submit_time)) / ts;
}

void StateEncoder::append_nodes(const sim::SchedulingContext& ctx,
                                float* out) const {
  ctx.cluster().encode_nodes(ctx.now(), node_scratch_);
  assert(node_scratch_.size() == static_cast<std::size_t>(total_nodes_));
  const auto ts = static_cast<float>(time_scale_);
  for (std::size_t i = 0; i < node_scratch_.size(); ++i) {
    out[2 * i] = node_scratch_[i].available;
    out[2 * i + 1] = node_scratch_[i].release_delta / ts;
  }
}

void StateEncoder::append_failure_rows(const sim::SchedulingContext& ctx,
                                       float* out) const noexcept {
  // Row 1: recent fault rate (failures per node in the feature window),
  //        fraction of machine nodes currently down.
  out[0] = static_cast<float>(ctx.recent_fault_rate());
  out[1] = static_cast<float>(ctx.fraction_down());
  // Row 2: requeued-work backlog in machine-time_scale units; padding.
  out[2] = static_cast<float>(
      ctx.requeued_backlog() /
      (static_cast<double>(total_nodes_) * time_scale_));
  out[3] = 0.0f;
}

void StateEncoder::append_fairness_rows(
    const sim::SchedulingContext& ctx,
    std::span<const sim::Job* const> candidates, float* out) const noexcept {
  // Row 1: mean and max decayed user share over the candidate jobs —
  //        how well-served are the users the agent can pick from?
  float mean = 0.0f, max = 0.0f;
  for (const sim::Job* job : candidates) {
    const auto share = static_cast<float>(ctx.user_share(job->user_id));
    mean += share;
    max = std::max(max, share);
  }
  if (!candidates.empty()) mean /= static_cast<float>(candidates.size());
  out[0] = mean;
  out[1] = max;
  // Row 2: user diversity of the full queue (distinct users per queued
  //        job, in (0, 1]); padding.
  const std::size_t queued = ctx.queue().size();
  out[2] = queued > 0 ? static_cast<float>(ctx.queued_user_count()) /
                            static_cast<float>(queued)
                      : 0.0f;
  out[3] = 0.0f;
}

void StateEncoder::encode_window(const sim::SchedulingContext& ctx,
                                 std::span<const sim::Job* const> window,
                                 std::size_t window_slots,
                                 std::vector<float>& out) const {
  if (window.size() > window_slots)
    throw std::invalid_argument("window holds more jobs than slots");
  out.assign(pg_input_size(window_slots), 0.0f);
  float* cursor = out.data();
  for (const sim::Job* job : window) {
    write_job_block(*job, ctx.now(), cursor);
    cursor += 4;
  }
  // Remaining slots stay zero (invalid actions are masked downstream).
  cursor = out.data() + 4 * window_slots;
  append_nodes(ctx, cursor);
  cursor += 2 * static_cast<std::size_t>(total_nodes_);
  if (failure_features_) {
    append_failure_rows(ctx, cursor);
    cursor += 2 * kFailureRows;
  }
  if (fairness_features_) append_fairness_rows(ctx, window, cursor);
}

void StateEncoder::encode_job(const sim::SchedulingContext& ctx,
                              const sim::Job& job,
                              std::vector<float>& out) const {
  out.assign(dql_input_size(), 0.0f);
  write_job_block(job, ctx.now(), out.data());
  append_nodes(ctx, out.data() + 4);
  float* cursor =
      out.data() + 4 + 2 * static_cast<std::size_t>(total_nodes_);
  if (failure_features_) {
    append_failure_rows(ctx, cursor);
    cursor += 2 * kFailureRows;
  }
  if (fairness_features_) {
    const sim::Job* candidates[] = {&job};
    append_fairness_rows(ctx, candidates, cursor);
  }
}

}  // namespace dras::core
