// State encoding (paper §III-A).
//
// Each waiting job becomes a [2,2] block:
//     [ job size          , runtime estimate ]
//     [ priority (0/1)    , queued time      ]
// Each node becomes a [1,2] row:
//     [ availability (0/1), estimated-release minus now (0 if available) ]
//
// DRAS-PG concatenates W job blocks (zero-padded when fewer jobs are in the
// window) with the N node rows → input [2W+N, 2].
// DRAS-DQL concatenates one job block with the node rows → input [2+N, 2].
//
// With failure features enabled (sim/fault.h) two extra rows describe the
// fault state of the machine:
//     [ recent fault rate  , fraction of nodes down ]
//     [ requeued backlog   , 0                      ]
// so a fault-aware agent sees degraded capacity and the killed-work debt
// it is scheduling against.  Off by default — the fault-free encoding is
// bit-identical to the historical one.
//
// With fairness features enabled (src/fair) two further rows summarise
// the fair-share state of the candidate jobs:
//     [ mean user share over the candidates, max user share ]
//     [ queued-user diversity (distinct users / queued jobs), 0 ]
// so a fairness-aware agent can tell whether the window is dominated by
// already-well-served users.  Also off by default and bit-identical when
// disabled.
//
// The paper feeds raw values; we additionally scale sizes by the machine
// size and times by a per-system time scale so the network inputs stay
// O(1) — a standard conditioning detail that does not change what the
// agent observes.
#pragma once

#include <span>
#include <vector>

#include "sim/cluster.h"
#include "sim/scheduler.h"

namespace dras::core {

class StateEncoder {
 public:
  /// Extra input rows appended when failure features are enabled.
  static constexpr std::size_t kFailureRows = 2;
  /// Extra input rows appended when fairness features are enabled.
  static constexpr std::size_t kFairnessRows = 2;

  /// `time_scale` is the characteristic time (seconds) used to normalise
  /// runtimes, queued times and release deltas (e.g. the system's maximum
  /// walltime).
  StateEncoder(int total_nodes, double time_scale,
               bool failure_features = false,
               bool fairness_features = false);

  [[nodiscard]] int total_nodes() const noexcept { return total_nodes_; }
  [[nodiscard]] double time_scale() const noexcept { return time_scale_; }
  [[nodiscard]] bool failure_features() const noexcept {
    return failure_features_;
  }
  [[nodiscard]] bool fairness_features() const noexcept {
    return fairness_features_;
  }

  /// Flat input length for a PG network over a W-job window.
  [[nodiscard]] std::size_t pg_input_size(std::size_t window) const noexcept {
    return 2 * (2 * window + static_cast<std::size_t>(total_nodes_) +
                (failure_features_ ? kFailureRows : 0) +
                (fairness_features_ ? kFairnessRows : 0));
  }
  /// Flat input length for a DQL network (one job).
  [[nodiscard]] std::size_t dql_input_size() const noexcept {
    return 2 * (2 + static_cast<std::size_t>(total_nodes_) +
                (failure_features_ ? kFailureRows : 0) +
                (fairness_features_ ? kFairnessRows : 0));
  }

  /// Encode a W-slot window (PG).  `window` holds the jobs actually present
  /// (size <= window_slots); missing slots are zero blocks.  `out` is
  /// resized to pg_input_size(window_slots).
  void encode_window(const sim::SchedulingContext& ctx,
                     std::span<const sim::Job* const> window,
                     std::size_t window_slots, std::vector<float>& out) const;

  /// Encode a single job plus the node rows (DQL).  `out` is resized to
  /// dql_input_size().
  void encode_job(const sim::SchedulingContext& ctx, const sim::Job& job,
                  std::vector<float>& out) const;

 private:
  void write_job_block(const sim::Job& job, sim::Time now,
                       float* out) const noexcept;
  void append_nodes(const sim::SchedulingContext& ctx, float* out) const;
  void append_failure_rows(const sim::SchedulingContext& ctx,
                           float* out) const noexcept;
  void append_fairness_rows(const sim::SchedulingContext& ctx,
                            std::span<const sim::Job* const> candidates,
                            float* out) const noexcept;

  int total_nodes_;
  double time_scale_;
  bool failure_features_;
  bool fairness_features_;
  mutable std::vector<sim::NodeRow> node_scratch_;
};

}  // namespace dras::core
