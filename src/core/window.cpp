#include "core/window.h"

#include <algorithm>

namespace dras::core {

std::span<sim::Job* const> front_window(const std::vector<sim::Job*>& queue,
                                        std::size_t window) noexcept {
  const std::size_t count = std::min(queue.size(), window);
  return std::span<sim::Job* const>(queue.data(), count);
}

std::span<sim::Job* const> truncate_window(
    const std::vector<sim::Job*>& candidates, std::size_t window) noexcept {
  const std::size_t count = std::min(candidates.size(), window);
  return std::span<sim::Job* const>(candidates.data(), count);
}

}  // namespace dras::core
