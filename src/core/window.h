// Scheduling-window helpers (paper §III-B).
//
// "At a given scheduling instance, the scheduler first enforces a window
//  at the front of the job wait queue.  The window alleviates job
//  starvation problems by providing higher priorities to older jobs."
#pragma once

#include <span>
#include <vector>

#include "sim/job.h"

namespace dras::core {

/// The first min(W, queue size) jobs of the arrival-ordered queue.
[[nodiscard]] std::span<sim::Job* const> front_window(
    const std::vector<sim::Job*>& queue, std::size_t window) noexcept;

/// Truncate an arbitrary candidate list (e.g. backfill candidates) to the
/// first W entries, preserving order.
[[nodiscard]] std::span<sim::Job* const> truncate_window(
    const std::vector<sim::Job*>& candidates, std::size_t window) noexcept;

}  // namespace dras::core
