#include "exec/async_writer.h"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dras::exec {

namespace {
struct WriterMetrics {
  obs::Counter& jobs;
  obs::Counter& failures;
  obs::HdrHistogram& job_us;

  static WriterMetrics& get() {
    static WriterMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return WriterMetrics{
          registry.counter("exec.async_writer.jobs"),
          registry.counter("exec.async_writer.failures"),
          registry.hdr("exec.async_writer.job_us"),
      };
    }();
    return metrics;
  }
};
}  // namespace

AsyncWriter::AsyncWriter() : thread_([this] { thread_loop(); }) {
  // Register the metrics now, on the constructing thread, so the
  // registry's contents do not depend on when the first job finishes
  // (checkpoints capture the registry — racy registration would leak
  // into their bytes).  With telemetry disabled nothing is registered
  // at all, keeping sync and async checkpoint runs byte-identical.
  if (obs::enabled()) (void)WriterMetrics::get();
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AsyncWriter::submit(std::string label, std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_)
      throw std::logic_error("AsyncWriter::submit after shutdown began");
    queue_.push_back(Job{std::move(label), std::move(job)});
  }
  cv_.notify_one();
}

void AsyncWriter::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

std::size_t AsyncWriter::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size() + (busy_ ? 1 : 0);
}

std::string AsyncWriter::last_error() const {
  std::lock_guard lock(mutex_);
  return last_error_;
}

void AsyncWriter::thread_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain-before-exit: stop only once the queue is empty, so every
      // submitted write reaches the disk even during shutdown.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    const bool timed = obs::enabled();
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    bool ok = true;
    std::string error;
    try {
      job.work();
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "unknown exception";
    }
    if (timed) {
      auto& metrics = WriterMetrics::get();
      metrics.job_us.observe(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
      metrics.jobs.add(1);
      if (!ok) metrics.failures.add(1);
    }
    if (ok) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      util::log_warn("async writer job '{}' failed: {}", job.label, error);
    }
    {
      std::lock_guard lock(mutex_);
      busy_ = false;
      if (!ok) last_error_ = error;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace dras::exec
