// A single background writer thread for durability work (fsync+rename)
// that must not block the producer.
//
// The checkpoint pipeline splits in two: serialization stays on the
// trainer thread (the encoded bytes are a pure function of the state at
// the episode boundary, so what lands on disk is byte-identical to a
// synchronous save), while the atomic write — temp file, fsync, rename,
// pointer update, prune — runs here.  Jobs execute strictly in
// submission order on one thread, so directory mutations never race
// each other; readers that must observe a quiesced directory (e.g.
// CheckpointManager::restore_latest) call wait_idle() first.
//
// A job that throws is counted and logged, never rethrown — a failed
// background write degrades durability by one snapshot, it does not
// kill training.  The destructor drains the queue before joining.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace dras::exec {

class AsyncWriter {
 public:
  AsyncWriter();
  ~AsyncWriter();  ///< Drains all pending jobs, then joins.

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Enqueue `job` (FIFO).  `label` names the job in failure logs.
  void submit(std::string label, std::function<void()> job);

  /// Block until every job submitted so far has finished.
  void wait_idle();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t failed() const noexcept {
    return failed_.load(std::memory_order_relaxed);
  }
  /// what() of the most recent failed job ("" when none failed).
  [[nodiscard]] std::string last_error() const;

 private:
  struct Job {
    std::string label;
    std::function<void()> work;
  };

  void thread_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;       ///< Wakes the writer.
  std::condition_variable idle_cv_;  ///< Wakes wait_idle() callers.
  std::deque<Job> queue_;
  bool stopping_ = false;
  bool busy_ = false;                ///< A job is executing right now.
  std::string last_error_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::thread thread_;
};

}  // namespace dras::exec
