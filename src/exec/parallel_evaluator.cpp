#include "exec/parallel_evaluator.h"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/format.h"

namespace dras::exec {

namespace {

/// Wall time of a single evaluation cell (one trace × one policy),
/// regardless of whether it ran serially or on the pool.
obs::HdrHistogram& eval_task_wall_s() {
  static obs::HdrHistogram& hdr =
      obs::Registry::global().hdr("eval.task_wall_s");
  return hdr;
}

}  // namespace

std::vector<train::Evaluation> ParallelEvaluator::evaluate_grid(
    int total_nodes, std::span<const sim::Trace* const> traces,
    std::span<sim::Scheduler* const> policies,
    const train::EvalOptions& options) {
  const std::size_t cells = traces.size() * policies.size();
  if (cells == 0) return {};

  // Caller's enclosing span; cell spans parent to it with the cell
  // index as the stable child ordinal, so span ids are independent of
  // the degree of parallelism.
  const obs::SpanContext parent = obs::Span::current();

  if (runner_.jobs() <= 1 || cells <= 1) {
    std::vector<train::Evaluation> results;
    results.reserve(cells);
    std::size_t cell = 0;
    for (const sim::Trace* trace : traces)
      for (sim::Scheduler* policy : policies) {
        obs::Span cell_span("eval.cell", parent, cell++);
        const auto start = std::chrono::steady_clock::now();
        results.push_back(
            train::evaluate(total_nodes, *trace, *policy, options));
        eval_task_wall_s().observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count());
      }
    return results;
  }

  return runner_.map(
      cells,
      [&](std::size_t cell) {
        const std::size_t t = cell / policies.size();
        const std::size_t p = cell % policies.size();
        obs::Span cell_span(
            "eval.cell", parent, cell,
            {obs::targ("trace", static_cast<std::uint64_t>(t)),
             obs::targ("policy", static_cast<std::uint64_t>(p))});
        const auto start = std::chrono::steady_clock::now();
        const sim::Scheduler& original = *policies[p];
        // Clone inside the task so the (potentially expensive) network
        // copy also parallelises across cells.
        std::unique_ptr<sim::Scheduler> copy = original.clone();
        if (copy == nullptr)
          throw std::invalid_argument(util::format(
              "policy '{}' is not cloneable; clone() is required for "
              "parallel evaluation (run with --jobs 1)",
              original.name()));
        train::Evaluation result =
            train::evaluate(total_nodes, *traces[t], *copy, options);
        eval_task_wall_s().observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count());
        return result;
      },
      "evaluate");
}

}  // namespace dras::exec
