#include "exec/parallel_evaluator.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "util/format.h"

namespace dras::exec {

std::vector<train::Evaluation> ParallelEvaluator::evaluate_grid(
    int total_nodes, std::span<const sim::Trace* const> traces,
    std::span<sim::Scheduler* const> policies,
    const train::EvalOptions& options) {
  const std::size_t cells = traces.size() * policies.size();
  if (cells == 0) return {};

  if (runner_.jobs() <= 1 || cells <= 1) {
    std::vector<train::Evaluation> results;
    results.reserve(cells);
    for (const sim::Trace* trace : traces)
      for (sim::Scheduler* policy : policies)
        results.push_back(
            train::evaluate(total_nodes, *trace, *policy, options));
    return results;
  }

  return runner_.map(
      cells,
      [&](std::size_t cell) {
        const std::size_t t = cell / policies.size();
        const std::size_t p = cell % policies.size();
        const sim::Scheduler& original = *policies[p];
        // Clone inside the task so the (potentially expensive) network
        // copy also parallelises across cells.
        std::unique_ptr<sim::Scheduler> copy = original.clone();
        if (copy == nullptr)
          throw std::invalid_argument(util::format(
              "policy '{}' is not cloneable; clone() is required for "
              "parallel evaluation (run with --jobs 1)",
              original.name()));
        return train::evaluate(total_nodes, *traces[t], *copy, options);
      },
      "evaluate");
}

}  // namespace dras::exec
