// ParallelEvaluator: evaluate a (traces × policies) grid concurrently.
//
// The paper's evaluation (Figs. 4–9, Tables 3–4) is a grid of independent
// simulator runs; this evaluator maps the grid's cells over a
// ParallelRunner.  Determinism contract:
//   * Cells are laid out row-major by trace: cell (t, p) lands at index
//     t * policies.size() + p, independent of worker count or finish
//     order.
//   * jobs <= 1 runs the literal serial nested loop over the caller's
//     policy instances — that output is the baseline any jobs > 1 run
//     must match byte-for-byte.
//   * jobs > 1 evaluates a private clone() of the policy inside each
//     task, so workers never share mutable policy state (RNG, staged
//     experience, online-adaptation updates).  Policies whose clone()
//     returns nullptr are rejected with std::invalid_argument.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "exec/parallel_runner.h"
#include "sim/simulator.h"
#include "train/evaluator.h"

namespace dras::exec {

class ParallelEvaluator {
 public:
  /// `jobs` = maximum concurrent evaluations; 0 = hardware concurrency.
  explicit ParallelEvaluator(std::size_t jobs = 0) : runner_(jobs) {}

  [[nodiscard]] std::size_t jobs() const noexcept { return runner_.jobs(); }

  /// Evaluate every (trace, policy) cell and return the results row-major
  /// by trace.  With jobs > 1 the caller's policies are not mutated (each
  /// cell evaluates a clone); with jobs <= 1 the originals run, exactly
  /// like a hand-written serial loop.
  [[nodiscard]] std::vector<train::Evaluation> evaluate_grid(
      int total_nodes, std::span<const sim::Trace* const> traces,
      std::span<sim::Scheduler* const> policies,
      const train::EvalOptions& options = {});

 private:
  ParallelRunner runner_;
};

}  // namespace dras::exec
