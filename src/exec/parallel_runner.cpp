#include "exec/parallel_runner.h"

#include "util/rng.h"

namespace dras::exec {

std::uint64_t task_seed(std::uint64_t master, std::string_view stream,
                        std::uint64_t task_index) noexcept {
  // Same construction as util::Rng::spawn: a named sub-stream of the
  // master seed, strided by the golden-ratio increment and finalized by
  // splitmix64 so neighbouring indices decorrelate.
  std::uint64_t state = util::derive_seed(master, stream) +
                        (task_index + 1) * 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(state);
}

}  // namespace dras::exec
