// ParallelRunner: deterministic map of an index range across a worker
// pool.
//
// The determinism contract (shared by everything built on src/exec):
//   * Results come back in submission (index) order, regardless of which
//     worker ran which task or in what order tasks finished.
//   * A task that needs randomness must seed it from a stable task id —
//     use exec::task_seed(master, stream, index) — never from worker
//     identity, thread ids, or completion order.
//   * With jobs <= 1 (or a single task) the runner executes the tasks
//     inline on the calling thread: the serial path is not merely
//     equivalent, it IS the plain loop, so `--jobs 1` output is the
//     byte-for-byte baseline that any `--jobs N` must reproduce.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "util/format.h"

namespace dras::exec {

/// Seed for task `task_index` of the stream named `stream`, derived from
/// `master`.  Stable across runs, worker counts, and execution order;
/// distinct indices give decorrelated streams (splitmix64 finalizer over
/// a golden-ratio stride, the same construction as util::Rng::spawn).
[[nodiscard]] std::uint64_t task_seed(std::uint64_t master,
                                      std::string_view stream,
                                      std::uint64_t task_index) noexcept;

/// Per-task result slot for ParallelRunner::try_map: exactly one of
/// `value` / `error` is set.  `message` carries the exception's what()
/// so callers can report without rethrowing; `error` allows rethrowing
/// the original exception when they want to.
template <typename R>
struct TaskOutcome {
  std::optional<R> value;
  std::exception_ptr error;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return !error; }
  /// Rethrow the task's exception (only valid when !ok()).
  [[noreturn]] void rethrow() const { std::rethrow_exception(error); }
};

class ParallelRunner {
 public:
  /// `jobs` = maximum concurrent tasks; 0 = hardware concurrency.
  explicit ParallelRunner(std::size_t jobs = 0)
      : jobs_(jobs == 0 ? default_concurrency() : jobs) {}

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

  /// Evaluate `fn(0) .. fn(count-1)` with up to jobs() in flight and
  /// return the results indexed by task.  `fn` must be safe to invoke
  /// concurrently from several threads for distinct indices.  If any task
  /// throws, the exception of the lowest-indexed failing task is
  /// rethrown (after all tasks finished).  `label` prefixes the per-task
  /// Chrome-trace event names.
  template <typename Fn>
  auto map(std::size_t count, Fn fn, std::string_view label = "task")
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> results;
    results.reserve(count);
    if (jobs_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) results.push_back(fn(i));
      return results;
    }
    std::vector<std::optional<R>> slots(count);
    {
      ThreadPool pool({std::min(jobs_, count), 0});
      std::vector<std::future<void>> futures;
      futures.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        futures.push_back(
            pool.submit([&slots, &fn, i] { slots[i].emplace(fn(i)); },
                        util::format("{} {}", label, i)));
      }
      // Collect in submission order so the first failure *by index* is
      // the one reported, matching what the serial loop would throw.
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

  /// Like map(), but a throwing task is *contained*: its exception lands
  /// in that task's TaskOutcome slot instead of propagating, so one
  /// poisoned task cannot take down the batch — every other task still
  /// runs to completion and returns its result.  The serial (jobs <= 1)
  /// path applies the same containment, and every failure is counted in
  /// `exec.tasks.failed` either way.
  template <typename Fn>
  auto try_map(std::size_t count, Fn fn, std::string_view label = "task")
      -> std::vector<TaskOutcome<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<TaskOutcome<R>> outcomes(count);
    const auto run_one = [&fn, &outcomes](std::size_t i) {
      try {
        outcomes[i].value.emplace(fn(i));
      } catch (...) {
        outcomes[i].error = std::current_exception();
        try {
          std::rethrow_exception(outcomes[i].error);
        } catch (const std::exception& e) {
          outcomes[i].message = e.what();
        } catch (...) {
          outcomes[i].message = "unknown exception";
        }
        detail::note_task_failed();
      }
    };
    if (jobs_ <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) run_one(i);
      return outcomes;
    }
    ThreadPool pool({std::min(jobs_, count), 0});
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      futures.push_back(pool.submit([&run_one, i] { run_one(i); },
                                    util::format("{} {}", label, i)));
    }
    for (auto& future : futures) future.get();
    return outcomes;
  }

 private:
  std::size_t jobs_;
};

}  // namespace dras::exec
