#include "exec/thread_pool.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dras::exec {
namespace {

// Stable handles into the global registry, resolved once.  Safe because
// tests exercise registries through local instances and never clear the
// global one (same pattern as TrainMetrics in trainer.cpp).
struct ExecMetrics {
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_completed;
  obs::Counter& tasks_failed;
  obs::Gauge& queue_depth;
  obs::Gauge& workers;
  obs::Gauge& worker_utilization;
  // Log-bucketed percentile histograms (p50/p90/p99/p999 in snapshots);
  // mergeable across shards and serialized with run telemetry.
  obs::HdrHistogram& task_wait_us;
  obs::HdrHistogram& task_run_us;
  /// Queue depth sampled at every enqueue/dequeue edge — the depth
  /// *distribution*, complementing the instantaneous gauge above.
  obs::HdrHistogram& pool_queue_depth;

  static ExecMetrics& get() {
    static ExecMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return ExecMetrics{
          registry.counter("exec.tasks.submitted"),
          registry.counter("exec.tasks.completed"),
          registry.counter("exec.tasks.failed"),
          registry.gauge("exec.queue_depth"),
          registry.gauge("exec.workers"),
          registry.gauge("exec.worker_utilization"),
          registry.hdr("exec.task_wait_us"),
          registry.hdr("exec.task_run_us"),
          registry.hdr("exec.pool.queue_depth"),
      };
    }();
    return metrics;
  }
};

double micros(std::chrono::steady_clock::duration d) noexcept {
  return std::chrono::duration<double, std::micro>(d).count();
}

}  // namespace

namespace detail {
void note_task_failed() noexcept { ExecMetrics::get().tasks_failed.add(); }
}  // namespace detail

std::size_t default_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(Options options) : options_(options) {
  if (options_.workers == 0) options_.workers = default_concurrency();
  if (options_.queue_capacity == 0)
    options_.queue_capacity = 4 * options_.workers;
  started_ = std::chrono::steady_clock::now();
  ExecMetrics::get().workers.set(static_cast<double>(options_.workers));
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
  // Utilisation over the pool's lifetime: busy worker-time / available
  // worker-time.  Meaningful only once the pool winds down, so set here.
  if (obs::enabled() && !threads_.empty()) {
    const double wall = micros(std::chrono::steady_clock::now() - started_);
    const double available = wall * static_cast<double>(threads_.size());
    if (available > 0.0) {
      const double busy =
          static_cast<double>(busy_us_.load(std::memory_order_relaxed));
      ExecMetrics::get().worker_utilization.set(busy / available);
    }
  }
  ExecMetrics::get().queue_depth.set(0.0);
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(Task task) {
  auto& metrics = ExecMetrics::get();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_ready_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_)
      throw std::runtime_error("ThreadPool::submit after shutdown began");
    task.enqueued = std::chrono::steady_clock::now();
    queue_.push_back(std::move(task));
    metrics.queue_depth.set(static_cast<double>(queue_.size()));
    metrics.pool_queue_depth.observe(static_cast<double>(queue_.size()));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metrics.tasks_submitted.add();
  task_ready_.notify_one();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  auto& metrics = ExecMetrics::get();
  // One swim-lane per worker on the exec pid: spans opened inside tasks
  // (e.g. rollout slot spans) inherit this lane automatically.
  obs::set_thread_trace_lane(
      {obs::kExecPid, static_cast<int>(worker_index) + 1});
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth.set(static_cast<double>(queue_.size()));
      metrics.pool_queue_depth.observe(static_cast<double>(queue_.size()));
    }
    space_ready_.notify_one();

    obs::EventTracer* tracer = obs::default_tracer();
    const bool timed = obs::enabled() || tracer != nullptr;
    const auto run_start =
        timed ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{};
    if (timed) metrics.task_wait_us.observe(micros(run_start - task.enqueued));

    task.run();

    if (timed) {
      const auto run_end = std::chrono::steady_clock::now();
      const double run_us = micros(run_end - run_start);
      metrics.task_run_us.observe(run_us);
      busy_us_.fetch_add(static_cast<std::uint64_t>(run_us),
                         std::memory_order_relaxed);
      if (tracer != nullptr) {
        // One swim-lane per worker on the exec pid; timestamps are this
        // tracer's wall clock.
        const double dur = run_us * 1e-6;
        tracer->complete(
            task.label, tracer->wall_seconds() - dur, dur,
            {obs::targ("worker", static_cast<std::uint64_t>(worker_index))},
            obs::kExecPid, static_cast<int>(worker_index) + 1);
      }
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.tasks_completed.add();
  }
}

}  // namespace dras::exec
