// Fixed-size worker thread pool with a bounded task queue and futures —
// the substrate of the parallel execution subsystem (src/exec).
//
// Design goals, in order:
//   1. Determinism stays with the caller.  The pool never leaks worker
//      identity or execution order into task results: tasks receive no
//      worker index, and anything stochastic inside a task must derive
//      its randomness from a stable task id (see exec::task_seed), so a
//      parallel run is bit-identical to the serial one.
//   2. Bounded memory.  submit() blocks while `queue_capacity` tasks are
//      already waiting, giving natural backpressure when producers out-run
//      the workers (large benchmark sweeps submit thousands of cells).
//   3. Dependency-free.  Plain <thread>/<mutex>/<future>; no third-party
//      runtime.
//
// Telemetry: every pool feeds the exec.* instruments of the global
// obs::Registry (tasks submitted/completed/failed, queue-depth gauge,
// task wait/run latency histograms, worker utilisation) and, when a
// tracer is installed, emits one Chrome-trace 'X' event per task on the
// obs::kExecPid lane with tid = worker index — so a sweep renders as one
// swim-lane per worker in chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

namespace dras::exec {

/// std::thread::hardware_concurrency with a floor of 1 (the standard
/// allows it to return 0 when undetectable).
[[nodiscard]] std::size_t default_concurrency() noexcept;

namespace detail {
/// Telemetry hook for task bodies that ended in an exception (defined in
/// thread_pool.cpp next to the other exec.* instruments).
void note_task_failed() noexcept;
}  // namespace detail

class ThreadPool {
 public:
  struct Options {
    std::size_t workers = 0;         ///< 0 = default_concurrency().
    std::size_t queue_capacity = 0;  ///< 0 = 4 × workers.
  };

  ThreadPool() : ThreadPool(Options{}) {}
  explicit ThreadPool(Options options);
  explicit ThreadPool(std::size_t workers)
      : ThreadPool(Options{workers, 0}) {}
  /// Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `fn` and return a future for its result.  Blocks while the
  /// queue is at capacity; throws std::runtime_error once shutdown has
  /// begun.  `fn` must be copy-constructible (std::function limitation)
  /// and an exception it throws is delivered through the future.  `label`
  /// names the task's Chrome-trace event.
  template <typename Fn>
  auto submit(Fn fn, std::string label = "task")
      -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto promise = std::make_shared<std::promise<R>>();
    std::future<R> future = promise->get_future();
    enqueue(Task{[promise, fn = std::move(fn)]() mutable {
                   try {
                     if constexpr (std::is_void_v<R>) {
                       fn();
                       promise->set_value();
                     } else {
                       promise->set_value(fn());
                     }
                   } catch (...) {
                     detail::note_task_failed();
                     promise->set_exception(std::current_exception());
                   }
                 },
                 std::move(label),
                 {}});
    return future;
  }

  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return options_.queue_capacity;
  }
  /// Tasks currently waiting (excludes tasks being executed).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::uint64_t tasks_submitted() const noexcept {
    return submitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> run;
    std::string label;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void enqueue(Task task);
  void worker_loop(std::size_t worker_index);

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable space_ready_;
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> busy_us_{0};
  std::chrono::steady_clock::time_point started_;
};

}  // namespace dras::exec
