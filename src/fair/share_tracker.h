// Decayed per-user resource-share accounting (DESIGN.md §12).
//
// Production fair-share schedulers rank users by how much machine they
// have recently consumed, with an exponential half-life so old usage
// stops counting against a user.  ShareTracker is that ledger: the
// simulator charges it size × effective-runtime node-seconds whenever a
// job starts, and schedulers / the fairness reward read back each user's
// decayed share as a fraction of the decayed total.
//
// The tracker is deterministic and RNG-free — shares are a pure function
// of the charge sequence — and it is reset with the simulator at the
// start of every run, so episodes stay atomic under crash-resume and
// worker-count changes.
#pragma once

#include <cmath>
#include <map>
#include <vector>

#include "sim/job.h"

namespace dras::fair {

/// Default half-life: two simulated days — long enough that one busy day
/// counts, short enough that last week's burst does not.
inline constexpr double kDefaultShareHalfLife = 2.0 * 86400.0;

class ShareTracker {
 public:
  explicit ShareTracker(double half_life_seconds = kDefaultShareHalfLife)
      : half_life_(half_life_seconds) {}

  /// Forget everything (start of a new simulation run).
  void reset() {
    shares_.clear();
    total_ = 0.0;
    last_decay_ = 0.0;
  }

  /// Charge `node_seconds` of consumption to `user` at sim time `now`.
  /// Unknown users (sim::kUnknownUser) are pooled under the sentinel key
  /// so they still count against the total.
  void charge(int user, double node_seconds, double now) {
    decay_to(now);
    shares_[user] += node_seconds;
    total_ += node_seconds;
  }

  /// Decayed node-seconds attributed to `user` as of `now`.
  [[nodiscard]] double share(int user, double now) const {
    const auto it = shares_.find(user);
    if (it == shares_.end()) return 0.0;
    return it->second * decay_factor(now);
  }

  /// `user`'s fraction of all decayed consumption in [0, 1]; 0 when
  /// nothing has been charged yet.
  [[nodiscard]] double fraction(int user, double now) const {
    if (total_ <= 0.0) return 0.0;
    const auto it = shares_.find(user);
    if (it == shares_.end()) return 0.0;
    // Decay factors cancel in the ratio, so no clock math is needed —
    // and the ratio is exact even when both values have decayed to
    // denormal territory.
    (void)now;
    return it->second / total_;
  }

  /// Number of users (including the unknown pool) ever charged this run.
  [[nodiscard]] std::size_t users() const noexcept { return shares_.size(); }

  [[nodiscard]] double half_life() const noexcept { return half_life_; }

  /// Decayed per-user shares as of `now`, ascending user id.
  [[nodiscard]] std::vector<std::pair<int, double>> snapshot(
      double now) const {
    std::vector<std::pair<int, double>> result;
    result.reserve(shares_.size());
    const double f = decay_factor(now);
    for (const auto& [user, value] : shares_)
      result.emplace_back(user, value * f);
    return result;
  }

 private:
  /// Multiplier that ages the stored (as-of last_decay_) values to `now`.
  [[nodiscard]] double decay_factor(double now) const {
    if (half_life_ <= 0.0 || now <= last_decay_) return 1.0;
    return std::exp2(-(now - last_decay_) / half_life_);
  }

  /// Rebase the stored values to `now` (called before every charge so
  /// all entries share one reference time).
  void decay_to(double now) {
    const double f = decay_factor(now);
    if (f != 1.0) {
      for (auto& [user, value] : shares_) value *= f;
      total_ *= f;
    }
    if (now > last_decay_) last_decay_ = now;
  }

  double half_life_;
  std::map<int, double> shares_;  ///< user → node-seconds as of last_decay_.
  double total_ = 0.0;
  double last_decay_ = 0.0;
};

}  // namespace dras::fair
