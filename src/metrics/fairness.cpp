#include "metrics/fairness.h"

#include <algorithm>
#include <map>

namespace dras::metrics {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

std::vector<UserStat> by_user(std::span<const sim::JobRecord> records) {
  std::map<int, UserStat> users;
  for (const sim::JobRecord& rec : records) {
    UserStat& stat = users[rec.user_id];
    stat.user_id = rec.user_id;
    ++stat.jobs;
    stat.avg_wait += rec.wait();
    stat.max_wait = std::max(stat.max_wait, rec.wait());
    stat.avg_slowdown += rec.slowdown();
    stat.node_seconds += rec.node_seconds();
  }
  std::vector<UserStat> result;
  result.reserve(users.size());
  for (auto& entry : users) {
    UserStat& stat = entry.second;
    stat.avg_wait /= static_cast<double>(stat.jobs);
    stat.avg_slowdown /= static_cast<double>(stat.jobs);
    result.push_back(std::move(stat));
  }
  return result;
}

FairnessSummary fairness_summary(std::span<const sim::JobRecord> records) {
  FairnessSummary summary;
  summary.per_user = by_user(records);
  summary.users = summary.per_user.size();
  std::vector<double> service, inverse_slowdown;
  service.reserve(summary.users);
  inverse_slowdown.reserve(summary.users);
  for (const UserStat& stat : summary.per_user) {
    service.push_back(stat.node_seconds);
    inverse_slowdown.push_back(
        stat.avg_slowdown > 0.0 ? 1.0 / stat.avg_slowdown : 0.0);
    summary.max_user_slowdown =
        std::max(summary.max_user_slowdown, stat.avg_slowdown);
  }
  summary.jain_service = jain_index(service);
  summary.jain_slowdown = jain_index(inverse_slowdown);
  return summary;
}

}  // namespace dras::metrics
