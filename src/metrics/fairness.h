// Multi-tenant fairness metrics (DESIGN.md §12).
//
// Per-user aggregation of the §IV-E metrics plus Jain's fairness index,
// the standard scalar for "how evenly was the resource shared":
//
//   J(x) = (Σ x_i)² / (n · Σ x_i²),  J ∈ [1/n, 1]
//
// J = 1 when all users fare identically; J = 1/n when one user
// monopolises.  We report two flavours per run: service fairness (x =
// per-user delivered node-seconds) and experience fairness (x = 1 /
// per-user mean slowdown, so equal *treatment* — not equal demand —
// scores 1 even when users submit very different volumes).
#pragma once

#include <span>
#include <vector>

#include "sim/metrics_collector.h"

namespace dras::metrics {

/// Jain's fairness index of a non-negative sample; 0 when the sample is
/// empty or sums to zero.
[[nodiscard]] double jain_index(std::span<const double> values);

/// Per-user §IV-E aggregation over one run's completed jobs.
struct UserStat {
  int user_id = sim::kUnknownUser;
  std::size_t jobs = 0;
  double avg_wait = 0.0;
  double max_wait = 0.0;
  double avg_slowdown = 0.0;
  double node_seconds = 0.0;  ///< Delivered service.
};

/// Group records by user id, ascending (the unknown sentinel, if
/// present, sorts first).
[[nodiscard]] std::vector<UserStat> by_user(
    std::span<const sim::JobRecord> records);

/// Scalar fairness summary of one run.
struct FairnessSummary {
  std::size_t users = 0;           ///< Distinct users with completed jobs.
  double jain_service = 0.0;       ///< Jain over delivered node-seconds.
  double jain_slowdown = 0.0;      ///< Jain over 1 / mean user slowdown.
  double max_user_slowdown = 0.0;  ///< Worst per-user mean slowdown.
  std::vector<UserStat> per_user;  ///< The underlying table.
};

[[nodiscard]] FairnessSummary fairness_summary(
    std::span<const sim::JobRecord> records);

}  // namespace dras::metrics
