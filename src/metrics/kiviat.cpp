#include "metrics/kiviat.h"

#include <algorithm>
#include <stdexcept>

namespace dras::metrics {

namespace {
/// Min-max normalise in place; constant columns map to 1 (all tied-best).
void min_max(std::vector<double>& column) {
  const auto [lo_it, hi_it] =
      std::minmax_element(column.begin(), column.end());
  const double lo = *lo_it, hi = *hi_it;
  for (double& v : column) v = hi > lo ? (v - lo) / (hi - lo) : 1.0;
}

/// Reciprocal with a floor so a zero metric (ideal) maps to a large value.
double reciprocal(double v) { return 1.0 / std::max(v, 1e-9); }
}  // namespace

std::vector<KiviatAxes> kiviat_axes(std::span<const std::string> names,
                                    std::span<const Summary> summaries) {
  if (names.size() != summaries.size())
    throw std::invalid_argument("names/summaries length mismatch");
  const std::size_t n = summaries.size();

  std::vector<double> inv_avg_wait(n), inv_max_wait(n), inv_slowdown(n),
      inv_response(n), utilization(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_avg_wait[i] = reciprocal(summaries[i].avg_wait);
    inv_max_wait[i] = reciprocal(summaries[i].max_wait);
    inv_slowdown[i] = reciprocal(summaries[i].avg_slowdown);
    inv_response[i] = reciprocal(summaries[i].avg_response);
    utilization[i] = summaries[i].utilization;
  }
  min_max(inv_avg_wait);
  min_max(inv_max_wait);
  min_max(inv_slowdown);
  min_max(inv_response);
  min_max(utilization);

  std::vector<KiviatAxes> axes(n);
  for (std::size_t i = 0; i < n; ++i) {
    axes[i].method = names[i];
    axes[i].inv_avg_wait = inv_avg_wait[i];
    axes[i].inv_max_wait = inv_max_wait[i];
    axes[i].inv_avg_slowdown = inv_slowdown[i];
    axes[i].inv_avg_response = inv_response[i];
    axes[i].utilization = utilization[i];
  }
  return axes;
}

}  // namespace dras::metrics
