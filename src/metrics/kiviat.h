// Kiviat (radar) normalisation for Fig. 6.
//
// "We use the reciprocal of average job wait time, the reciprocal of
//  maximum job wait time, the reciprocal of average slowdown, and the
//  reciprocal of average job response time in the plots.  All metrics are
//  normalized to the range of 0 to 1.  1 means a method achieves the best
//  performance among all methods and 0 means a method obtains the worst."
#pragma once

#include <span>
#include <string>
#include <vector>

#include "metrics/stats.h"

namespace dras::metrics {

struct KiviatAxes {
  std::string method;
  double inv_avg_wait = 0.0;      ///< normalised 1/avg-wait
  double inv_max_wait = 0.0;      ///< normalised 1/max-wait
  double inv_avg_slowdown = 0.0;  ///< normalised 1/avg-slowdown
  double inv_avg_response = 0.0;  ///< normalised 1/avg-response
  double utilization = 0.0;       ///< normalised utilisation

  /// Area proxy: the mean of the five axes ("the larger the area is, the
  /// better the overall performance").
  [[nodiscard]] double mean_score() const noexcept {
    return (inv_avg_wait + inv_max_wait + inv_avg_slowdown +
            inv_avg_response + utilization) /
           5.0;
  }
};

/// Compute min-max-normalised Kiviat axes across methods.  `names` and
/// `summaries` must be the same length.
[[nodiscard]] std::vector<KiviatAxes> kiviat_axes(
    std::span<const std::string> names, std::span<const Summary> summaries);

}  // namespace dras::metrics
