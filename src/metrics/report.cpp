#include "metrics/report.h"

#include <algorithm>
#include "util/format.h"
#include <ostream>
#include <stdexcept>

namespace dras::metrics {

void print_table(std::ostream& out, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c)
    widths[c] = headers[c].size();
  for (const auto& row : rows) {
    if (row.size() != headers.size())
      throw std::invalid_argument("table row width mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    out << '\n';
  };
  const auto print_rule = [&] {
    out << "+";
    for (const std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  print_rule();
  print_row(headers);
  print_rule();
  for (const auto& row : rows) print_row(row);
  print_rule();
}

std::string format_duration(double seconds) {
  if (seconds < 60.0) return util::format("{:.1f}s", seconds);
  if (seconds < 3600.0) return util::format("{:.1f}m", seconds / 60.0);
  if (seconds < 86400.0) return util::format("{:.1f}h", seconds / 3600.0);
  return util::format("{:.1f}d", seconds / 86400.0);
}

std::string format_percent(double fraction) {
  return util::format("{:.2f}%", fraction * 100.0);
}

}  // namespace dras::metrics
