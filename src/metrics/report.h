// Plain-text table rendering for the bench harnesses: every figure/table
// binary prints a human-readable table plus machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dras::metrics {

/// Render an aligned ASCII table.  All rows must have `headers.size()`
/// cells.
void print_table(std::ostream& out, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

/// Format seconds as a compact human-readable duration ("2.3h", "4.1d").
[[nodiscard]] std::string format_duration(double seconds);

/// Format a fraction as a percentage with two decimals ("34.17%").
[[nodiscard]] std::string format_percent(double fraction);

}  // namespace dras::metrics
