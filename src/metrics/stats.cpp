#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include "util/format.h"
#include <limits>

namespace dras::metrics {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(const sim::SimulationResult& result) {
  Summary s;
  s.jobs = result.jobs.size();
  s.utilization = result.utilization;
  if (result.jobs.empty()) return s;

  std::vector<double> waits;
  waits.reserve(result.jobs.size());
  double wait_sum = 0.0, response_sum = 0.0, slowdown_sum = 0.0;
  for (const sim::JobRecord& rec : result.jobs) {
    const double wait = rec.wait();
    waits.push_back(wait);
    wait_sum += wait;
    response_sum += rec.response();
    const double slowdown = rec.slowdown();
    slowdown_sum += slowdown;
    s.max_wait = std::max(s.max_wait, wait);
    s.max_slowdown = std::max(s.max_slowdown, slowdown);
  }
  const auto n = static_cast<double>(result.jobs.size());
  s.avg_wait = wait_sum / n;
  s.avg_response = response_sum / n;
  s.avg_slowdown = slowdown_sum / n;
  s.p50_wait = percentile(waits, 50.0);
  s.p90_wait = percentile(waits, 90.0);
  s.p99_wait = percentile(waits, 99.0);
  return s;
}

namespace {
struct Accumulator {
  std::size_t jobs = 0;
  double wait_sum = 0.0;
  double max_wait = 0.0;
  double core_hours = 0.0;

  void add(const sim::JobRecord& rec) {
    ++jobs;
    wait_sum += rec.wait();
    max_wait = std::max(max_wait, rec.wait());
    core_hours += rec.node_seconds() / 3600.0;
  }
  [[nodiscard]] GroupStat finish(std::string label) const {
    GroupStat g;
    g.label = std::move(label);
    g.jobs = jobs;
    g.avg_wait = jobs > 0 ? wait_sum / static_cast<double>(jobs) : 0.0;
    g.max_wait = max_wait;
    g.core_hours = core_hours;
    return g;
  }
};
}  // namespace

std::vector<GroupStat> by_size_bucket(std::span<const sim::JobRecord> records,
                                      std::span<const int> boundaries) {
  struct Bucket {
    int lo, hi;
    Accumulator acc;
  };
  std::vector<Bucket> buckets;
  int lo = 1;
  for (const int edge : boundaries) {
    buckets.push_back(Bucket{lo, edge, {}});
    lo = edge + 1;
  }
  buckets.push_back(Bucket{lo, std::numeric_limits<int>::max(), {}});

  for (const sim::JobRecord& rec : records) {
    for (Bucket& b : buckets) {
      if (rec.size >= b.lo && rec.size <= b.hi) {
        b.acc.add(rec);
        break;
      }
    }
  }

  std::vector<GroupStat> stats;
  for (const Bucket& b : buckets) {
    std::string label =
        b.hi == std::numeric_limits<int>::max()
            ? util::format(">{}", b.lo - 1)
            : (b.lo == b.hi ? util::format("{}", b.lo)
                            : util::format("{}-{}", b.lo, b.hi));
    stats.push_back(b.acc.finish(std::move(label)));
  }
  return stats;
}

std::vector<GroupStat> by_mode(std::span<const sim::JobRecord> records) {
  constexpr sim::ExecMode kModes[] = {
      sim::ExecMode::Backfilled, sim::ExecMode::Ready, sim::ExecMode::Reserved};
  std::vector<GroupStat> stats;
  for (const sim::ExecMode mode : kModes) {
    Accumulator acc;
    for (const sim::JobRecord& rec : records)
      if (rec.mode == mode) acc.add(rec);
    stats.push_back(acc.finish(std::string(sim::to_string(mode))));
  }
  return stats;
}

std::vector<ModeShare> mode_shares(std::span<const sim::JobRecord> records) {
  constexpr sim::ExecMode kModes[] = {
      sim::ExecMode::Backfilled, sim::ExecMode::Ready, sim::ExecMode::Reserved};
  double total_core_hours = 0.0;
  for (const sim::JobRecord& rec : records)
    total_core_hours += rec.node_seconds() / 3600.0;

  std::vector<ModeShare> shares;
  for (const sim::ExecMode mode : kModes) {
    ModeShare share;
    share.mode = mode;
    std::size_t jobs = 0;
    double core_hours = 0.0;
    for (const sim::JobRecord& rec : records) {
      if (rec.mode != mode) continue;
      ++jobs;
      core_hours += rec.node_seconds() / 3600.0;
    }
    if (!records.empty())
      share.job_fraction =
          static_cast<double>(jobs) / static_cast<double>(records.size());
    if (total_core_hours > 0.0)
      share.core_hour_fraction = core_hours / total_core_hours;
    shares.push_back(share);
  }
  return shares;
}

std::vector<WeekPoint> weekly_series(std::span<const sim::JobRecord> records,
                                     double week_seconds) {
  if (records.empty()) return {};
  double origin = records.front().submit;
  for (const sim::JobRecord& rec : records)
    origin = std::min(origin, rec.submit);

  std::vector<WeekPoint> weeks;
  std::vector<double> wait_sums;
  for (const sim::JobRecord& rec : records) {
    const auto w =
        static_cast<std::size_t>((rec.submit - origin) / week_seconds);
    if (w >= weeks.size()) {
      weeks.resize(w + 1);
      wait_sums.resize(w + 1, 0.0);
      for (std::size_t i = 0; i <= w; ++i) weeks[i].week = i;
    }
    ++weeks[w].jobs;
    weeks[w].core_hours += rec.node_seconds() / 3600.0;
    wait_sums[w] += rec.wait();
  }
  for (std::size_t i = 0; i < weeks.size(); ++i)
    if (weeks[i].jobs > 0)
      weeks[i].avg_wait = wait_sums[i] / static_cast<double>(weeks[i].jobs);
  return weeks;
}

}  // namespace dras::metrics
