// Evaluation metrics (paper §IV-E) and the aggregations behind the
// figures: per-size-bucket wait distributions (Fig. 7), per-execution-mode
// shares (Table IV) and waits (Fig. 8), and weekly time series (Fig. 9).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/metrics_collector.h"
#include "sim/simulator.h"

namespace dras::metrics {

/// Scalar summary of a run: the §IV-E metrics.
struct Summary {
  std::size_t jobs = 0;
  double avg_wait = 0.0;
  double max_wait = 0.0;
  double p50_wait = 0.0;
  double p90_wait = 0.0;
  double p99_wait = 0.0;
  double avg_response = 0.0;
  double avg_slowdown = 0.0;
  double max_slowdown = 0.0;
  double utilization = 0.0;
};

[[nodiscard]] Summary summarize(const sim::SimulationResult& result);

/// Interpolated percentile of an unsorted sample (p in [0, 100]).
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Per-group wait statistics (Figs. 7 and 8 use these with different keys).
struct GroupStat {
  std::string label;
  std::size_t jobs = 0;
  double avg_wait = 0.0;
  double max_wait = 0.0;
  double core_hours = 0.0;
};

/// Group records by job-size bucket; `boundaries` are inclusive upper
/// edges, ascending; a final open bucket catches larger jobs.
[[nodiscard]] std::vector<GroupStat> by_size_bucket(
    std::span<const sim::JobRecord> records, std::span<const int> boundaries);

/// Group records by execution mode (ready / reserved / backfilled).
[[nodiscard]] std::vector<GroupStat> by_mode(
    std::span<const sim::JobRecord> records);

/// Table IV rows: job-count and core-hour shares per execution mode.
struct ModeShare {
  sim::ExecMode mode = sim::ExecMode::Ready;
  double job_fraction = 0.0;
  double core_hour_fraction = 0.0;
};
[[nodiscard]] std::vector<ModeShare> mode_shares(
    std::span<const sim::JobRecord> records);

/// Weekly time series for Fig. 9: submitted demand and average wait per
/// submit-time week.
struct WeekPoint {
  std::size_t week = 0;
  std::size_t jobs = 0;
  double core_hours = 0.0;  ///< node-hours submitted that week.
  double avg_wait = 0.0;    ///< average wait of jobs submitted that week.
};
[[nodiscard]] std::vector<WeekPoint> weekly_series(
    std::span<const sim::JobRecord> records,
    double week_seconds = 7.0 * 86400.0);

}  // namespace dras::metrics
