#include "nn/adam.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/ops.h"
#include "util/binio.h"
#include "util/format.h"

namespace dras::nn {

Adam::Adam(std::size_t parameter_count, AdamConfig config)
    : config_(config),
      m_(parameter_count, 0.0f),
      v_(parameter_count, 0.0f) {}

void Adam::step(std::span<float> parameters, std::span<float> gradient) {
  assert(parameters.size() == m_.size());
  assert(gradient.size() == m_.size());

  if (config_.scrub_non_finite) scrubbed_ += nn::scrub_non_finite(gradient);

  if (config_.max_grad_norm > 0.0) {
    double norm_sq = 0.0;
    for (const float g : gradient)
      norm_sq += static_cast<double>(g) * static_cast<double>(g);
    const double norm = std::sqrt(norm_sq);
    if (norm > config_.max_grad_norm) {
      const auto scale = static_cast<float>(config_.max_grad_norm / norm);
      for (float& g : gradient) g *= scale;
    }
  }

  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);

  for (std::size_t i = 0; i < parameters.size(); ++i) {
    const float g = gradient[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    parameters[i] -= static_cast<float>(
        config_.learning_rate * lr_scale_ * m_hat /
        (std::sqrt(v_hat) + config_.epsilon));
  }
}

void Adam::set_lr_scale(double scale) {
  if (!(scale > 0.0) || !std::isfinite(scale))
    throw std::invalid_argument(util::format(
        "Adam lr_scale must be finite and positive, got {}", scale));
  lr_scale_ = scale;
}

void Adam::restore(std::span<const float> m, std::span<const float> v,
                   std::size_t steps) {
  if (m.size() != m_.size() || v.size() != v_.size())
    throw std::invalid_argument("Adam moment size mismatch on restore");
  std::copy(m.begin(), m.end(), m_.begin());
  std::copy(v.begin(), v.end(), v_.begin());
  t_ = steps;
}

void Adam::reset() {
  std::fill(m_.begin(), m_.end(), 0.0f);
  std::fill(v_.begin(), v_.end(), 0.0f);
  t_ = 0;
}

void Adam::save_state(util::BinaryWriter& out) const {
  out.section("ADAM", 1);
  out.u64(t_);
  out.f32_span(m_);
  out.f32_span(v_);
}

void Adam::load_state(util::BinaryReader& in) {
  in.section("ADAM", 1);
  const auto steps = in.u64();
  const auto m = in.f32_vector();
  const auto v = in.f32_vector();
  if (m.size() != m_.size() || v.size() != v_.size())
    throw util::SerializationError(util::format(
        "Adam moment length mismatch: checkpoint has {}, expected {}",
        m.size(), m_.size()));
  std::copy(m.begin(), m.end(), m_.begin());
  std::copy(v.begin(), v.end(), v_.begin());
  t_ = steps;
}

}  // namespace dras::nn
