// Adam optimiser (Kingma & Ba, ICLR'15) over a flat parameter vector.
// The paper trains both DRAS agents with Adam at learning rate 1e-3
// (§III-B, §IV-D).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  /// Optional global gradient-norm clip; <= 0 disables clipping.
  double max_grad_norm = 10.0;
  /// Zero non-finite gradient entries before the update (last-resort
  /// containment; the health monitor still reports them).  Off by
  /// default: a silent NaN→0 would mask bugs the guardrails should see.
  bool scrub_non_finite = false;
};

class Adam {
 public:
  Adam(std::size_t parameter_count, AdamConfig config = {});

  /// One update: params -= lr·lr_scale · m̂ / (sqrt(v̂) + eps).
  /// `gradient` is the accumulated gradient of the loss to *minimise*;
  /// callers performing gradient ascent negate before calling.
  void step(std::span<float> parameters, std::span<float> gradient);

  [[nodiscard]] const AdamConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t steps_taken() const noexcept { return t_; }

  /// Learning-rate backoff multiplier applied on top of
  /// config().learning_rate.  The default 1.0 leaves the update
  /// bit-identical to an unscaled one (IEEE: x·1.0 == x); the recovery
  /// policy halves it per divergence rollback.  Not serialized in the
  /// "ADAM" section — it lives in ckpt::RecoveryState and is re-applied
  /// after restore.
  void set_lr_scale(double scale);
  [[nodiscard]] double lr_scale() const noexcept { return lr_scale_; }

  /// Non-finite gradient entries zeroed by scrub_non_finite across all
  /// step() calls so far (always 0 with scrubbing off).
  [[nodiscard]] std::size_t scrubbed_gradients() const noexcept {
    return scrubbed_;
  }

  // Moment access for serialisation.
  [[nodiscard]] std::span<const float> first_moment() const noexcept {
    return m_;
  }
  [[nodiscard]] std::span<const float> second_moment() const noexcept {
    return v_;
  }
  void restore(std::span<const float> m, std::span<const float> v,
               std::size_t steps);

  void reset();

  /// Checkpoint hooks ("ADAM" section): step counter + both moment
  /// vectors.  load_state() throws util::SerializationError when the
  /// stored moment length differs from this instance's.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  AdamConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
  double lr_scale_ = 1.0;
  std::size_t scrubbed_ = 0;
};

}  // namespace dras::nn
