#include "nn/grad_accumulator.h"

#include <cmath>
#include <stdexcept>

#include "util/format.h"

namespace dras::nn {

void GradientAccumulator::add(std::span<const float> gradient, double loss) {
  if (gradient.size() != sums_.size())
    throw std::invalid_argument(util::format(
        "GradientAccumulator::add: gradient has {} entries, accumulator "
        "holds {}",
        gradient.size(), sums_.size()));
  for (std::size_t i = 0; i < sums_.size(); ++i)
    sums_[i] += static_cast<double>(gradient[i]);
  loss_sum_ += loss;
  ++updates_;
}

void GradientAccumulator::merge(const GradientAccumulator& other) {
  if (other.sums_.size() != sums_.size())
    throw std::invalid_argument(util::format(
        "GradientAccumulator::merge: other holds {} entries, this holds "
        "{}",
        other.sums_.size(), sums_.size()));
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += other.sums_[i];
  loss_sum_ += other.loss_sum_;
  updates_ += other.updates_;
}

void GradientAccumulator::reduce(std::span<float> out) const {
  if (out.size() != sums_.size())
    throw std::invalid_argument(util::format(
        "GradientAccumulator::reduce: output has {} entries, accumulator "
        "holds {}",
        out.size(), sums_.size()));
  if (updates_ == 0) return;
  const double inv = 1.0 / static_cast<double>(updates_);
  for (std::size_t i = 0; i < sums_.size(); ++i)
    out[i] = static_cast<float>(sums_[i] * inv);
}

double GradientAccumulator::reduced_norm() const noexcept {
  if (updates_ == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(updates_);
  double norm_sq = 0.0;
  for (const double sum : sums_) {
    const auto g = static_cast<double>(static_cast<float>(sum * inv));
    norm_sq += g * g;
  }
  return std::sqrt(norm_sq);
}

void GradientAccumulator::reset() noexcept {
  for (double& sum : sums_) sum = 0.0;
  loss_sum_ = 0.0;
  updates_ = 0;
}

}  // namespace dras::nn
