// Deterministic gradient accumulation for data-parallel rollouts
// (src/rollout).
//
// Each rollout clone deposits the batch-mean gradient of every policy
// update it would have applied into its own GradientAccumulator instead
// of stepping its optimiser.  At the end of a round the per-clone
// accumulators are merged *in task-index order* and reduced to a single
// mean gradient, which drives one optimiser step on the original agent.
//
// The reduction-order contract: floating-point addition is not
// associative, so bit-identical results across worker counts require
// that every float is added in the same order no matter how tasks were
// scheduled.  Two rules deliver that:
//   1. within a clone, gradients are summed in the order its updates
//      happened (a deterministic function of the clone's seed + trace);
//   2. across clones, merge(slot 0), merge(slot 1), ... — always
//      ascending task index, never completion order.
// Sums are carried in double precision so the final float rounding step
// happens exactly once, at reduce().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dras::nn {

class GradientAccumulator {
 public:
  GradientAccumulator() = default;
  /// Accumulator for gradients of `parameter_count` floats.
  explicit GradientAccumulator(std::size_t parameter_count)
      : sums_(parameter_count, 0.0) {}

  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return sums_.size();
  }
  /// Updates deposited (add) or absorbed (merge) so far.
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }
  [[nodiscard]] bool empty() const noexcept { return updates_ == 0; }
  /// Mean of the deposited per-update losses; 0 when empty.
  [[nodiscard]] double mean_loss() const noexcept {
    return updates_ == 0 ? 0.0
                         : loss_sum_ / static_cast<double>(updates_);
  }
  [[nodiscard]] std::span<const double> sums() const noexcept {
    return sums_;
  }

  /// Deposit one update's batch-mean gradient (and its loss).  Throws
  /// std::invalid_argument on length mismatch.
  void add(std::span<const float> gradient, double loss);

  /// Absorb another accumulator's sums and update count.  Callers own
  /// the ordering contract: merge in ascending task index, always.
  void merge(const GradientAccumulator& other);

  /// Mean gradient over every deposited update, rounded to float once.
  /// `out` must hold parameter_count() floats; no-op when empty().
  void reduce(std::span<float> out) const;

  /// L2 norm of the mean gradient (the value reduce() would emit,
  /// accumulated in double precision).  0 when empty.
  [[nodiscard]] double reduced_norm() const noexcept;

  /// Forget everything; keeps the parameter count.
  void reset() noexcept;

 private:
  std::vector<double> sums_;
  std::size_t updates_ = 0;
  double loss_sum_ = 0.0;
};

}  // namespace dras::nn
