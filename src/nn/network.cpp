#include "nn/network.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "nn/ops.h"
#include "obs/metrics.h"
#include "util/binio.h"
#include "util/format.h"

namespace dras::nn {

namespace {

/// Per-call latency distributions for the two hot network entry points.
/// Clock reads are gated on obs::enabled(); per-slot shards buffer the
/// observes during parallel rollout, so the registry stays a pure
/// function of the slot-order merge.
struct NetMetrics {
  obs::HdrHistogram& forward_us;
  obs::HdrHistogram& backward_us;
  obs::HdrHistogram& batch_forward_us;

  static NetMetrics& get() {
    static NetMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return NetMetrics{
          registry.hdr("nn.forward_us"),
          registry.hdr("nn.backward_us"),
          registry.hdr("nn.batch_forward_us"),
      };
    }();
    return metrics;
  }
};

double micros_since(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}
/// Xavier-uniform fill: U(-limit, limit), limit = sqrt(6 / (fan_in+fan_out)).
void xavier_fill(std::span<float> block, std::size_t fan_in,
                 std::size_t fan_out, util::Rng& rng) {
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& w : block)
    w = static_cast<float>(rng.uniform(-limit, limit));
}
}  // namespace

Network::Network(const NetworkConfig& config, util::Rng& init_rng)
    : config_(config) {
  if (!config.valid())
    throw std::invalid_argument("network config has a zero dimension");
  const std::size_t r = config_.input_rows;
  const std::size_t h1 = config_.fc1;
  const std::size_t h2 = config_.fc2;
  const std::size_t out = config_.outputs;

  layout_.conv = 0;
  layout_.w1 = 3;
  layout_.w2 = layout_.w1 + h1 * r;
  layout_.w3 = layout_.w2 + h2 * h1;
  layout_.b3 = layout_.w3 + out * h2;
  const std::size_t total = layout_.b3 + out;
  assert(total == config_.parameter_count());

  params_.assign(total, 0.0f);
  grads_.assign(total, 0.0f);

  xavier_fill(block(layout_.conv, 2), 2, 1, init_rng);
  params_[layout_.conv + 2] = 0.0f;  // conv bias
  xavier_fill(block(layout_.w1, h1 * r), r, h1, init_rng);
  xavier_fill(block(layout_.w2, h2 * h1), h1, h2, init_rng);
  xavier_fill(block(layout_.w3, out * h2), h2, out, init_rng);
  // Output biases start at zero.

  input_.resize(2 * r);
  conv_out_.resize(r);
  fc1_pre_.resize(h1);
  fc1_post_.resize(h1);
  fc2_pre_.resize(h2);
  fc2_post_.resize(h2);
  output_.resize(out);
  g_fc2_post_.resize(h2);
  g_fc2_pre_.resize(h2);
  g_fc1_post_.resize(h1);
  g_fc1_pre_.resize(h1);
  g_conv_.resize(r);
}

std::span<const float> Network::forward(std::span<const float> input) {
  if (input.size() != config_.input_size())
    throw std::invalid_argument("network input has the wrong length");
  const bool timed = obs::enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  const std::size_t r = config_.input_rows;
  const std::size_t h1 = config_.fc1;
  const std::size_t h2 = config_.fc2;
  const std::size_t out = config_.outputs;

  std::copy(input.begin(), input.end(), input_.begin());

  // 1×2 convolution: one shared filter over each (feature0, feature1) row.
  const float w0 = params_[layout_.conv];
  const float w1 = params_[layout_.conv + 1];
  const float cb = params_[layout_.conv + 2];
  for (std::size_t i = 0; i < r; ++i)
    conv_out_[i] = w0 * input_[2 * i] + w1 * input_[2 * i + 1] + cb;

  gemv(cblock(layout_.w1, h1 * r), conv_out_, fc1_pre_, h1, r);
  fc1_post_ = fc1_pre_;
  leaky_relu(fc1_post_, config_.leaky_slope);

  gemv(cblock(layout_.w2, h2 * h1), fc1_post_, fc2_pre_, h2, h1);
  fc2_post_ = fc2_pre_;
  leaky_relu(fc2_post_, config_.leaky_slope);

  gemv(cblock(layout_.w3, out * h2), fc2_post_, output_, out, h2);
  for (std::size_t i = 0; i < out; ++i)
    output_[i] += params_[layout_.b3 + i];

  has_forward_ = true;
  if (timed) NetMetrics::get().forward_us.observe(micros_since(start));
  return output_;
}

void Network::forward_batch(std::span<const float> inputs, std::size_t batch,
                            std::span<float> outputs) {
  forward_batch_impl(inputs, batch, outputs, /*retain=*/false);
}

void Network::forward_batch_retained(std::span<const float> inputs,
                                     std::size_t batch,
                                     std::span<float> outputs) {
  forward_batch_impl(inputs, batch, outputs, /*retain=*/true);
}

void Network::forward_batch_impl(std::span<const float> inputs,
                                 std::size_t batch, std::span<float> outputs,
                                 bool retain) {
  retained_batch_ = 0;
  if (batch == 0) return;
  if (inputs.size() != batch * config_.input_size())
    throw std::invalid_argument("forward_batch inputs have the wrong length");
  if (outputs.size() != batch * config_.outputs)
    throw std::invalid_argument("forward_batch outputs have the wrong length");
  const bool timed = obs::enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  const std::size_t r = config_.input_rows;
  const std::size_t h1 = config_.fc1;
  const std::size_t h2 = config_.fc2;
  const std::size_t out = config_.outputs;

  // Activations are held sample-minor ([feature][batch]) between layers
  // — the layout gemm_batch wants (see ops.h).  Only this function sees
  // it; inputs and outputs stay sample-major.
  batch_conv_.resize(batch * r);
  batch_fc1_.resize(batch * h1);
  batch_fc2_.resize(batch * h2);
  batch_out_.resize(batch * out);

  // 1×2 convolution, per sample — same per-element expression as
  // forward() — stored transposed for the first gemm.
  const float w0 = params_[layout_.conv];
  const float w1 = params_[layout_.conv + 1];
  const float cb = params_[layout_.conv + 2];
  for (std::size_t b = 0; b < batch; ++b) {
    const float* x = inputs.data() + b * 2 * r;
    float* c = batch_conv_.data() + b;
    for (std::size_t i = 0; i < r; ++i)
      c[i * batch] = w0 * x[2 * i] + w1 * x[2 * i + 1] + cb;
  }

  gemm_batch(cblock(layout_.w1, h1 * r), batch_conv_, batch_fc1_, h1, r,
             batch);
  if (retain) batch_fc1_pre_ = batch_fc1_;
  leaky_relu(batch_fc1_, config_.leaky_slope);

  gemm_batch(cblock(layout_.w2, h2 * h1), batch_fc1_, batch_fc2_, h2, h1,
             batch);
  if (retain) batch_fc2_pre_ = batch_fc2_;
  leaky_relu(batch_fc2_, config_.leaky_slope);

  gemm_batch(cblock(layout_.w3, out * h2), batch_fc2_, batch_out_, out, h2,
             batch);
  for (std::size_t b = 0; b < batch; ++b) {
    float* y = outputs.data() + b * out;
    for (std::size_t i = 0; i < out; ++i)
      y[i] = batch_out_[i * batch + b] + params_[layout_.b3 + i];
  }
  if (retain) {
    batch_input_.assign(inputs.begin(), inputs.end());
    retained_batch_ = batch;
  }
  if (timed) NetMetrics::get().batch_forward_us.observe(micros_since(start));
}

void Network::stage_batch_sample(std::size_t b) {
  if (b >= retained_batch_)
    throw std::logic_error(
        "stage_batch_sample() without a retained batch covering the index");
  const std::size_t batch = retained_batch_;
  const std::size_t r = config_.input_rows;
  const std::size_t h1 = config_.fc1;
  const std::size_t h2 = config_.fc2;
  const std::size_t out = config_.outputs;

  const float* x = batch_input_.data() + b * 2 * r;
  std::copy(x, x + 2 * r, input_.begin());
  // The batch buffers are sample-minor ([feature][batch]); gather
  // column b back into the single-sample caches backward() reads.
  for (std::size_t i = 0; i < r; ++i)
    conv_out_[i] = batch_conv_[i * batch + b];
  for (std::size_t i = 0; i < h1; ++i) {
    fc1_pre_[i] = batch_fc1_pre_[i * batch + b];
    fc1_post_[i] = batch_fc1_[i * batch + b];
  }
  for (std::size_t i = 0; i < h2; ++i) {
    fc2_pre_[i] = batch_fc2_pre_[i * batch + b];
    fc2_post_[i] = batch_fc2_[i * batch + b];
  }
  for (std::size_t i = 0; i < out; ++i)
    output_[i] = batch_out_[i * batch + b] + params_[layout_.b3 + i];
  has_forward_ = true;
}

void Network::backward(std::span<const float> grad_output) {
  if (!has_forward_)
    throw std::logic_error("backward() without a preceding forward()");
  if (grad_output.size() != config_.outputs)
    throw std::invalid_argument("grad_output has the wrong length");
  const bool timed = obs::enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  const std::size_t r = config_.input_rows;
  const std::size_t h1 = config_.fc1;
  const std::size_t h2 = config_.fc2;
  const std::size_t out = config_.outputs;

  // Output layer: y = W3·fc2_post + b3.
  for (std::size_t i = 0; i < out; ++i)
    grads_[layout_.b3 + i] += grad_output[i];
  outer_acc(grad_output, fc2_post_, gblock(layout_.w3, out * h2), out, h2);
  std::fill(g_fc2_post_.begin(), g_fc2_post_.end(), 0.0f);
  gemv_transpose_acc(cblock(layout_.w3, out * h2), grad_output, g_fc2_post_,
                     out, h2);

  // Leaky ReLU 2, dense 2.
  leaky_relu_backward(fc2_pre_, g_fc2_post_, g_fc2_pre_, config_.leaky_slope);
  outer_acc(g_fc2_pre_, fc1_post_, gblock(layout_.w2, h2 * h1), h2, h1);
  std::fill(g_fc1_post_.begin(), g_fc1_post_.end(), 0.0f);
  gemv_transpose_acc(cblock(layout_.w2, h2 * h1), g_fc2_pre_, g_fc1_post_, h2,
                     h1);

  // Leaky ReLU 1, dense 1.
  leaky_relu_backward(fc1_pre_, g_fc1_post_, g_fc1_pre_, config_.leaky_slope);
  outer_acc(g_fc1_pre_, conv_out_, gblock(layout_.w1, h1 * r), h1, r);
  std::fill(g_conv_.begin(), g_conv_.end(), 0.0f);
  gemv_transpose_acc(cblock(layout_.w1, h1 * r), g_fc1_pre_, g_conv_, h1, r);

  // Convolution: conv_out[i] = w0·x[2i] + w1·x[2i+1] + b.
  float gw0 = 0.0f, gw1 = 0.0f, gb = 0.0f;
  for (std::size_t i = 0; i < r; ++i) {
    gw0 += g_conv_[i] * input_[2 * i];
    gw1 += g_conv_[i] * input_[2 * i + 1];
    gb += g_conv_[i];
  }
  grads_[layout_.conv] += gw0;
  grads_[layout_.conv + 1] += gw1;
  grads_[layout_.conv + 2] += gb;
  if (timed) NetMetrics::get().backward_us.observe(micros_since(start));
}

void Network::zero_gradients() {
  std::fill(grads_.begin(), grads_.end(), 0.0f);
}

double Network::parameter_norm() const noexcept { return l2_norm(params_); }

double Network::gradient_norm() const noexcept { return l2_norm(grads_); }

std::size_t Network::non_finite_parameters() const noexcept {
  return span_stats(params_).non_finite;
}

std::size_t Network::scrub_gradients() noexcept {
  return scrub_non_finite(grads_);
}

void Network::save_state(util::BinaryWriter& out) const {
  out.section("NNET", 1);
  out.u64(config_.input_rows);
  out.u64(config_.fc1);
  out.u64(config_.fc2);
  out.u64(config_.outputs);
  out.f32(config_.leaky_slope);
  out.f32_span(params_);
}

void Network::load_state(util::BinaryReader& in) {
  in.section("NNET", 1);
  const auto input_rows = in.u64();
  const auto fc1 = in.u64();
  const auto fc2 = in.u64();
  const auto outputs = in.u64();
  const float leaky = in.f32();
  if (input_rows != config_.input_rows || fc1 != config_.fc1 ||
      fc2 != config_.fc2 || outputs != config_.outputs ||
      leaky != config_.leaky_slope)
    throw util::SerializationError(util::format(
        "network shape mismatch: checkpoint has [{}x2 -> {} -> {} -> {}], "
        "this network is [{}x2 -> {} -> {} -> {}]",
        input_rows, fc1, fc2, outputs, config_.input_rows, config_.fc1,
        config_.fc2, config_.outputs));
  in.f32_into(params_);
  zero_gradients();
  has_forward_ = false;
}

}  // namespace dras::nn
