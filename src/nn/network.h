// The five-layer DRAS network (paper §III-B, Table III).
//
//   input [R, 2]
//     → 1×2 convolution (one shared filter: 2 weights + 1 bias), one
//       neuron per input row — "to extract job or node status information
//       in each row"
//     → fully-connected layer 1 (no bias), leaky ReLU
//     → fully-connected layer 2 (no bias), leaky ReLU
//     → output layer (weights + biases), linear
//
// The head (masked softmax for DRAS-PG, scalar Q for DRAS-DQL) lives in
// the policy, not here.  This exact parameterisation reproduces the
// paper's trainable-parameter counts: Theta-PG 21,890,053, Theta-DQL
// 21,449,004, Cori-PG 161,960,053 (Table III).
//
// All parameters (and their gradients) live in single flat buffers so the
// Adam optimiser and the serialiser can treat the network as one vector.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::nn {

struct NetworkConfig {
  std::size_t input_rows = 0;  ///< R: 2W+N for PG, 2+N for DQL (§III-B).
  std::size_t fc1 = 0;         ///< First hidden width.
  std::size_t fc2 = 0;         ///< Second hidden width.
  std::size_t outputs = 0;     ///< W for PG, 1 for DQL.
  float leaky_slope = 0.01f;   ///< Leaky-rectifier negative slope.

  [[nodiscard]] bool valid() const noexcept {
    return input_rows > 0 && fc1 > 0 && fc2 > 0 && outputs > 0;
  }
  /// Total trainable parameters for this configuration.
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return 3                      // conv: w0, w1, bias
           + fc1 * input_rows     // dense 1 (no bias)
           + fc2 * fc1            // dense 2 (no bias)
           + outputs * fc2        // output weights
           + outputs;             // output biases
  }
  /// Flat input length: input_rows rows of 2 features.
  [[nodiscard]] std::size_t input_size() const noexcept {
    return 2 * input_rows;
  }
};

class Network {
 public:
  /// Xavier-uniform initialisation drawn from `init_rng`.
  Network(const NetworkConfig& config, util::Rng& init_rng);

  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return params_.size();
  }

  /// Forward pass.  `input` must have config().input_size() elements
  /// (row-major [R,2]).  Returns the raw linear outputs; the reference is
  /// valid until the next forward().  Caches activations for backward().
  std::span<const float> forward(std::span<const float> input);

  /// Batched forward over B states packed sample-major in `inputs`
  /// (B × input_size() floats).  Writes B × outputs() floats into `outputs`
  /// (sample-major) and returns nothing else.  Row b is bit-identical to
  /// forward(inputs[b]) — the batch dimension only reorders loops so each
  /// weight row is streamed once per batch (see ops::gemm_batch).  Uses
  /// dedicated scratch buffers: it does NOT touch the activation caches,
  /// so an in-flight forward()/backward() pair is unaffected.
  void forward_batch(std::span<const float> inputs, std::size_t batch,
                     std::span<float> outputs);

  /// forward_batch plus activation retention: keeps every sample's
  /// pre- and post-activations so stage_batch_sample() can later make
  /// any sample the "most recent forward" for backward().  This is the
  /// training entry point (PGPolicy batches a whole update's forwards
  /// up front — states and parameters are fixed for the entire sweep);
  /// plain forward_batch stays the lean inference path.
  void forward_batch_retained(std::span<const float> inputs,
                              std::size_t batch, std::span<float> outputs);

  /// Load sample `b` of the latest forward_batch_retained() into the
  /// single-sample activation caches, exactly as if forward(inputs_b)
  /// had just run — the next backward() accumulates sample b's
  /// gradient bit-identically to the serial path.  Throws when no
  /// retained batch is live or `b` is out of range.
  void stage_batch_sample(std::size_t b);

  /// Accumulate parameter gradients for d(loss)/d(outputs) = `grad_output`
  /// against the most recent forward pass.  May be called repeatedly to
  /// accumulate over a batch; call zero_gradients() between updates.
  void backward(std::span<const float> grad_output);

  void zero_gradients();

  // Flat views for the optimiser, serialisation and gradient checking.
  [[nodiscard]] std::span<float> parameters() noexcept { return params_; }
  [[nodiscard]] std::span<const float> parameters() const noexcept {
    return params_;
  }
  [[nodiscard]] std::span<float> gradients() noexcept { return grads_; }
  [[nodiscard]] std::span<const float> gradients() const noexcept {
    return grads_;
  }

  // Training-health probes (src/robust): one pass over the flat buffers.
  [[nodiscard]] double parameter_norm() const noexcept;
  [[nodiscard]] double gradient_norm() const noexcept;
  /// NaN / ±inf entries in the parameter buffer.
  [[nodiscard]] std::size_t non_finite_parameters() const noexcept;
  /// Zero non-finite gradient entries; returns how many were scrubbed.
  std::size_t scrub_gradients() noexcept;

  /// Checkpoint hooks ("NNET" section): config + flat parameters.
  /// load_state() requires the stored config to match this instance's
  /// (the checkpoint targets an identically shaped network) and throws
  /// util::SerializationError otherwise.  Gradients are transient and
  /// are zeroed on load.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  // Offsets of each block within the flat parameter buffer.
  struct Layout {
    std::size_t conv = 0;  // [w0, w1, b]
    std::size_t w1 = 0;    // fc1 × R
    std::size_t w2 = 0;    // fc2 × fc1
    std::size_t w3 = 0;    // outputs × fc2
    std::size_t b3 = 0;    // outputs
  };

  [[nodiscard]] std::span<float> block(std::size_t offset,
                                       std::size_t count) noexcept {
    return std::span<float>(params_).subspan(offset, count);
  }
  [[nodiscard]] std::span<const float> cblock(std::size_t offset,
                                              std::size_t count) const noexcept {
    return std::span<const float>(params_).subspan(offset, count);
  }
  [[nodiscard]] std::span<float> gblock(std::size_t offset,
                                        std::size_t count) noexcept {
    return std::span<float>(grads_).subspan(offset, count);
  }

  NetworkConfig config_;
  Layout layout_;
  std::vector<float> params_;
  std::vector<float> grads_;

  // Forward caches (valid for the latest forward()).
  std::vector<float> input_;      // 2R
  std::vector<float> conv_out_;   // R
  std::vector<float> fc1_pre_;    // fc1 (pre-activation)
  std::vector<float> fc1_post_;   // fc1
  std::vector<float> fc2_pre_;    // fc2
  std::vector<float> fc2_post_;   // fc2
  std::vector<float> output_;     // outputs
  // Backward scratch.
  std::vector<float> g_fc2_post_, g_fc2_pre_, g_fc1_post_, g_fc1_pre_,
      g_conv_;
  void forward_batch_impl(std::span<const float> inputs, std::size_t batch,
                          std::span<float> outputs, bool retain);

  // forward_batch scratch (grown on demand, never shrunk); kept separate
  // from the training caches above so batched inference can interleave
  // with a forward()/backward() pair.
  std::vector<float> batch_conv_, batch_fc1_, batch_fc2_, batch_out_;
  // Retention extras (forward_batch_retained only): the sample-major
  // input copy and the pre-activation snapshots taken before the
  // in-place leaky ReLU destroys them.
  std::vector<float> batch_input_, batch_fc1_pre_, batch_fc2_pre_;
  std::size_t retained_batch_ = 0;  ///< 0 = no retained batch live.
  bool has_forward_ = false;
};

}  // namespace dras::nn
