#include "nn/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dras::nn {

void gemv(std::span<const float> w, std::span<const float> x,
          std::span<float> y, std::size_t rows, std::size_t cols) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(y.size() == rows);
  const float* wp = w.data();
  const float* xp = x.data();
  float* yp = y.data();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* row = wp + static_cast<std::size_t>(r) * cols;
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * xp[c];
    yp[r] = acc;
  }
}

void gemm_batch(std::span<const float> w, std::span<const float> xs,
                std::span<float> ys, std::size_t rows, std::size_t cols,
                std::size_t batch) {
  assert(w.size() == rows * cols);
  assert(xs.size() == batch * cols);
  assert(ys.size() == batch * rows);
  // A one-sample "batch" in sample-minor layout is just a gemv; the
  // blocked path below would only add per-column loop overhead.
  if (batch == 1) {
    gemv(w, xs, ys, rows, cols);
    return;
  }
  const float* wp = w.data();
  const float* xp = xs.data();
  float* yp = ys.data();
  // Sample-minor layout: lane b's accumulation visits features in the
  // same sequential order as gemv, so each lane is bit-identical to the
  // per-sample path — but the lanes are independent chains over
  // contiguous memory, which breaks gemv's loop-carried FP dependence
  // and lets the compiler vectorize across the batch.  Lanes are
  // processed in fixed-width blocks so the accumulators live in
  // registers.
  constexpr std::size_t kLanes = 16;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* row = wp + static_cast<std::size_t>(r) * cols;
    float* y = yp + static_cast<std::size_t>(r) * batch;
    std::size_t b0 = 0;
    for (; b0 + kLanes <= batch; b0 += kLanes) {
      float acc[kLanes] = {};
      for (std::size_t c = 0; c < cols; ++c) {
        const float w_rc = row[c];
        const float* x = xp + c * batch + b0;
        for (std::size_t l = 0; l < kLanes; ++l) acc[l] += w_rc * x[l];
      }
      for (std::size_t l = 0; l < kLanes; ++l) y[b0 + l] = acc[l];
    }
    if (b0 < batch) {
      const std::size_t lanes = batch - b0;
      float acc[kLanes] = {};
      for (std::size_t c = 0; c < cols; ++c) {
        const float w_rc = row[c];
        const float* x = xp + c * batch + b0;
        for (std::size_t l = 0; l < lanes; ++l) acc[l] += w_rc * x[l];
      }
      for (std::size_t l = 0; l < lanes; ++l) y[b0 + l] = acc[l];
    }
  }
}

void gemv_transpose_acc(std::span<const float> w,
                        std::span<const float> grad_y,
                        std::span<float> grad_x, std::size_t rows,
                        std::size_t cols) {
  assert(w.size() == rows * cols);
  assert(grad_y.size() == rows);
  assert(grad_x.size() == cols);
  const float* wp = w.data();
  const float* gp = grad_y.data();
  float* out = grad_x.data();
  // Column-parallel so each output element is owned by one thread.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(cols); ++c) {
    float acc = 0.0f;
    for (std::size_t r = 0; r < rows; ++r)
      acc += wp[r * cols + static_cast<std::size_t>(c)] * gp[r];
    out[c] += acc;
  }
}

void outer_acc(std::span<const float> grad_y, std::span<const float> x,
               std::span<float> grad_w, std::size_t rows, std::size_t cols) {
  assert(grad_y.size() == rows);
  assert(x.size() == cols);
  assert(grad_w.size() == rows * cols);
  const float* gp = grad_y.data();
  const float* xp = x.data();
  float* wp = grad_w.data();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float g = gp[r];
    if (g == 0.0f) continue;
    float* row = wp + static_cast<std::size_t>(r) * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += g * xp[c];
  }
}

void leaky_relu(std::span<float> x, float slope) {
  for (float& v : x)
    if (v < 0.0f) v *= slope;
}

void leaky_relu_backward(std::span<const float> pre,
                         std::span<const float> grad_out,
                         std::span<float> grad_in, float slope) {
  assert(pre.size() == grad_out.size() && pre.size() == grad_in.size());
  for (std::size_t i = 0; i < pre.size(); ++i)
    grad_in[i] = pre[i] > 0.0f ? grad_out[i] : grad_out[i] * slope;
}

void softmax_masked(std::span<const float> logits, std::span<float> probs,
                    std::size_t valid) {
  assert(probs.size() == logits.size());
  assert(valid > 0 && valid <= logits.size());
  float max_logit = logits[0];
  for (std::size_t i = 1; i < valid; ++i)
    max_logit = std::max(max_logit, logits[i]);
  float denom = 0.0f;
  for (std::size_t i = 0; i < valid; ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    denom += probs[i];
  }
  for (std::size_t i = 0; i < valid; ++i) probs[i] /= denom;
  std::fill(probs.begin() + static_cast<std::ptrdiff_t>(valid), probs.end(),
            0.0f);
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

SpanStats span_stats(std::span<const float> values) noexcept {
  SpanStats stats;
  stats.count = values.size();
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t finite = 0;
  for (const float v : values) {
    if (!std::isfinite(v)) {
      ++stats.non_finite;
      continue;
    }
    const double d = static_cast<double>(v);
    sum += d;
    sum_sq += d * d;
    if (finite == 0) {
      stats.min = v;
      stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    ++finite;
  }
  if (finite > 0) {
    stats.l2_norm = std::sqrt(sum_sq);
    stats.mean = sum / static_cast<double>(finite);
  }
  return stats;
}

double l2_norm(std::span<const float> values) noexcept {
  double sum_sq = 0.0;
  for (const float v : values)
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(sum_sq);
}

std::size_t scrub_non_finite(std::span<float> values) noexcept {
  std::size_t scrubbed = 0;
  for (float& v : values) {
    if (std::isfinite(v)) continue;
    v = 0.0f;
    ++scrubbed;
  }
  return scrubbed;
}

}  // namespace dras::nn
