#include "nn/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dras::nn {

void gemv(std::span<const float> w, std::span<const float> x,
          std::span<float> y, std::size_t rows, std::size_t cols) {
  assert(w.size() == rows * cols);
  assert(x.size() == cols);
  assert(y.size() == rows);
  const float* wp = w.data();
  const float* xp = x.data();
  float* yp = y.data();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float* row = wp + static_cast<std::size_t>(r) * cols;
    float acc = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * xp[c];
    yp[r] = acc;
  }
}

void gemv_transpose_acc(std::span<const float> w,
                        std::span<const float> grad_y,
                        std::span<float> grad_x, std::size_t rows,
                        std::size_t cols) {
  assert(w.size() == rows * cols);
  assert(grad_y.size() == rows);
  assert(grad_x.size() == cols);
  const float* wp = w.data();
  const float* gp = grad_y.data();
  float* out = grad_x.data();
  // Column-parallel so each output element is owned by one thread.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(cols); ++c) {
    float acc = 0.0f;
    for (std::size_t r = 0; r < rows; ++r)
      acc += wp[r * cols + static_cast<std::size_t>(c)] * gp[r];
    out[c] += acc;
  }
}

void outer_acc(std::span<const float> grad_y, std::span<const float> x,
               std::span<float> grad_w, std::size_t rows, std::size_t cols) {
  assert(grad_y.size() == rows);
  assert(x.size() == cols);
  assert(grad_w.size() == rows * cols);
  const float* gp = grad_y.data();
  const float* xp = x.data();
  float* wp = grad_w.data();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    const float g = gp[r];
    if (g == 0.0f) continue;
    float* row = wp + static_cast<std::size_t>(r) * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += g * xp[c];
  }
}

void leaky_relu(std::span<float> x, float slope) {
  for (float& v : x)
    if (v < 0.0f) v *= slope;
}

void leaky_relu_backward(std::span<const float> pre,
                         std::span<const float> grad_out,
                         std::span<float> grad_in, float slope) {
  assert(pre.size() == grad_out.size() && pre.size() == grad_in.size());
  for (std::size_t i = 0; i < pre.size(); ++i)
    grad_in[i] = pre[i] > 0.0f ? grad_out[i] : grad_out[i] * slope;
}

void softmax_masked(std::span<const float> logits, std::span<float> probs,
                    std::size_t valid) {
  assert(probs.size() == logits.size());
  assert(valid > 0 && valid <= logits.size());
  float max_logit = logits[0];
  for (std::size_t i = 1; i < valid; ++i)
    max_logit = std::max(max_logit, logits[i]);
  float denom = 0.0f;
  for (std::size_t i = 0; i < valid; ++i) {
    probs[i] = std::exp(logits[i] - max_logit);
    denom += probs[i];
  }
  for (std::size_t i = 0; i < valid; ++i) probs[i] /= denom;
  std::fill(probs.begin() + static_cast<std::ptrdiff_t>(valid), probs.end(),
            0.0f);
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace dras::nn
