// Dense linear-algebra and activation primitives for the DRAS networks.
//
// Everything operates on contiguous float spans (row-major weight blocks)
// so the Network can keep all parameters in one flat buffer for the
// optimiser and for serialisation.  The GEMV kernels parallelise over
// output rows with OpenMP when available; they are bit-deterministic for a
// fixed thread count because each output element is reduced sequentially.
#pragma once

#include <cstddef>
#include <span>

namespace dras::nn {

/// y = W·x, W is rows×cols row-major, x has cols elements, y rows elements.
void gemv(std::span<const float> w, std::span<const float> x,
          std::span<float> y, std::size_t rows, std::size_t cols);

/// Batched y = W·x over B samples in *transposed* (sample-minor)
/// layout: `xs` is cols×batch (xs[c*batch + b] = sample b's feature c),
/// `ys` is rows×batch.  Lane b accumulates its dot product in exactly
/// gemv()'s sequential order, so column b of the result is bit-identical
/// to gemv(w, x_b) — strict-FP semantics per sample are preserved.  The
/// throughput win is structural: with samples adjacent in memory the
/// inner loop runs independent accumulator lanes (SIMD-friendly,
/// chain-dependence free across lanes) and each weight row is streamed
/// once per batch instead of once per sample.  Network::forward_batch
/// owns the transposes; its public layout stays sample-major.
void gemm_batch(std::span<const float> w, std::span<const float> xs,
                std::span<float> ys, std::size_t rows, std::size_t cols,
                std::size_t batch);

/// grad_x += Wᵀ·grad_y  (backprop through y = W·x w.r.t. x).
void gemv_transpose_acc(std::span<const float> w,
                        std::span<const float> grad_y,
                        std::span<float> grad_x, std::size_t rows,
                        std::size_t cols);

/// grad_W += grad_y ⊗ x  (backprop through y = W·x w.r.t. W).
void outer_acc(std::span<const float> grad_y, std::span<const float> x,
               std::span<float> grad_w, std::size_t rows, std::size_t cols);

/// In-place leaky ReLU: y = x if x > 0 else slope·x.
void leaky_relu(std::span<float> x, float slope);

/// grad_in = grad_out ⊙ leaky'(pre): pass `pre` (pre-activation values).
void leaky_relu_backward(std::span<const float> pre,
                         std::span<const float> grad_out,
                         std::span<float> grad_in, float slope);

/// Numerically stable softmax over the first `valid` entries of `logits`;
/// entries at index >= valid receive probability 0 (action masking,
/// §III-B: "we mask the invalid actions in the output by rescaling all
/// valid actions").  Writes into `probs` (same length as logits).
void softmax_masked(std::span<const float> logits, std::span<float> probs,
                    std::size_t valid);

/// Sum of elementwise products (dot product).
[[nodiscard]] float dot(std::span<const float> a, std::span<const float> b);

/// One-pass summary of a float buffer, used by the training health
/// checks and the divergence diagnostics dump.  `l2_norm` and `mean`
/// accumulate in double; non-finite entries are counted but excluded
/// from min/max/mean/norm so a single NaN cannot hide the rest of the
/// distribution.
struct SpanStats {
  std::size_t count = 0;       ///< Total entries inspected.
  std::size_t non_finite = 0;  ///< NaN / ±inf entries.
  double l2_norm = 0.0;        ///< Over the finite entries.
  double mean = 0.0;
  float min = 0.0f;            ///< 0 when no finite entry exists.
  float max = 0.0f;

  [[nodiscard]] bool all_finite() const noexcept { return non_finite == 0; }
};

[[nodiscard]] SpanStats span_stats(std::span<const float> values) noexcept;

/// L2 norm (double accumulation).  NaN/inf entries propagate into the
/// result — callers that need them separated use span_stats().
[[nodiscard]] double l2_norm(std::span<const float> values) noexcept;

/// Replace every non-finite entry with 0 and return how many were hit.
std::size_t scrub_non_finite(std::span<float> values) noexcept;

}  // namespace dras::nn
