#include "nn/serialize.h"

#include <cstring>
#include "util/format.h"
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fs.h"
#include "util/rng.h"

namespace dras::nn {

namespace {
constexpr char kMagic[8] = {'D', 'R', 'A', 'S', 'N', 'E', 'T', '1'};
constexpr char kAdamMagic[4] = {'A', 'D', 'A', 'M'};

void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated network file");
  return v;
}
float read_f32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("truncated network file");
  return v;
}
void write_floats(std::ostream& out, std::span<const float> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}
void read_floats(std::istream& in, std::span<float> data) {
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("truncated network file");
}
}  // namespace

void save_network(std::ostream& out, const Network& network,
                  const Adam* optimizer) {
  out.write(kMagic, sizeof(kMagic));
  const NetworkConfig& cfg = network.config();
  write_u64(out, cfg.input_rows);
  write_u64(out, cfg.fc1);
  write_u64(out, cfg.fc2);
  write_u64(out, cfg.outputs);
  write_f32(out, cfg.leaky_slope);
  write_u64(out, network.parameter_count());
  write_floats(out, network.parameters());
  if (optimizer != nullptr) {
    out.write(kAdamMagic, sizeof(kAdamMagic));
    write_u64(out, optimizer->steps_taken());
    write_floats(out, optimizer->first_moment());
    write_floats(out, optimizer->second_moment());
  }
  if (!out) throw std::runtime_error("failed to write network");
}

Network load_network(std::istream& in, std::optional<Adam>* optimizer) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("not a DRAS network file");
  NetworkConfig cfg;
  cfg.input_rows = read_u64(in);
  cfg.fc1 = read_u64(in);
  cfg.fc2 = read_u64(in);
  cfg.outputs = read_u64(in);
  cfg.leaky_slope = read_f32(in);
  const std::uint64_t count = read_u64(in);
  util::Rng dummy(0);
  Network network(cfg, dummy);
  if (count != network.parameter_count())
    throw std::runtime_error(util::format(
        "parameter count mismatch: file has {}, config implies {}", count,
        network.parameter_count()));
  read_floats(in, network.parameters());

  if (optimizer != nullptr) {
    char adam_magic[4];
    in.read(adam_magic, sizeof(adam_magic));
    if (in && std::memcmp(adam_magic, kAdamMagic, sizeof(kAdamMagic)) == 0) {
      const std::uint64_t steps = read_u64(in);
      std::vector<float> m(count), v(count);
      read_floats(in, m);
      read_floats(in, v);
      if (!optimizer->has_value()) optimizer->emplace(count);
      (*optimizer)->restore(m, v, steps);
    } else {
      optimizer->reset();
    }
  }
  return network;
}

void save_network_file(const std::filesystem::path& path,
                       const Network& network, const Adam* optimizer) {
  // Serialize in memory, then publish with tmp+fsync+rename so a crash
  // mid-save can never leave a truncated snapshot at `path`.
  std::ostringstream out(std::ios::binary);
  save_network(out, network, optimizer);
  util::atomic_write_file(path, out.str());
}

Network load_network_file(const std::filesystem::path& path,
                          std::optional<Adam>* optimizer) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error(
        util::format("cannot open {} for reading", path.string()));
  return load_network(in, optimizer);
}

}  // namespace dras::nn
