// Binary (de)serialisation of networks and optimiser state.
//
// Format (little-endian):
//   magic "DRASNET1" | NetworkConfig fields | parameter block |
//   [optional] optimiser marker "ADAM" + step count + moments
//
// Used for per-episode training snapshots (§III-C: "We monitor the
// progress of the training by taking a snapshot of the model after each
// episode") and for shipping converged models into the evaluation benches.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <optional>

#include "nn/adam.h"
#include "nn/network.h"

namespace dras::nn {

/// Write the network (and optionally the optimiser) to a stream.
void save_network(std::ostream& out, const Network& network,
                  const Adam* optimizer = nullptr);

/// Read a network saved by save_network.  When `optimizer` is non-null and
/// the stream carries optimiser state, the moments are restored into it.
/// Throws std::runtime_error on malformed input or config mismatch with a
/// stored optimiser.
[[nodiscard]] Network load_network(std::istream& in,
                                   std::optional<Adam>* optimizer = nullptr);

/// File-based convenience wrappers.
void save_network_file(const std::filesystem::path& path,
                       const Network& network,
                       const Adam* optimizer = nullptr);
[[nodiscard]] Network load_network_file(
    const std::filesystem::path& path,
    std::optional<Adam>* optimizer = nullptr);

}  // namespace dras::nn
