#include "obs/hdr_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/binio.h"

namespace dras::obs {

namespace {

constexpr std::uint32_t kMaxPrecisionBits = 16;

std::uint64_t raw_index(double v, std::uint32_t precision_bits) noexcept {
  // Positive normal doubles order the same as their bit patterns, so
  // dropping the low mantissa bits yields a monotone log-linear index.
  return std::bit_cast<std::uint64_t>(v) >> (52 - precision_bits);
}

void cas_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void cas_min(std::atomic<double>& target, double v) noexcept {
  double lo = target.load(std::memory_order_relaxed);
  while (v < lo &&
         !target.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
}

void cas_max(std::atomic<double>& target, double v) noexcept {
  double hi = target.load(std::memory_order_relaxed);
  while (v > hi &&
         !target.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

HdrHistogram::HdrHistogram(HdrConfig config) { configure(config); }

void HdrHistogram::configure(HdrConfig config) {
  if (!(config.lowest >= std::numeric_limits<double>::min()) ||
      !std::isfinite(config.highest) || !(config.highest > config.lowest))
    throw std::invalid_argument(
        "HdrConfig: need normal 0 < lowest < highest < inf");
  if (config.precision_bits == 0 || config.precision_bits > kMaxPrecisionBits)
    throw std::invalid_argument("HdrConfig: precision_bits out of range");
  config_ = config;
  base_ = raw_index(config.lowest, config.precision_bits);
  const std::uint64_t top = raw_index(config.highest, config.precision_bits);
  buckets_ = std::vector<std::atomic<std::uint64_t>>(top - base_ + 1);
  reset();
}

HdrHistogram::HdrHistogram(const HdrHistogram& other) {
  configure(other.config_);
  copy_from(other);
}

HdrHistogram& HdrHistogram::operator=(const HdrHistogram& other) {
  if (this == &other) return *this;
  if (config_ != other.config_) configure(other.config_);
  copy_from(other);
  return *this;
}

void HdrHistogram::copy_from(const HdrHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  count_.store(other.count(), std::memory_order_relaxed);
  sum_.store(other.sum(), std::memory_order_relaxed);
  min_.store(other.min(), std::memory_order_relaxed);
  max_.store(other.max(), std::memory_order_relaxed);
}

std::size_t HdrHistogram::index_of(double v) const noexcept {
  // NaN fails both comparisons and clamps to lowest, like any
  // out-of-range value; aggregates only ever see clamped values.
  double clamped = v;
  if (!(clamped > config_.lowest))
    clamped = config_.lowest;
  else if (clamped > config_.highest)
    clamped = config_.highest;
  return static_cast<std::size_t>(raw_index(clamped, config_.precision_bits) -
                                  base_);
}

double HdrHistogram::bucket_value(std::size_t i) const noexcept {
  const std::uint64_t shifted =
      (base_ + static_cast<std::uint64_t>(i)) << (52 - config_.precision_bits);
  const double lower = std::bit_cast<double>(shifted);
  const double upper = std::min(
      config_.highest,
      std::bit_cast<double>(shifted +
                            (std::uint64_t{1} << (52 - config_.precision_bits))));
  return lower + (upper - lower) / 2.0;
}

void HdrHistogram::record_direct(double v) noexcept {
  const std::size_t slot = index_of(v);
  double clamped = std::isnan(v) ? config_.lowest
                                 : std::clamp(v, config_.lowest, config_.highest);
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  cas_add(sum_, clamped);
  cas_min(min_, clamped);
  cas_max(max_, clamped);
}

void HdrHistogram::record(double v) noexcept { record_direct(v); }

void HdrHistogram::observe(double v) noexcept {
  if (!enabled()) return;
  if (detail::t_shard != nullptr) {
    detail::t_shard->hdr_observe(this, v);
    return;
  }
  record_direct(v);
}

void HdrHistogram::merge(const HdrHistogram& other) noexcept {
  const std::uint64_t n = other.count();
  if (n == 0) return;
  if (other.config_ == config_) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(n, std::memory_order_relaxed);
    cas_add(sum_, other.sum());
  } else {
    // Rare path (config drift across versions): re-bucket representatives.
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
      const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      const double v = other.bucket_value(i);
      const std::size_t slot = index_of(v);
      buckets_[slot].fetch_add(c, std::memory_order_relaxed);
      cas_add(sum_, v * static_cast<double>(c));
    }
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  cas_min(min_, other.min());
  cas_max(max_, other.max());
}

double HdrHistogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (!(q > 0.0)) return min();
  if (q >= 100.0) return max();
  const auto rank = std::min<std::uint64_t>(
      n, std::max<std::uint64_t>(
             1, static_cast<std::uint64_t>(
                    std::ceil(q / 100.0 * static_cast<double>(n)))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank)
      return std::clamp(bucket_value(i), min(), max());
  }
  return max();
}

void HdrHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void HdrHistogram::save_state(util::BinaryWriter& out) const {
  out.section("HDRH", 1);
  out.f64(config_.lowest);
  out.f64(config_.highest);
  out.u32(config_.precision_bits);
  out.u64(count());
  out.f64(sum());
  out.f64(min());
  out.f64(max());
  std::uint64_t nonzero = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    if (buckets_[i].load(std::memory_order_relaxed) != 0) ++nonzero;
  out.u64(nonzero);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    out.u64(static_cast<std::uint64_t>(i));
    out.u64(c);
  }
}

void HdrHistogram::load_state(util::BinaryReader& in) {
  in.section("HDRH", 1);
  HdrConfig config;
  config.lowest = in.f64();
  config.highest = in.f64();
  config.precision_bits = in.u32();
  try {
    if (config != config_) configure(config);
  } catch (const std::invalid_argument& e) {
    throw util::SerializationError(e.what());
  }
  reset();
  count_.store(in.u64(), std::memory_order_relaxed);
  sum_.store(in.f64(), std::memory_order_relaxed);
  min_.store(in.f64(), std::memory_order_relaxed);
  max_.store(in.f64(), std::memory_order_relaxed);
  const std::uint64_t nonzero = in.u64();
  for (std::uint64_t k = 0; k < nonzero; ++k) {
    const std::uint64_t index = in.u64();
    const std::uint64_t c = in.u64();
    if (index >= buckets_.size())
      throw util::SerializationError("HDRH: bucket index out of range");
    buckets_[index].store(c, std::memory_order_relaxed);
  }
}

}  // namespace dras::obs
