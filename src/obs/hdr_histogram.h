// Mergeable log-bucketed percentile histogram (HDR-histogram style).
//
// The fixed-bucket obs::Histogram answers "how many observations fell
// below X" for a handful of hand-picked bounds; it cannot answer "what
// is p99 round time" without guessing bounds up front.  HdrHistogram
// covers the whole range [lowest, highest] with log-spaced buckets at a
// fixed relative resolution, so percentile queries are accurate to
// ~2^-(precision_bits+1) relative error (<= 0.4% at the default 7 bits)
// over ~18 decades, in fixed memory (~8 KiB per decade at 7 bits).
//
// Bucketing uses the IEEE-754 bit pattern directly: for a positive
// normal double v,
//
//     index_raw(v) = bit_cast<uint64_t>(v) >> (52 - precision_bits)
//
// keeps the biased exponent plus the top `precision_bits` mantissa bits.
// The mapping is monotone in v, needs no log() or division on the hot
// path, and slices every octave into 2^precision_bits equal-ratio
// sub-buckets.  Values are clamped to [lowest, highest] before bucketing
// (and before the running sum/min/max, so a stray NaN or negative value
// cannot poison the aggregates).
//
// Merging adds bucket counts — associative and, for the integer state
// (counts, buckets, percentiles), exactly order-independent.  The
// double-precision `sum` is merged by addition, so shard merges follow
// the rollout engine's slot-order discipline to stay deterministic (see
// obs::MetricShard).  All mutating ops on the shared instrument are
// lock-free atomics; a thread-confined copy (MetricShard cell,
// RunRecorder) can use the same type without contention.
//
// Serialization ("HDRH" section) is sparse — config + aggregates +
// (index, count) pairs for non-zero buckets — and round-trips exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

namespace dras::util {
class BinaryReader;
class BinaryWriter;
}  // namespace dras::util

namespace dras::obs {

/// Value range + resolution of an HdrHistogram.  `lowest` must be a
/// positive normal double; observations outside [lowest, highest] are
/// clamped.  `precision_bits` mantissa bits per bucket index give
/// 2^precision_bits sub-buckets per octave (relative bucket width
/// 2^-precision_bits).
struct HdrConfig {
  double lowest = 1e-9;
  double highest = 1e9;
  std::uint32_t precision_bits = 7;

  friend bool operator==(const HdrConfig&, const HdrConfig&) = default;
};

class HdrHistogram {
 public:
  explicit HdrHistogram(HdrConfig config = {});

  /// Relaxed-snapshot copy (no torn aggregates are possible per-field;
  /// cross-field consistency needs external quiescence, which every
  /// caller that copies — tests, shard cells, reports — has).
  HdrHistogram(const HdrHistogram& other);
  HdrHistogram& operator=(const HdrHistogram& other);

  /// Gated observation: no-op unless obs::enabled(); routed through the
  /// current thread's MetricShard when one is active (rollout tasks).
  void observe(double v) noexcept;

  /// Unconditional observation (shard cells, RunRecorder's private
  /// round-time series, tests).
  void record(double v) noexcept;

  /// Unconditional fold-in of `other` (MetricShard::merge, checkpoint
  /// restore).  Same-config merges add bucket counts directly; a
  /// mismatched config re-buckets `other`'s representative values.
  void merge(const HdrHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// +inf / -inf when empty (like obs::Histogram).
  [[nodiscard]] double min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Value at quantile `q` in [0, 100]: the representative (geometric
  /// midpoint) of the bucket holding the ceil(q/100 * count)-th
  /// observation, clamped to the observed [min, max].  0 when empty.
  [[nodiscard]] double percentile(double q) const noexcept;

  void reset() noexcept;

  [[nodiscard]] const HdrConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Bucket index a value lands in (after clamping); exposed for tests.
  [[nodiscard]] std::size_t index_of(double v) const noexcept;
  /// Representative value reported for bucket `i` (geometric midpoint).
  [[nodiscard]] double bucket_value(std::size_t i) const noexcept;

  /// Checkpoint hooks: "HDRH" section, sparse (index, count) encoding.
  /// load_state adopts the stored config (buckets are re-sized), so a
  /// restore reproduces the saved histogram exactly regardless of how
  /// the in-memory instrument was first registered.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  void configure(HdrConfig config);
  void copy_from(const HdrHistogram& other) noexcept;
  /// Clamp + bucket + aggregate update; shared by record() and the
  /// write-through path of observe().
  void record_direct(double v) noexcept;

  HdrConfig config_;
  std::uint64_t base_ = 0;  ///< index_raw(lowest); subtracted from indices.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace dras::obs
