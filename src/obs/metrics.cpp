#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/format.h"
#include "util/json.h"

namespace dras::obs {

namespace detail {
#if DRAS_OBS_COMPILED
std::atomic<bool> g_enabled{false};
#endif
thread_local MetricShard* t_shard = nullptr;
}  // namespace detail

void set_enabled(bool on) noexcept {
#if DRAS_OBS_COMPILED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

// ---------------------------------------------------------------------------
// MetricShard
// ---------------------------------------------------------------------------

void MetricShard::counter_add(Counter* counter, std::uint64_t n) {
  for (CounterCell& cell : counters_) {
    if (cell.counter == counter) {
      cell.value += n;
      return;
    }
  }
  counters_.push_back(CounterCell{counter, n});
}

void MetricShard::gauge_set(Gauge* gauge, double v) {
  for (GaugeCell& cell : gauges_) {
    if (cell.gauge == gauge) {
      cell.has_set = true;
      cell.set_value = v;
      cell.delta = 0.0;
      return;
    }
  }
  gauges_.push_back(GaugeCell{gauge, true, v, 0.0});
}

void MetricShard::gauge_add(Gauge* gauge, double delta) {
  for (GaugeCell& cell : gauges_) {
    if (cell.gauge == gauge) {
      cell.delta += delta;
      return;
    }
  }
  gauges_.push_back(GaugeCell{gauge, false, 0.0, delta});
}

void MetricShard::histogram_observe(Histogram* histogram, double v) {
  HistogramCell* cell = nullptr;
  for (HistogramCell& candidate : histograms_) {
    if (candidate.histogram == histogram) {
      cell = &candidate;
      break;
    }
  }
  if (cell == nullptr) {
    histograms_.push_back(HistogramCell{
        histogram, std::vector<std::uint64_t>(histogram->bucket_count(), 0),
        0, 0.0, std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()});
    cell = &histograms_.back();
  }
  const auto& bounds = histogram->bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  cell->buckets[static_cast<std::size_t>(it - bounds.begin())] += 1;
  cell->count += 1;
  cell->sum += v;
  cell->min = std::min(cell->min, v);
  cell->max = std::max(cell->max, v);
}

void MetricShard::hdr_observe(HdrHistogram* hdr, double v) {
  for (HdrCell& cell : hdrs_) {
    if (cell.target == hdr) {
      cell.local->record(v);
      return;
    }
  }
  hdrs_.push_back(
      HdrCell{hdr, std::make_unique<HdrHistogram>(hdr->config())});
  hdrs_.back().local->record(v);
}

namespace {
/// Shard-merge visibility (satellite: obs.shard.merge counters).  The
/// instruments live in the global registry like every other built-in;
/// merge_us only reads the clock when telemetry is enabled.
struct ShardMergeMetrics {
  Counter& merges;
  Counter& merged_writes;
  HdrHistogram& merge_us;

  static ShardMergeMetrics& get() {
    static ShardMergeMetrics m = [] {
      auto& reg = Registry::global();
      return ShardMergeMetrics{reg.counter("obs.shard.merges"),
                               reg.counter("obs.shard.merged_writes"),
                               reg.hdr("obs.shard.merge_us")};
    }();
    return m;
  }
};
}  // namespace

void MetricShard::merge() {
  if (empty()) return;
  const bool timed = enabled();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  std::uint64_t writes =
      counters_.size() + gauges_.size() + histograms_.size() + hdrs_.size();
  for (const CounterCell& cell : counters_) cell.counter->absorb(cell.value);
  for (const GaugeCell& cell : gauges_) {
    if (cell.has_set)
      cell.gauge->absorb_set(cell.set_value + cell.delta);
    else
      cell.gauge->absorb_add(cell.delta);
  }
  for (const HistogramCell& cell : histograms_)
    cell.histogram->absorb(cell.buckets, cell.count, cell.sum, cell.min,
                           cell.max);
  for (const HdrCell& cell : hdrs_) cell.target->merge(*cell.local);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  hdrs_.clear();
  // Count the merge itself after folding, through the unconditional
  // absorb path, so a mid-round enable/disable toggle cannot lose it —
  // same discipline as the cells above.
  ShardMergeMetrics& m = ShardMergeMetrics::get();
  m.merges.absorb(1);
  m.merged_writes.absorb(writes);
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    m.merge_us.record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::add(double delta) noexcept {
  if (!enabled()) return;
  if (detail::t_shard != nullptr) {
    detail::t_shard->gauge_add(this, delta);
    return;
  }
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::absorb_add(double delta) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("histogram bounds must be sorted");
}

void Histogram::observe(double v) noexcept {
  if (!enabled()) return;
  if (detail::t_shard != nullptr) {
    detail::t_shard->histogram_observe(this, v);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto slot = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);

  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

void Histogram::absorb(std::span<const std::uint64_t> buckets,
                       std::uint64_t count, double sum, double min,
                       double max) noexcept {
  if (count == 0) return;
  const std::size_t n = std::min(buckets.size(), buckets_.size());
  for (std::size_t i = 0; i < n; ++i)
    buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + sum,
                                     std::memory_order_relaxed)) {
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (min < lo &&
         !min_.compare_exchange_weak(lo, min, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (max > hi &&
         !max_.compare_exchange_weak(hi, max, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double step,
                                             std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    bounds.push_back(start + step * static_cast<double>(i));
  return bounds;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Entry* Registry::find_locked(std::string_view name) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  if (it == entries_.end() || it->first != name) return nullptr;
  return &it->second;
}

Registry::Entry& Registry::emplace_locked(std::string_view name,
                                          MetricKind kind) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  Entry entry;
  entry.kind = kind;
  return entries_.emplace(it, std::string(name), std::move(entry))->second;
}

namespace {
[[noreturn]] void kind_clash(std::string_view name) {
  throw std::invalid_argument(util::format(
      "metric '{}' already registered with a different kind", name));
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  if (Entry* existing = find_locked(name)) {
    if (existing->kind != MetricKind::Counter) kind_clash(name);
    return *existing->counter;
  }
  Entry& entry = emplace_locked(name, MetricKind::Counter);
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  if (Entry* existing = find_locked(name)) {
    if (existing->kind != MetricKind::Gauge) kind_clash(name);
    return *existing->gauge;
  }
  Entry& entry = emplace_locked(name, MetricKind::Gauge);
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  const std::scoped_lock lock(mutex_);
  if (Entry* existing = find_locked(name)) {
    if (existing->kind != MetricKind::Histogram) kind_clash(name);
    return *existing->histogram;
  }
  Entry& entry = emplace_locked(name, MetricKind::Histogram);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *entry.histogram;
}

HdrHistogram& Registry::hdr(std::string_view name, HdrConfig config) {
  const std::scoped_lock lock(mutex_);
  if (Entry* existing = find_locked(name)) {
    if (existing->kind != MetricKind::Hdr) kind_clash(name);
    return *existing->hdr;
  }
  Entry& entry = emplace_locked(name, MetricKind::Hdr);
  entry.hdr = std::make_unique<HdrHistogram>(config);
  return *entry.hdr;
}

std::vector<std::string> Registry::hdr_names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_)
    if (entry.kind == MetricKind::Hdr) names.push_back(name);
  return names;
}

bool Registry::contains(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  return it != entries_.end() && it->first == name;
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

void Registry::reset_values() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::Counter: entry.counter->reset(); break;
      case MetricKind::Gauge: entry.gauge->reset(); break;
      case MetricKind::Histogram: entry.histogram->reset(); break;
      case MetricKind::Hdr: entry.hdr->reset(); break;
    }
  }
}

void Registry::clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::Counter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::Gauge:
        snap.value = entry.gauge->value();
        break;
      case MetricKind::Histogram: {
        const Histogram& h = *entry.histogram;
        snap.value = h.sum();
        snap.count = h.count();
        snap.min = h.count() > 0 ? h.min() : 0.0;
        snap.max = h.count() > 0 ? h.max() : 0.0;
        snap.mean = h.mean();
        snap.bounds = h.bounds();
        snap.buckets.reserve(h.bucket_count());
        for (std::size_t i = 0; i < h.bucket_count(); ++i)
          snap.buckets.push_back(h.bucket(i));
        break;
      }
      case MetricKind::Hdr: {
        const HdrHistogram& h = *entry.hdr;
        snap.value = h.sum();
        snap.count = h.count();
        snap.min = h.count() > 0 ? h.min() : 0.0;
        snap.max = h.count() > 0 ? h.max() : 0.0;
        snap.mean = h.mean();
        snap.p50 = h.percentile(50.0);
        snap.p90 = h.percentile(90.0);
        snap.p99 = h.percentile(99.0);
        snap.p999 = h.percentile(99.9);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dumps
// ---------------------------------------------------------------------------

namespace {

std::string_view kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    case MetricKind::Hdr: return "hdr";
  }
  return "?";
}

}  // namespace

std::string metrics_to_json(const Registry& registry) {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : registry.snapshot()) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":" << util::json::quote(m.name)
        << ",\"kind\":\"" << kind_name(m.kind) << '"';
    if (m.kind == MetricKind::Histogram) {
      out << util::format(
          ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}",
          m.count, m.value, m.min, m.max, m.mean);
      out << ",\"bounds\":[";
      for (std::size_t i = 0; i < m.bounds.size(); ++i)
        out << (i ? "," : "") << m.bounds[i];
      out << "],\"buckets\":[";
      for (std::size_t i = 0; i < m.buckets.size(); ++i)
        out << (i ? "," : "") << m.buckets[i];
      out << ']';
    } else if (m.kind == MetricKind::Hdr) {
      out << util::format(
          ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},"
          "\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}",
          m.count, m.value, m.min, m.max, m.mean, m.p50, m.p90, m.p99,
          m.p999);
    } else {
      out << util::format(",\"value\":{}", m.value);
    }
    out << '}';
  }
  out << "]}\n";
  return out.str();
}

std::string metrics_to_csv(const Registry& registry) {
  std::ostringstream out;
  out << "name,kind,value,count,min,max,mean,p50,p90,p99,p999\n";
  for (const MetricSnapshot& m : registry.snapshot()) {
    out << util::format("{},{},{},{},{},{},{},{},{},{},{}\n", m.name,
                        kind_name(m.kind), m.value, m.count, m.min, m.max,
                        m.mean, m.p50, m.p90, m.p99, m.p999);
  }
  return out.str();
}

std::string metrics_to_text(const Registry& registry) {
  std::ostringstream out;
  for (const MetricSnapshot& m : registry.snapshot()) {
    std::string name = m.name;
    if (name.size() < 32) name.append(32 - name.size(), ' ');
    if (m.kind == MetricKind::Histogram) {
      out << util::format(
          "{} n={} mean={:.2f} min={:.2f} max={:.2f} sum={:.2f}\n", name,
          m.count, m.mean, m.min, m.max, m.value);
    } else if (m.kind == MetricKind::Hdr) {
      out << util::format(
          "{} n={} mean={:.2f} p50={:.2f} p90={:.2f} p99={:.2f} "
          "p999={:.2f} max={:.2f}\n",
          name, m.count, m.mean, m.p50, m.p90, m.p99, m.p999, m.max);
    } else {
      out << util::format("{} {}\n", name, m.value);
    }
  }
  return out.str();
}

}  // namespace dras::obs
