// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms, plus a scoped RAII timer.
//
// Design goals, in order:
//   1. Near-zero cost when telemetry is disabled.  Every hot operation
//      (Counter::add, Histogram::observe, ScopedTimer) first checks one
//      relaxed atomic bool; when it is false the operation touches no
//      shared state, performs no allocation and reads no clock.  A whole
//      translation unit can additionally compile the subsystem out by
//      defining DRAS_OBS_COMPILED=0 (CMake option -DDRAS_OBS=OFF), which
//      turns `enabled()` into `constexpr false` so the compiler deletes
//      the instrumentation branches entirely.
//   2. Thread safety.  Metric values are atomics; registration takes a
//      mutex but instruments hold stable pointers, so steady-state use is
//      lock-free.
//   3. Registration is always allowed (even while disabled) so handles
//      acquired at startup stay valid when telemetry is toggled later.
//
// Typical use:
//
//   auto& started = obs::Registry::global().counter("sim.jobs.started");
//   ...
//   started.add();                      // no-op unless obs::set_enabled(true)
//
//   auto& lat = obs::Registry::global().histogram(
//       "sim.schedule_us", obs::Histogram::exponential_bounds(1.0, 4.0, 12));
//   { obs::ScopedTimer t(lat); policy.schedule(ctx); }
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr_histogram.h"

#ifndef DRAS_OBS_COMPILED
#define DRAS_OBS_COMPILED 1
#endif

namespace dras::obs {

class Counter;
class Gauge;
class Histogram;

/// Thread-confined buffer of metric writes (the rollout engine's
/// per-task telemetry shard).  While a ShardScope is active on a
/// thread, every Counter::add / Gauge::set / Gauge::add /
/// Histogram::observe on that thread lands here instead of in the
/// shared atomics; merge() later folds the buffered writes into the
/// real instruments in one deterministic, single-threaded pass.
///
/// Why: concurrent clones hammering shared CAS loops would make
/// double-precision gauge/histogram sums depend on interleaving order,
/// and a half-flushed registry could not be rewound cleanly on a
/// divergence rollback.  Shards confine each task's writes until the
/// round boundary; merging in ascending task index makes the registry
/// content a pure function of the batch, not of scheduling.
///
/// Lookup is a linear scan in insertion order — deterministic, and
/// cheap at the ~dozen instruments a rollout episode touches.
class MetricShard {
 public:
  void counter_add(Counter* counter, std::uint64_t n);
  void gauge_set(Gauge* gauge, double v);
  void gauge_add(Gauge* gauge, double delta);
  void histogram_observe(Histogram* histogram, double v);
  void hdr_observe(HdrHistogram* hdr, double v);

  /// Fold every buffered write into the real instruments, then clear.
  /// Callers own the ordering contract: merge shards in ascending task
  /// index (the obs half of the rollout reduction-order discipline).
  void merge();

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           hdrs_.empty();
  }

 private:
  struct CounterCell {
    Counter* counter;
    std::uint64_t value;
  };
  struct GaugeCell {
    Gauge* gauge;
    bool has_set;      // a set() clobbers earlier deltas
    double set_value;
    double delta;      // adds since the last set (or since the start)
  };
  struct HistogramCell {
    Histogram* histogram;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count;
    double sum, min, max;
  };
  struct HdrCell {
    HdrHistogram* target;
    // Heap cell: HdrHistogram holds atomics and cannot be moved with
    // the vector; the local copy shares the target's config.
    std::unique_ptr<HdrHistogram> local;
  };

  std::vector<CounterCell> counters_;
  std::vector<GaugeCell> gauges_;
  std::vector<HistogramCell> histograms_;
  std::vector<HdrCell> hdrs_;
};

namespace detail {
#if DRAS_OBS_COMPILED
extern std::atomic<bool> g_enabled;
#endif
/// The active shard of the current thread (null = write through to the
/// shared instruments).  Managed by ShardScope; checked only inside the
/// enabled() branch, so the disabled fast path is untouched.
extern thread_local MetricShard* t_shard;
}  // namespace detail

/// RAII: route the current thread's metric writes into `shard` for the
/// scope's lifetime (nests; the previous target is restored on exit).
class ShardScope {
 public:
  explicit ShardScope(MetricShard& shard) noexcept
      : previous_(detail::t_shard) {
    detail::t_shard = &shard;
  }
  ~ShardScope() { detail::t_shard = previous_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  MetricShard* previous_;
};

/// Runtime master switch; starts disabled.
void set_enabled(bool on) noexcept;

/// Is telemetry active?  One relaxed load; `constexpr false` when the
/// subsystem is compiled out.
[[nodiscard]] inline bool enabled() noexcept {
#if DRAS_OBS_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    if (detail::t_shard != nullptr) {
      detail::t_shard->counter_add(this, n);
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  /// Overwrite the count (checkpoint restore); unconditional like reset(),
  /// so restored telemetry survives a disabled→enabled toggle.
  void restore(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Unconditional fold-in (MetricShard::merge); not gated on enabled()
  /// so a mid-round toggle cannot drop writes already buffered.
  void absorb(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    if (detail::t_shard != nullptr) {
      detail::t_shard->gauge_set(this, v);
      return;
    }
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  /// Unconditional fold-ins (MetricShard::merge).
  void absorb_set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void absorb_add(double delta) noexcept;

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with running count/sum/min/max.  Bucket i counts
/// observations <= bounds[i]; one extra overflow bucket counts the rest.
/// Bounds are fixed at registration; observation is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 (overflow bucket last).
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// +inf / -inf when empty.
  [[nodiscard]] double min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  /// Unconditional fold-in of pre-bucketed observations
  /// (MetricShard::merge).  `buckets` must have bucket_count() entries.
  void absorb(std::span<const std::uint64_t> buckets, std::uint64_t count,
              double sum, double min, double max) noexcept;

  /// `count` upper bounds starting at `start`, each ×`factor`:
  /// {start, start·f, start·f², ...}.
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double start, double factor, std::size_t count);
  /// `count` upper bounds {start, start+step, ...}.
  [[nodiscard]] static std::vector<double> linear_bounds(double start,
                                                         double step,
                                                         std::size_t count);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// RAII wall-clock timer recording elapsed microseconds into a histogram
/// on destruction.  When telemetry is disabled at construction time the
/// clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& target) noexcept
      : target_(enabled() ? &target : nullptr),
        start_(target_ ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (target_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    target_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* target_;
  std::chrono::steady_clock::time_point start_;
};

enum class MetricKind { Counter, Gauge, Histogram, Hdr };

/// Point-in-time copy of one metric, for dumps and tests.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;           ///< counter / gauge value; histogram sum.
  std::uint64_t count = 0;      ///< histogram observation count.
  double min = 0.0, max = 0.0, mean = 0.0;  ///< histogram only.
  std::vector<double> bounds;               ///< fixed-bucket histogram only.
  std::vector<std::uint64_t> buckets;       ///< fixed-bucket histogram only.
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;  ///< hdr only.
};

/// Name → metric registry.  Lookup creates on first use; names are
/// namespaced by convention ("sim.jobs.started").  A name maps to exactly
/// one kind; re-registering under a different kind throws.
class Registry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on first registration.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds);
  /// Log-bucketed percentile histogram; `config` is consulted only on
  /// first registration.
  [[nodiscard]] HdrHistogram& hdr(std::string_view name,
                                  HdrConfig config = {});

  /// Names of every hdr-kind metric, in dump order (checkpoint
  /// telemetry serialization).
  [[nodiscard]] std::vector<std::string> hdr_names() const;

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const;

  /// Zero every value, keep registrations.
  void reset_values();
  /// Drop all metrics (invalidates outstanding handles; tests only).
  void clear();

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<HdrHistogram> hdr;
  };

  mutable std::mutex mutex_;
  // Sorted map keeps dumps deterministic.
  std::vector<std::pair<std::string, Entry>> entries_;

  Entry* find_locked(std::string_view name);
  Entry& emplace_locked(std::string_view name, MetricKind kind);
};

/// Serialize a snapshot of `registry` as JSON ({"metrics":[...]}).
[[nodiscard]] std::string metrics_to_json(const Registry& registry);
/// Serialize as CSV (name,kind,value,count,min,max,mean).
[[nodiscard]] std::string metrics_to_csv(const Registry& registry);
/// Human-readable table for --profile output.
[[nodiscard]] std::string metrics_to_text(const Registry& registry);

}  // namespace dras::obs
