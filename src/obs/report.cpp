#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/format.h"
#include "util/fs.h"

namespace dras::obs::report {

namespace {

double nearest_rank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  const auto rank = std::min<std::size_t>(
      n, std::max<std::size_t>(
             1, static_cast<std::size_t>(
                    std::ceil(q / 100.0 * static_cast<double>(n)))));
  return sorted[rank - 1];
}

std::optional<double> number_field(const util::json::Value& object,
                                   const std::string& key) {
  const util::json::Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::optional<std::string> string_field(const util::json::Value& object,
                                        const std::string& key) {
  const util::json::Value* v = object.find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

/// The "metrics" array entry for hdr metric `name`, or nullptr.
const util::json::Value* find_hdr_metric(const util::json::Value& metrics,
                                         const std::string& name) {
  const util::json::Value* list = metrics.find("metrics");
  if (list == nullptr || !list->is_array()) return nullptr;
  for (const util::json::Value& entry : list->as_array()) {
    const auto entry_name = string_field(entry, "name");
    const auto kind = string_field(entry, "kind");
    if (entry_name == name && kind == std::string("hdr")) return &entry;
  }
  return nullptr;
}

}  // namespace

SeriesStats exact_stats(std::vector<double> values) {
  SeriesStats stats;
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.back();
  double sum = 0.0;
  for (const double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  stats.p50 = nearest_rank(values, 50.0);
  stats.p90 = nearest_rank(values, 90.0);
  stats.p99 = nearest_rank(values, 99.0);
  stats.p999 = nearest_rank(values, 99.9);
  return stats;
}

RunData load_run(const std::filesystem::path& dir) {
  RunData run;
  run.dir = dir;
  const auto manifest_path = dir / "run.json";
  std::string manifest_text;
  try {
    manifest_text = util::read_file(manifest_path);
  } catch (const std::exception& e) {
    throw std::runtime_error(util::format(
        "not a run directory (cannot read {}): {}", manifest_path.string(),
        e.what()));
  }
  try {
    run.manifest = util::json::parse(manifest_text);
  } catch (const std::exception& e) {
    throw std::runtime_error(util::format("malformed {}: {}",
                                          manifest_path.string(), e.what()));
  }
  if (!run.manifest.is_object())
    throw std::runtime_error(
        util::format("malformed {}: not an object", manifest_path.string()));

  // rounds.jsonl: optional, read line-tolerantly (a crashed run may
  // leave a torn final line — everything before it is still data).
  std::ifstream rounds(dir / "rounds.jsonl");
  std::string line;
  while (std::getline(rounds, line)) {
    if (line.empty()) continue;
    try {
      util::json::Value parsed = util::json::parse(line);
      if (const auto wall = number_field(parsed, "wall_s"))
        run.round_wall_s.push_back(*wall);
      run.rounds.push_back(std::move(parsed));
    } catch (const std::exception&) {
      continue;  // torn tail
    }
  }

  // metrics.json: optional.
  const auto metrics_path = dir / "metrics.json";
  if (std::filesystem::exists(metrics_path)) {
    try {
      run.metrics = util::json::parse(util::read_file(metrics_path));
    } catch (const std::exception&) {
      // Leave Null; summaries just omit the section.
    }
  }
  return run;
}

std::optional<double> metric_value(const RunData& run,
                                   const std::string& name) {
  const auto round_time_stat =
      [&](const std::string& stat) -> std::optional<double> {
    if (!run.round_wall_s.empty()) {
      const SeriesStats stats = exact_stats(run.round_wall_s);
      if (stat == "p50") return stats.p50;
      if (stat == "p90") return stats.p90;
      if (stat == "p99") return stats.p99;
      if (stat == "p999") return stats.p999;
      if (stat == "mean") return stats.mean;
      return std::nullopt;
    }
    // Fallback: the manifest's cumulative block (hdr-approximate).
    const util::json::Value* block = run.manifest.find("round_wall_s");
    if (block == nullptr) return std::nullopt;
    return number_field(*block, stat);
  };

  if (name.rfind("round_time_", 0) == 0)
    return round_time_stat(name.substr(sizeof("round_time_") - 1));
  if (name == "final_score") return number_field(run.manifest, "final_score");
  if (name == "wall_seconds")
    return number_field(run.manifest, "wall_seconds");
  if (name == "episodes") return number_field(run.manifest, "episodes");
  if (name == "rounds") return number_field(run.manifest, "rounds");
  if (name.rfind("hdr:", 0) == 0) {
    const auto rest = name.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos) return std::nullopt;
    const util::json::Value* entry =
        find_hdr_metric(run.metrics, rest.substr(0, colon));
    if (entry == nullptr) return std::nullopt;
    return number_field(*entry, rest.substr(colon + 1));
  }
  // First-class failure and fairness metrics (see the file comment):
  // they live in the manifest's "stats" object like any other set_stat
  // key, but are named here so the failure-drill and fairness-drill
  // gates can rely on them never being shadowed by a future manifest
  // field.
  if (name == "wasted_node_hours" || name == "failures" ||
      name == "fairness_jain" || name == "fairness_jain_slowdown" ||
      name == "max_user_slowdown") {
    const util::json::Value* stats = run.manifest.find("stats");
    if (stats == nullptr) return std::nullopt;
    return number_field(*stats, name);
  }
  // Fallback: a key in the manifest's "stats" object (RunRecorder::
  // set_stat) — e.g. dras_serve's decisions_per_sec.
  if (const util::json::Value* stats = run.manifest.find("stats"))
    if (const auto value = number_field(*stats, name)) return value;
  return std::nullopt;
}

bool higher_is_worse(const std::string& metric) {
  // Scores, work totals, rates and fairness indices regress downward;
  // times — and the failure metrics wasted_node_hours / failures —
  // regress upward.  Jain's index is in [1/n, 1] with 1 = perfectly
  // fair, so a *drop* is the regression.
  const bool is_rate =
      metric.size() >= 8 &&
      metric.compare(metric.size() - 8, 8, "_per_sec") == 0;
  return !(metric == "final_score" || metric == "episodes" ||
           metric == "rounds" || metric == "fairness_jain" ||
           metric == "fairness_jain_slowdown" || is_rate);
}

std::vector<Threshold> default_thresholds() {
  return {Threshold{"round_time_p99", 0.10}, Threshold{"final_score", 0.10}};
}

Threshold parse_threshold(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument(
        util::format("bad --threshold '{}', want NAME=FRACTION", spec));
  Threshold t;
  t.metric = spec.substr(0, eq);
  try {
    t.relative = std::stod(spec.substr(eq + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument(
        util::format("bad --threshold '{}', want NAME=FRACTION", spec));
  }
  if (t.relative < 0.0)
    throw std::invalid_argument(
        util::format("bad --threshold '{}': fraction must be >= 0", spec));
  return t;
}

CompareResult compare_runs(const RunData& baseline, const RunData& candidate,
                           const std::vector<Threshold>& thresholds) {
  CompareResult result;
  const auto fp_a = string_field(baseline.manifest, "config_fingerprint");
  const auto fp_b = string_field(candidate.manifest, "config_fingerprint");
  result.fingerprint_mismatch = fp_a && fp_b && *fp_a != *fp_b;

  for (const Threshold& t : thresholds) {
    CompareRow row;
    row.metric = t.metric;
    row.allowed = t.relative;
    row.baseline = metric_value(baseline, t.metric);
    row.candidate = metric_value(candidate, t.metric);
    if (!row.baseline || !row.candidate) {
      row.missing = true;
      result.regressed = true;
      result.rows.push_back(std::move(row));
      continue;
    }
    const double a = *row.baseline;
    const double b = *row.candidate;
    if (a == b) {
      row.delta = 0.0;
    } else if (a == 0.0) {
      row.delta = std::copysign(std::numeric_limits<double>::infinity(),
                                b - a);
    } else {
      row.delta = (b - a) / std::abs(a);
    }
    row.regressed = higher_is_worse(t.metric) ? row.delta > t.relative
                                              : row.delta < -t.relative;
    result.regressed = result.regressed || row.regressed;
    result.rows.push_back(std::move(row));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

std::string fmt_num(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return util::format("{:.6f}", v);
}

void append_manifest_facts(std::ostream& out, const RunData& run) {
  const auto fact = [&](const char* label, const std::string& value) {
    out << "| " << label << " | " << value << " |\n";
  };
  out << "| field | value |\n|---|---|\n";
  if (const auto tool = string_field(run.manifest, "tool"))
    fact("tool", *tool);
  if (const auto seed = number_field(run.manifest, "seed"))
    fact("seed", util::format("{}", static_cast<std::uint64_t>(*seed)));
  if (const auto fp = string_field(run.manifest, "config_fingerprint"))
    fact("config fingerprint", *fp);
  if (const auto rounds = number_field(run.manifest, "rounds"))
    fact("rounds", util::format("{}", static_cast<std::uint64_t>(*rounds)));
  if (const auto episodes = number_field(run.manifest, "episodes"))
    fact("episodes",
         util::format("{}", static_cast<std::uint64_t>(*episodes)));
  if (const auto wall = number_field(run.manifest, "wall_seconds"))
    fact("wall seconds", fmt_num(*wall));
  if (const auto score = number_field(run.manifest, "final_score"))
    fact("final score", fmt_num(*score));
  const util::json::Value* completed = run.manifest.find("completed");
  if (completed != nullptr && completed->is_bool())
    fact("completed", completed->as_bool() ? "yes" : "no");
  const util::json::Value* interrupted = run.manifest.find("interrupted");
  if (interrupted != nullptr && interrupted->is_bool() &&
      interrupted->as_bool())
    fact("interrupted", "yes");
}

void append_stats_row(std::ostream& out, const std::string& label,
                      const SeriesStats& stats) {
  out << "| " << label << " | " << stats.count << " | "
      << fmt_num(stats.mean) << " | " << fmt_num(stats.p50) << " | "
      << fmt_num(stats.p90) << " | " << fmt_num(stats.p99) << " | "
      << fmt_num(stats.p999) << " | " << fmt_num(stats.max) << " |\n";
}

constexpr const char* kStatsHeader =
    "| series | n | mean | p50 | p90 | p99 | p999 | max |\n"
    "|---|---|---|---|---|---|---|---|\n";

/// hdr entries of metrics.json as (name, stats) rows.
std::vector<std::pair<std::string, SeriesStats>> hdr_rows(
    const util::json::Value& metrics) {
  std::vector<std::pair<std::string, SeriesStats>> rows;
  const util::json::Value* list = metrics.find("metrics");
  if (list == nullptr || !list->is_array()) return rows;
  for (const util::json::Value& entry : list->as_array()) {
    if (string_field(entry, "kind") != std::string("hdr")) continue;
    const auto name = string_field(entry, "name");
    if (!name) continue;
    SeriesStats stats;
    stats.count = static_cast<std::uint64_t>(
        number_field(entry, "count").value_or(0.0));
    if (stats.count == 0) continue;
    stats.mean = number_field(entry, "mean").value_or(0.0);
    stats.min = number_field(entry, "min").value_or(0.0);
    stats.max = number_field(entry, "max").value_or(0.0);
    stats.p50 = number_field(entry, "p50").value_or(0.0);
    stats.p90 = number_field(entry, "p90").value_or(0.0);
    stats.p99 = number_field(entry, "p99").value_or(0.0);
    stats.p999 = number_field(entry, "p999").value_or(0.0);
    rows.emplace_back(*name, stats);
  }
  return rows;
}

void append_stats_json(std::ostream& out, const SeriesStats& stats) {
  out << util::format(
      "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},"
      "\"p90\":{},\"p99\":{},\"p999\":{}}}",
      stats.count, stats.mean, stats.min, stats.max, stats.p50, stats.p90,
      stats.p99, stats.p999);
}

}  // namespace

std::string summary_markdown(const RunData& run) {
  std::ostringstream out;
  out << "# dras run: " << run.dir.string() << "\n\n";
  append_manifest_facts(out, run);
  out << "\n## round time (s)\n\n" << kStatsHeader;
  if (!run.round_wall_s.empty()) {
    append_stats_row(out, "round_wall_s (exact)",
                     exact_stats(run.round_wall_s));
  } else if (const util::json::Value* block =
                 run.manifest.find("round_wall_s")) {
    SeriesStats stats;
    stats.count = static_cast<std::uint64_t>(
        number_field(*block, "count").value_or(0.0));
    stats.mean = number_field(*block, "mean").value_or(0.0);
    stats.max = number_field(*block, "max").value_or(0.0);
    stats.p50 = number_field(*block, "p50").value_or(0.0);
    stats.p90 = number_field(*block, "p90").value_or(0.0);
    stats.p99 = number_field(*block, "p99").value_or(0.0);
    stats.p999 = number_field(*block, "p999").value_or(0.0);
    append_stats_row(out, "round_wall_s (manifest)", stats);
  }
  const auto hdrs = hdr_rows(run.metrics);
  if (!hdrs.empty()) {
    out << "\n## latency metrics (metrics.json, hdr)\n\n" << kStatsHeader;
    for (const auto& [name, stats] : hdrs) append_stats_row(out, name, stats);
  }
  if (const util::json::Value* stats = run.manifest.find("stats");
      stats != nullptr && stats->is_object() && !stats->as_object().empty()) {
    out << "\n## stats\n\n| stat | value |\n|---|---|\n";
    for (const auto& [name, value] : stats->as_object())
      if (value.is_number())
        out << "| " << name << " | " << fmt_num(value.as_number()) << " |\n";
  }
  return out.str();
}

std::string summary_json(const RunData& run) {
  std::ostringstream out;
  out << "{\"dir\":" << util::json::quote(run.dir.string());
  if (const auto tool = string_field(run.manifest, "tool"))
    out << ",\"tool\":" << util::json::quote(*tool);
  if (const auto seed = number_field(run.manifest, "seed"))
    out << util::format(",\"seed\":{}", static_cast<std::uint64_t>(*seed));
  if (const auto fp = string_field(run.manifest, "config_fingerprint"))
    out << ",\"config_fingerprint\":" << util::json::quote(*fp);
  if (const auto rounds = number_field(run.manifest, "rounds"))
    out << util::format(",\"rounds\":{}",
                        static_cast<std::uint64_t>(*rounds));
  if (const auto episodes = number_field(run.manifest, "episodes"))
    out << util::format(",\"episodes\":{}",
                        static_cast<std::uint64_t>(*episodes));
  if (const auto wall = number_field(run.manifest, "wall_seconds"))
    out << util::format(",\"wall_seconds\":{}", *wall);
  if (const auto score = number_field(run.manifest, "final_score"))
    out << util::format(",\"final_score\":{}", *score);
  out << ",\"round_time\":";
  append_stats_json(out, exact_stats(run.round_wall_s));
  out << ",\"hdr\":{";
  bool first = true;
  for (const auto& [name, stats] : hdr_rows(run.metrics)) {
    if (!first) out << ',';
    first = false;
    out << util::json::quote(name) << ':';
    append_stats_json(out, stats);
  }
  out << "}}\n";
  return out.str();
}

std::string compare_markdown(const RunData& baseline,
                             const RunData& candidate,
                             const CompareResult& result) {
  std::ostringstream out;
  out << "# dras_report --compare\n\n";
  out << "baseline:  " << baseline.dir.string() << "\n";
  out << "candidate: " << candidate.dir.string() << "\n\n";
  if (result.fingerprint_mismatch)
    out << "> WARNING: config fingerprints differ — comparing different "
           "configurations.\n\n";
  out << "| metric | baseline | candidate | delta | allowed | verdict |\n";
  out << "|---|---|---|---|---|---|\n";
  for (const CompareRow& row : result.rows) {
    out << "| " << row.metric << " | "
        << (row.baseline ? fmt_num(*row.baseline) : "missing") << " | "
        << (row.candidate ? fmt_num(*row.candidate) : "missing") << " | ";
    if (row.missing)
      out << "- | ";
    else
      out << util::format("{:.2f}%", row.delta * 100.0) << " | ";
    out << util::format("±{:.2f}%", row.allowed * 100.0) << " | "
        << (row.missing ? "MISSING"
                        : (row.regressed ? "REGRESSED" : "ok"))
        << " |\n";
  }
  out << "\nverdict: " << (result.regressed ? "REGRESSED" : "ok") << "\n";
  return out.str();
}

}  // namespace dras::obs::report
