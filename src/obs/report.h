// Offline run analysis: the library behind tools/dras_report.
//
// Loads the artifacts a RunRecorder leaves in a run directory —
// run.json (required), rounds.jsonl and metrics.json (optional) — and
// turns them into percentile summary tables and A/B comparisons with
// relative-delta thresholds.  Lives in the library (not the tool) so
// tests can drive every path without spawning processes, and so a
// future serving layer can reuse the regression gate in-process.
//
// Comparable metric names:
//   round_time_p50 / p90 / p99 / p999 / mean
//       exact quantiles over the per-round wall_s series in
//       rounds.jsonl (nearest-rank on the sorted series); falls back to
//       the manifest's cumulative round_wall_s block when the series is
//       missing.  Higher is worse.
//   final_score          manifest "final_score".  Lower is worse.
//   wall_seconds         manifest total.  Higher is worse.
//   episodes / rounds    manifest totals.  Lower is worse (a run that
//                        silently did less work is a regression too).
//   hdr:<name>:<stat>    any hdr metric from metrics.json, <stat> one of
//                        p50/p90/p99/p999/mean/max/count.  Higher is
//                        worse.
//   wasted_node_hours    manifest "stats": node-hours of completed work
//                        destroyed by injected node failures
//                        (sim/fault.h; stamped by the failure benches).
//                        Higher is worse — a scheduler that exposes more
//                        work to faults regresses upward.
//   failures             manifest "stats": injected node failures the
//                        run observed.  Higher is worse (at a fixed
//                        fault config it catches a run that silently
//                        simulated less).
//   <stats key>          any numeric key in the manifest's "stats"
//                        object (RunRecorder::set_stat), e.g.
//                        dras_serve's decisions_per_sec.  Higher is
//                        worse unless the name ends in "_per_sec"
//                        (rates regress downward).
//
// A comparison regresses when candidate B is worse than baseline A by
// more than the threshold's relative fraction (0.10 = 10%).  A metric
// listed in a threshold but missing from either run is reported as
// missing and fails the comparison — a gate that silently skips its
// metric is not a gate.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "util/json.h"

namespace dras::obs::report {

/// Exact order statistics of a small series (nearest-rank quantiles).
struct SeriesStats {
  std::uint64_t count = 0;
  double mean = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
};

[[nodiscard]] SeriesStats exact_stats(std::vector<double> values);

/// One loaded run directory.
struct RunData {
  std::filesystem::path dir;
  util::json::Value manifest;               ///< run.json.
  std::vector<util::json::Value> rounds;    ///< parsed rounds.jsonl lines.
  util::json::Value metrics;                ///< metrics.json or Null.
  std::vector<double> round_wall_s;         ///< wall_s series, run order.
};

/// Throws std::runtime_error when run.json is missing or malformed.
/// rounds.jsonl is read tolerantly: unparseable lines (the torn tail of
/// a crashed run) are skipped.
[[nodiscard]] RunData load_run(const std::filesystem::path& dir);

/// Value of a comparable metric (see file comment); nullopt when the
/// run does not carry it.
[[nodiscard]] std::optional<double> metric_value(const RunData& run,
                                                 const std::string& name);

/// Does a larger value of `metric` mean a worse run?
[[nodiscard]] bool higher_is_worse(const std::string& metric);

struct Threshold {
  std::string metric;
  double relative = 0.10;  ///< allowed relative slack before regression.
};

/// The CI gate defaults: round-time p99 and final validation score,
/// both at 10%.
[[nodiscard]] std::vector<Threshold> default_thresholds();

/// Parse "metric=0.15" (fraction) — the --threshold CLI syntax.
/// Throws std::invalid_argument on malformed specs.
[[nodiscard]] Threshold parse_threshold(const std::string& spec);

struct CompareRow {
  std::string metric;
  std::optional<double> baseline, candidate;
  double delta = 0.0;  ///< (candidate - baseline) / |baseline|.
  double allowed = 0.0;
  bool regressed = false;
  bool missing = false;
};

struct CompareResult {
  std::vector<CompareRow> rows;
  bool fingerprint_mismatch = false;
  bool regressed = false;  ///< any row regressed or missing.
};

[[nodiscard]] CompareResult compare_runs(
    const RunData& baseline, const RunData& candidate,
    const std::vector<Threshold>& thresholds);

/// Rendering.  `summary_json` emits a self-contained document (not a
/// re-dump of the inputs); `compare_markdown` includes the verdict line.
[[nodiscard]] std::string summary_markdown(const RunData& run);
[[nodiscard]] std::string summary_json(const RunData& run);
[[nodiscard]] std::string compare_markdown(const RunData& baseline,
                                           const RunData& candidate,
                                           const CompareResult& result);

}  // namespace dras::obs::report
