#include "obs/run_manifest.h"

#include <chrono>
#include <sstream>

#include "obs/metrics.h"  // DRAS_OBS_COMPILED for the build stanza
#include "util/format.h"
#include "util/fs.h"
#include "util/json.h"

namespace dras::obs {

namespace {

constexpr int kManifestSchema = 1;

double unix_seconds_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_percentiles(std::ostream& out, const HdrHistogram& h) {
  out << util::format(
      "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},"
      "\"p90\":{},\"p99\":{},\"p999\":{}}}",
      h.count(), h.mean(), h.count() > 0 ? h.min() : 0.0,
      h.count() > 0 ? h.max() : 0.0, h.percentile(50.0), h.percentile(90.0),
      h.percentile(99.0), h.percentile(99.9));
}

}  // namespace

RunRecorder::RunRecorder(std::filesystem::path dir, RunInfo info)
    : dir_(std::move(dir)),
      info_(std::move(info)),
      // Round times live in [µs, hours]; the default range covers it.
      round_wall_s_(HdrConfig{}),
      started_unix_(unix_seconds_now()),
      epoch_(std::chrono::steady_clock::now()) {
  std::filesystem::create_directories(dir_);
  rounds_sink_ = std::make_unique<FileSink>(rounds_path());
  // Persist the manifest immediately: a run that dies in its first round
  // still leaves an identifiable directory behind.
  const std::scoped_lock lock(mutex_);
  write_manifest_locked(/*completed=*/false);
}

RunRecorder::~RunRecorder() {
  const std::scoped_lock lock(mutex_);
  if (!finished_) {
    finished_ = true;
    write_manifest_locked(/*completed=*/false);
  }
  rounds_sink_->close();
}

void RunRecorder::record_round(const RoundRecord& r) {
  const std::scoped_lock lock(mutex_);
  round_wall_s_.record(r.wall_seconds);
  rounds_ += 1;
  episodes_ += r.episodes;
  rollbacks_ = r.rollbacks;
  std::ostringstream line;
  line << util::format(
      "{{\"round\":{},\"first_episode\":{},\"episodes\":{},\"loss\":{},"
      "\"reward\":{},\"validation\":{},\"epsilon\":{},\"lr_scale\":{},"
      "\"rollbacks\":{},\"wall_s\":{},\"t\":{}",
      r.round, r.first_episode, r.episodes, r.mean_loss,
      r.mean_training_reward, r.validation_reward, r.epsilon, r.lr_scale,
      r.rollbacks, r.wall_seconds,
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count());
  line << util::format(",\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                       round_wall_s_.percentile(50.0),
                       round_wall_s_.percentile(90.0),
                       round_wall_s_.percentile(99.0));
  rounds_sink_->write(line.str());
}

void RunRecorder::set_final_score(double score) {
  const std::scoped_lock lock(mutex_);
  final_score_ = score;
}

void RunRecorder::note(std::string_view key, std::string_view value) {
  const std::scoped_lock lock(mutex_);
  notes_[std::string(key)] = std::string(value);
}

void RunRecorder::set_stat(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  stats_[std::string(name)] = value;
}

void RunRecorder::mark_interrupted(int signal) {
  const std::scoped_lock lock(mutex_);
  interrupted_ = true;
  signal_ = signal;
}

void RunRecorder::flush() {
  const std::scoped_lock lock(mutex_);
  rounds_sink_->flush();
  write_manifest_locked(/*completed=*/finished_);
}

void RunRecorder::finish(int exit_code) {
  const std::scoped_lock lock(mutex_);
  finished_ = true;
  exit_code_ = exit_code;
  rounds_sink_->close();
  write_manifest_locked(/*completed=*/true);
}

std::uint64_t RunRecorder::rounds_recorded() const {
  const std::scoped_lock lock(mutex_);
  return rounds_;
}

std::string RunRecorder::manifest_json_locked(bool completed) const {
  std::ostringstream out;
  out << "{\"schema\":" << kManifestSchema;
  out << ",\"tool\":" << util::json::quote(info_.tool);
  out << ",\"argv\":[";
  for (std::size_t i = 0; i < info_.argv.size(); ++i)
    out << (i ? "," : "") << util::json::quote(info_.argv[i]);
  out << ']';
  out << util::format(",\"seed\":{}", info_.seed);
  out << ",\"config_fingerprint\":"
      << util::json::quote(info_.config_fingerprint);
  out << ",\"build\":{\"compiler\":" << util::json::quote(__VERSION__)
#ifdef NDEBUG
      << ",\"debug\":false"
#else
      << ",\"debug\":true"
#endif
      << ",\"obs_compiled\":" << (DRAS_OBS_COMPILED ? "true" : "false")
      << '}';
  out << util::format(",\"started_unix\":{},\"wall_seconds\":{}",
                      started_unix_,
                      std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - epoch_)
                          .count());
  out << util::format(",\"rounds\":{},\"episodes\":{},\"rollbacks\":{}",
                      rounds_, episodes_, rollbacks_);
  out << ",\"round_wall_s\":";
  append_percentiles(out, round_wall_s_);
  if (final_score_) out << util::format(",\"final_score\":{}", *final_score_);
  out << ",\"completed\":" << (completed ? "true" : "false");
  out << util::format(",\"exit_code\":{}", exit_code_);
  out << ",\"interrupted\":" << (interrupted_ ? "true" : "false");
  if (interrupted_) out << util::format(",\"signal\":{}", signal_);
  out << ",\"stats\":{";
  bool first_stat = true;
  for (const auto& [key, value] : stats_) {
    if (!first_stat) out << ',';
    first_stat = false;
    out << util::json::quote(key) << ':' << util::format("{}", value);
  }
  out << '}';
  out << ",\"notes\":{";
  bool first = true;
  for (const auto& [key, value] : notes_) {
    if (!first) out << ',';
    first = false;
    out << util::json::quote(key) << ':' << util::json::quote(value);
  }
  out << "}}\n";
  return out.str();
}

void RunRecorder::write_manifest_locked(bool completed) const {
  util::atomic_write_file(manifest_path(), manifest_json_locked(completed));
}

}  // namespace dras::obs
