// Run manifests: the durable, machine-readable record of one training
// or bench run.
//
// A RunRecorder owns a run directory and writes two artifacts into it:
//
//   run.json     — the manifest: tool, full argv, seed, config
//                  fingerprint, build info, wall time, round/episode
//                  totals, cumulative round-duration percentiles and the
//                  final validation score.  Written atomically (temp +
//                  fsync + rename) at every flush, so readers only ever
//                  see a complete document.
//   rounds.jsonl — one JSON object per committed training round: loss,
//                  reward, epsilon, LR scale, rollback count, round wall
//                  time and the cumulative p50/p90/p99 so far.  Written
//                  through a plain (non-atomic) FileSink on purpose: a
//                  crash or SIGKILL loses at most the buffered tail and
//                  every prior line stays salvageable, which is exactly
//                  what a time series wants.
//
// The recorder keeps its own private HdrHistogram of round wall times —
// independent of the global registry and of obs::set_enabled — so the
// manifest's percentiles are always present, even for runs that never
// turned the metrics subsystem on.  tools/dras_report consumes these
// files; ci's telemetry-regression job diffs them across runs.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/sink.h"

namespace dras::obs {

/// Immutable facts about the run, captured at construction.
struct RunInfo {
  std::string tool;               ///< e.g. "dras_sim".
  std::vector<std::string> argv;  ///< full command line, argv[0] included.
  std::uint64_t seed = 0;
  /// Hex fingerprint of the effective configuration (CRC-32 of the
  /// canonical flag/config string); lets dras_report refuse to compare
  /// apples to oranges loudly instead of silently.
  std::string config_fingerprint;
};

/// One committed training round (see train::Trainer::run).
struct RoundRecord {
  std::uint64_t round = 0;          ///< 0-based, this process's run.
  std::uint64_t first_episode = 0;  ///< global episode index of slot 0.
  std::uint64_t episodes = 0;       ///< batch size of the round.
  double mean_loss = 0.0;
  double mean_training_reward = 0.0;
  double validation_reward = 0.0;
  double epsilon = 0.0;
  double lr_scale = 1.0;
  std::uint64_t rollbacks = 0;  ///< cumulative divergence rollbacks.
  double wall_seconds = 0.0;    ///< wall-clock cost of the round.
};

class RunRecorder {
 public:
  /// Creates `dir` (parents included) and opens rounds.jsonl.  Throws
  /// std::runtime_error when the directory or file cannot be created.
  RunRecorder(std::filesystem::path dir, RunInfo info);
  /// Finalizes the manifest if finish() was never called (recorded as
  /// completed=false, so an aborted run is distinguishable).
  ~RunRecorder();

  RunRecorder(const RunRecorder&) = delete;
  RunRecorder& operator=(const RunRecorder&) = delete;

  /// Append one round to rounds.jsonl and fold it into the cumulative
  /// percentiles.  Thread-safe.
  void record_round(const RoundRecord& record);

  /// The run's headline result (dras_sim: greedy validation total
  /// reward).  Shows up as "final_score" in the manifest.
  void set_final_score(double score);

  /// Attach a free-form string fact to the manifest's "notes" object
  /// (policy name, model file, jobset label, ...).
  void note(std::string_view key, std::string_view value);

  /// Attach a numeric result to the manifest's "stats" object
  /// (decisions_per_sec, swap counts, ...).  Unlike notes these are
  /// comparable: dras_report resolves any stats key as a metric name,
  /// so a stat can gate a CI comparison.  Last write per key wins.
  void set_stat(std::string_view name, double value);

  /// Record that the run is being interrupted by `signal`; the manifest
  /// gains "interrupted": true.  Called from the InterruptGuard flush
  /// hook before flush().
  void mark_interrupted(int signal);

  /// Drain rounds.jsonl to disk and write an interim manifest.  Safe to
  /// call from the signal-flush watcher thread and at any point mid-run.
  void flush();

  /// Write the final manifest (completed=true) and close rounds.jsonl.
  /// Idempotent; later calls win on exit_code.
  void finish(int exit_code);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  /// Conventional sibling artifact paths inside the run directory.
  [[nodiscard]] std::filesystem::path manifest_path() const {
    return dir_ / "run.json";
  }
  [[nodiscard]] std::filesystem::path rounds_path() const {
    return dir_ / "rounds.jsonl";
  }
  [[nodiscard]] std::filesystem::path trace_path() const {
    return dir_ / "trace.json";
  }
  [[nodiscard]] std::filesystem::path metrics_path() const {
    return dir_ / "metrics.json";
  }

  [[nodiscard]] std::uint64_t rounds_recorded() const;

 private:
  [[nodiscard]] std::string manifest_json_locked(bool completed) const;
  void write_manifest_locked(bool completed) const;

  std::filesystem::path dir_;
  RunInfo info_;
  mutable std::mutex mutex_;
  std::unique_ptr<FileSink> rounds_sink_;
  HdrHistogram round_wall_s_;  ///< private; independent of obs::enabled().
  std::uint64_t rounds_ = 0;
  std::uint64_t episodes_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::optional<double> final_score_;
  std::map<std::string, std::string> notes_;
  std::map<std::string, double> stats_;
  bool interrupted_ = false;
  int signal_ = 0;
  bool finished_ = false;
  int exit_code_ = 0;
  double started_unix_ = 0.0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace dras::obs
