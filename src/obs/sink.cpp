#include "obs/sink.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "util/format.h"

namespace dras::obs {

// ---------------------------------------------------------------------------
// NullSink
// ---------------------------------------------------------------------------

void NullSink::write(std::string_view text) {
  bytes_.fetch_add(text.size(), std::memory_order_relaxed);
}

std::size_t NullSink::bytes_discarded() const noexcept {
  return bytes_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// StderrSink
// ---------------------------------------------------------------------------

void StderrSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  std::cerr << text;
}

// ---------------------------------------------------------------------------
// StringSink
// ---------------------------------------------------------------------------

void StringSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  data_.append(text);
}

std::string StringSink::str() const {
  const std::scoped_lock lock(mutex_);
  return data_;
}

// ---------------------------------------------------------------------------
// FileSink
// ---------------------------------------------------------------------------

FileSink::FileSink(const std::filesystem::path& path,
                   std::size_t buffer_capacity, bool atomic)
    : path_(path), write_path_(path), capacity_(buffer_capacity),
      atomic_(atomic) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  if (atomic_) {
    write_path_ = std::filesystem::path(
        util::format("{}.tmp.{}", path.string(), ::getpid()));
  }
  fd_ = ::open(write_path_.c_str(),
               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error(util::format("cannot open '{}': {}",
                                          write_path_.string(),
                                          std::strerror(errno)));
  buffer_.reserve(capacity_);
}

FileSink::~FileSink() { close(); }

void FileSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  if (closed_) return;
  buffer_.append(text);
  if (buffer_.size() >= capacity_) flush_locked();
}

void FileSink::flush() {
  const std::scoped_lock lock(mutex_);
  if (closed_) return;
  flush_locked();
}

void FileSink::close() {
  const std::scoped_lock lock(mutex_);
  if (closed_) return;
  closed_ = true;
  flush_locked();
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  if (atomic_) {
    // Publish: rename is atomic, so `path_` is either the old content
    // or the complete new file, never a torn mix.
    std::error_code ec;
    std::filesystem::rename(write_path_, path_, ec);
    if (ec) {
      std::cerr << util::format("warning: cannot publish '{}': {}\n",
                                path_.string(), ec.message());
    }
  }
}

void FileSink::flush_locked() {
  const char* data = buffer_.data();
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // telemetry must never take the process down
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
}

std::unique_ptr<Sink> make_sink(const std::string& target, bool atomic) {
  if (target == "-") return std::make_unique<StderrSink>();
  return std::make_unique<FileSink>(target, std::size_t{1} << 18, atomic);
}

}  // namespace dras::obs
