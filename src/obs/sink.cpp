#include "obs/sink.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "util/format.h"

namespace dras::obs {

// ---------------------------------------------------------------------------
// NullSink
// ---------------------------------------------------------------------------

void NullSink::write(std::string_view text) {
  bytes_.fetch_add(text.size(), std::memory_order_relaxed);
}

std::size_t NullSink::bytes_discarded() const noexcept {
  return bytes_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// StderrSink
// ---------------------------------------------------------------------------

void StderrSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  std::cerr << text;
}

// ---------------------------------------------------------------------------
// StringSink
// ---------------------------------------------------------------------------

void StringSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  data_.append(text);
}

std::string StringSink::str() const {
  const std::scoped_lock lock(mutex_);
  return data_;
}

// ---------------------------------------------------------------------------
// FileSink
// ---------------------------------------------------------------------------

FileSink::FileSink(const std::filesystem::path& path,
                   std::size_t buffer_capacity)
    : path_(path), capacity_(buffer_capacity) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error(util::format("cannot open '{}': {}",
                                          path.string(),
                                          std::strerror(errno)));
  buffer_.reserve(capacity_);
}

FileSink::~FileSink() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

void FileSink::write(std::string_view text) {
  const std::scoped_lock lock(mutex_);
  buffer_.append(text);
  if (buffer_.size() >= capacity_) flush_locked();
}

void FileSink::flush() {
  const std::scoped_lock lock(mutex_);
  flush_locked();
}

void FileSink::flush_locked() {
  const char* data = buffer_.data();
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // telemetry must never take the process down
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
}

std::unique_ptr<Sink> make_sink(const std::string& target) {
  if (target == "-") return std::make_unique<StderrSink>();
  return std::make_unique<FileSink>(target);
}

}  // namespace dras::obs
