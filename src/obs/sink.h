// Output sinks for the telemetry subsystem.
//
// A Sink receives already-serialized text (trace events, metric dumps)
// and is responsible only for where the bytes go.  FileSink buffers
// internally and writes in large chunks so the producers — the simulator
// event loop above all — never pay a syscall per event; flush() (and the
// destructor) drain the buffer.  All sinks are thread-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace dras::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Append `text` (may buffer).
  virtual void write(std::string_view text) = 0;
  /// Push buffered bytes to the destination.
  virtual void flush() {}
  /// Finalize the destination; no writes may follow.  For most sinks
  /// this is just flush(); an atomic FileSink publishes its temp file
  /// here.  Idempotent.
  virtual void close() { flush(); }
};

/// Discards everything.  Used to measure serialization cost in benches.
class NullSink final : public Sink {
 public:
  void write(std::string_view text) override;
  /// Bytes that would have been written; handy for benches and tests.
  [[nodiscard]] std::size_t bytes_discarded() const noexcept;

 private:
  std::atomic<std::size_t> bytes_{0};
};

/// Unbuffered line-oriented writes to stderr.
class StderrSink final : public Sink {
 public:
  void write(std::string_view text) override;

 private:
  std::mutex mutex_;
};

/// Accumulates into a string.  The test sink.
class StringSink final : public Sink {
 public:
  void write(std::string_view text) override;
  [[nodiscard]] std::string str() const;

 private:
  mutable std::mutex mutex_;
  std::string data_;
};

/// Buffered file writer.  Opens (truncates) on construction and throws
/// std::runtime_error when the file cannot be opened; the destructor
/// flushes.  `buffer_capacity` bounds the internal buffer before a write
/// to the OS happens.
///
/// In `atomic` mode the sink writes to "<path>.tmp.<pid>" and close()
/// fsyncs + renames it over `path`, so readers never observe a partial
/// file — a crash before close() leaves only the temp file behind.
class FileSink final : public Sink {
 public:
  explicit FileSink(const std::filesystem::path& path,
                    std::size_t buffer_capacity = 1 << 18,
                    bool atomic = false);
  ~FileSink() override;

  void write(std::string_view text) override;
  void flush() override;
  /// Flush, fsync and close the descriptor; in atomic mode, publish the
  /// temp file at path().  Writes after close() are dropped.
  void close() override;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  void flush_locked();

  std::filesystem::path path_;
  std::filesystem::path write_path_;  ///< == path_ unless atomic.
  std::size_t capacity_;
  bool atomic_ = false;
  bool closed_ = false;
  std::mutex mutex_;
  std::string buffer_;
  int fd_ = -1;
};

/// Convenience factory: "-" means stderr, anything else a FileSink
/// (atomic mode forwarded — see FileSink).
[[nodiscard]] std::unique_ptr<Sink> make_sink(const std::string& target,
                                              bool atomic = false);

}  // namespace dras::obs
