#include "obs/span.h"

#include "obs/metrics.h"

namespace dras::obs {

namespace {

thread_local Span* t_current = nullptr;
/// Ordinal for root spans opened on this thread (keeps sibling roots —
/// successive rounds — distinct and reproducible).
thread_local std::uint64_t t_root_seq = 0;

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

std::uint64_t span_id(std::uint64_t parent_id, std::string_view name,
                      std::uint64_t seq) noexcept {
  const std::uint64_t id =
      splitmix64(parent_id ^ fnv1a(name) ^
                 (seq + 1) * 0x9e3779b97f4a7c15ull);
  return id == 0 ? 1 : id;  // 0 is the "no parent" sentinel
}

}  // namespace detail

Span::Span(std::string_view name, std::vector<TraceArg> args,
           HdrHistogram* latency_us) {
  Span* parent = t_current;
  EventTracer* tracer =
      parent != nullptr ? parent->tracer_ : default_tracer();
  const std::uint64_t parent_id = parent != nullptr ? parent->id_ : 0;
  const std::uint64_t seq =
      parent != nullptr ? parent->child_seq_++ : t_root_seq++;
  parent_lane_ = parent != nullptr ? parent->lane_ : thread_trace_lane();
  open(name, parent_id, tracer, seq, std::move(args), latency_us);
}

Span::Span(std::string_view name, const SpanContext& parent,
           std::uint64_t child_seq, std::vector<TraceArg> args,
           HdrHistogram* latency_us) {
  parent_lane_ = parent.lane;
  open(name, parent.id, parent.tracer, child_seq, std::move(args),
       latency_us);
}

void Span::open(std::string_view name, std::uint64_t parent_id,
                EventTracer* tracer, std::uint64_t seq,
                std::vector<TraceArg>&& args, HdrHistogram* latency_us) {
  traced_ = tracer != nullptr;
  hdr_ = (latency_us != nullptr && enabled()) ? latency_us : nullptr;
  parent_id_ = parent_id;
  id_ = detail::span_id(parent_id, name, seq);
  lane_ = thread_trace_lane();
  cross_lane_ = traced_ && parent_id_ != 0 && !(parent_lane_ == lane_);
  previous_ = t_current;
  t_current = this;
  if (!active()) return;
  name_ = name;
  if (traced_) {
    tracer_ = tracer;
    args_ = std::move(args);
    start_wall_ = tracer_->wall_seconds();
  }
  if (hdr_ != nullptr || traced_)
    start_steady_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  t_current = previous_;
  if (!active()) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_steady_;
  if (hdr_ != nullptr)
    hdr_->observe(
        std::chrono::duration<double, std::micro>(elapsed).count());
  if (!traced_) return;
  const double dur = std::chrono::duration<double>(elapsed).count();
  args_.push_back(targ("span", id_));
  if (parent_id_ != 0) args_.push_back(targ("parent", parent_id_));
  tracer_->complete(name_, start_wall_, dur, args_, lane_.pid, lane_.tid);
  if (cross_lane_) {
    // Arrow from the parent's row to this span's start.
    tracer_->flow(name_, start_wall_, id_, /*start=*/true, parent_lane_.pid,
                  parent_lane_.tid);
    tracer_->flow(name_, start_wall_, id_, /*start=*/false, lane_.pid,
                  lane_.tid);
  }
}

void Span::arg(TraceArg arg) {
  if (!traced_) return;
  args_.push_back(std::move(arg));
}

SpanContext Span::context() const noexcept {
  return SpanContext{id_, tracer_, lane_};
}

SpanContext Span::current() noexcept {
  if (t_current == nullptr) return SpanContext{};
  return t_current->context();
}

}  // namespace dras::obs
