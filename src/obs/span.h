// Hierarchical RAII spans with stable ids and cross-thread causality.
//
// A Span measures one unit of work (a training round, a rollout slot, an
// NN update, a checkpoint write) and knows its parent: spans opened on
// the same thread nest automatically through a thread-local stack, and a
// span can be parented across threads by capturing the parent's
// SpanContext before handing work to a pool.  On destruction a span
// emits an 'X' complete event carrying its own id and its parent's id,
// plus a flow-event pair ('s'/'f') when parent and child render on
// different trace rows — chrome://tracing then draws the round → slot
// causality arrows that make a round's critical path visible.
//
// Ids are deterministic, not random: id = mix(parent_id, name, seq)
// where `seq` is the parent's child ordinal (or an explicit slot index
// for cross-thread children).  Two runs of the same workload produce
// the same span ids, so traces diff cleanly and tests can pin them.
// Nothing here reads /dev/urandom or the wall clock beyond the tracer's
// own monotonic timebase — spans cannot perturb training determinism.
//
// A span is *active* when it resolved a tracer (explicit parent's, the
// innermost enclosing span's, or obs::default_tracer()) or when it was
// given an HdrHistogram latency target while telemetry is enabled.
// Inactive spans skip the clock reads and string copies entirely; the
// latency target records through HdrHistogram::observe, so worker
// threads buffer into their MetricShard and the registry stays a pure
// function of the batch.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/trace.h"

namespace dras::obs {

/// A span's identity as seen by its children: enough to parent a new
/// span from another thread and to draw the flow arrow back to the
/// parent's trace row.  Default-constructed = "no parent, no tracer".
struct SpanContext {
  std::uint64_t id = 0;
  EventTracer* tracer = nullptr;
  TraceLane lane{};

  [[nodiscard]] bool traced() const noexcept { return tracer != nullptr; }
};

namespace detail {
/// mix(parent, name, seq) — the deterministic span-id function (FNV-1a
/// over the name, splitmix64 finalizer).  Exposed for tests.
[[nodiscard]] std::uint64_t span_id(std::uint64_t parent_id,
                                    std::string_view name,
                                    std::uint64_t seq) noexcept;
}  // namespace detail

class Span {
 public:
  /// Child of the innermost span on this thread (or a root span when
  /// there is none), on the tracer that span resolved — falling back to
  /// obs::default_tracer().  `latency_us` optionally records the span's
  /// duration (µs) through HdrHistogram::observe.
  explicit Span(std::string_view name, std::vector<TraceArg> args = {},
                HdrHistogram* latency_us = nullptr);

  /// Child of `parent` (captured on another thread before the handoff).
  /// `child_seq` must be stable across scheduling — the rollout engine
  /// passes the slot index — so the span id is reproducible.  Emits a
  /// flow-event pair when the parent renders on a different trace row.
  Span(std::string_view name, const SpanContext& parent,
       std::uint64_t child_seq, std::vector<TraceArg> args = {},
       HdrHistogram* latency_us = nullptr);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Append an arg visible on the emitted slice (results known only at
  /// the end of the work, e.g. a round's loss).  No-op when inactive.
  void arg(TraceArg arg);

  [[nodiscard]] bool active() const noexcept { return traced_ || hdr_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// This span's identity, for parenting work handed to another thread.
  [[nodiscard]] SpanContext context() const noexcept;

  /// The innermost span on the calling thread (a default SpanContext
  /// when none is open).
  [[nodiscard]] static SpanContext current() noexcept;

 private:
  void open(std::string_view name, std::uint64_t parent_id,
            EventTracer* tracer, std::uint64_t seq,
            std::vector<TraceArg>&& args, HdrHistogram* latency_us);

  std::string name_;
  std::vector<TraceArg> args_;
  EventTracer* tracer_ = nullptr;
  HdrHistogram* hdr_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::uint64_t child_seq_ = 0;  ///< next same-thread child ordinal.
  TraceLane lane_{};
  TraceLane parent_lane_{};
  bool traced_ = false;
  bool cross_lane_ = false;
  double start_wall_ = 0.0;      ///< tracer timebase (flow/X events).
  std::chrono::steady_clock::time_point start_steady_{};
  Span* previous_ = nullptr;     ///< enclosing span on this thread.
};

}  // namespace dras::obs
