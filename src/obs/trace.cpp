#include "obs/trace.h"

#include <chrono>

#include "util/format.h"
#include "util/json.h"

namespace dras::obs {

namespace {

std::atomic<EventTracer*> g_default_tracer{nullptr};

constexpr std::size_t kFlushThreshold = 1 << 16;  // 64 KiB

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += util::json::quote(args[i].key);
    out += ':';
    out += args[i].value;
  }
  out += '}';
}

}  // namespace

TraceArg targ(std::string_view key, double value) {
  return {std::string(key), util::format("{}", value)};
}
TraceArg targ(std::string_view key, std::int64_t value) {
  return {std::string(key), util::format("{}", value)};
}
TraceArg targ(std::string_view key, std::uint64_t value) {
  return {std::string(key), util::format("{}", value)};
}
TraceArg targ(std::string_view key, int value) {
  return {std::string(key), util::format("{}", value)};
}
TraceArg targ(std::string_view key, bool value) {
  return {std::string(key), value ? "true" : "false"};
}
TraceArg targ(std::string_view key, std::string_view value) {
  return {std::string(key), util::json::quote(value)};
}
TraceArg targ(std::string_view key, const char* value) {
  return targ(key, std::string_view(value));
}

EventTracer::EventTracer(std::unique_ptr<Sink> sink, TraceFormat format)
    : sink_(std::move(sink)),
      format_(format),
      epoch_(std::chrono::steady_clock::now()) {
  const std::scoped_lock lock(mutex_);
  emit_metadata_locked();
}

EventTracer::~EventTracer() { close(); }

void EventTracer::emit_metadata_locked() {
  const auto name_event = [](int pid, std::string_view name) {
    return util::format(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,"
        "\"args\":{{\"name\":{}}}}}",
        pid, util::json::quote(name));
  };
  append_locked(name_event(kSimPid, "simulator (sim time)"));
  append_locked(name_event(kTrainPid, "trainer (wall time)"));
  append_locked(name_event(kExecPid, "exec (wall time)"));
}

void EventTracer::append_locked(std::string&& event_json) {
  if (closed_) return;
  if (format_ == TraceFormat::ChromeJson) {
    buffer_ += wrote_any_ ? ",\n" : "{\"traceEvents\":[\n";
    buffer_ += event_json;
  } else {
    buffer_ += event_json;
    buffer_ += '\n';
  }
  wrote_any_ = true;
  ++events_;
  if (buffer_.size() >= kFlushThreshold) {
    sink_->write(buffer_);
    buffer_.clear();
  }
}

void EventTracer::instant(std::string_view name, double ts_seconds,
                          const std::vector<TraceArg>& args, int pid,
                          int tid) {
  std::string event = util::format(
      "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3f},\"pid\":{},"
      "\"tid\":{}",
      util::json::quote(name), ts_seconds * 1e6, pid, tid);
  if (!args.empty()) append_args(event, args);
  event += '}';
  const std::scoped_lock lock(mutex_);
  append_locked(std::move(event));
}

void EventTracer::complete(std::string_view name, double ts_seconds,
                           double dur_seconds,
                           const std::vector<TraceArg>& args, int pid,
                           int tid) {
  std::string event = util::format(
      "{{\"name\":{},\"ph\":\"X\",\"ts\":{:.3f},\"dur\":{:.3f},\"pid\":{},"
      "\"tid\":{}",
      util::json::quote(name), ts_seconds * 1e6, dur_seconds * 1e6, pid, tid);
  if (!args.empty()) append_args(event, args);
  event += '}';
  const std::scoped_lock lock(mutex_);
  append_locked(std::move(event));
}

void EventTracer::counter(std::string_view name, double ts_seconds,
                          double value, int pid) {
  std::string event = util::format(
      "{{\"name\":{},\"ph\":\"C\",\"ts\":{:.3f},\"pid\":{},\"tid\":0,"
      "\"args\":{{\"value\":{}}}}}",
      util::json::quote(name), ts_seconds * 1e6, pid, value);
  const std::scoped_lock lock(mutex_);
  append_locked(std::move(event));
}

void EventTracer::flow(std::string_view name, double ts_seconds,
                       std::uint64_t flow_id, bool start, int pid, int tid) {
  // "bp":"e" on the finish side binds the arrow to the enclosing slice
  // instead of the next one, which is what nested spans want.
  std::string event = util::format(
      "{{\"name\":{},\"cat\":\"flow\",\"ph\":\"{}\"{},\"id\":{},"
      "\"ts\":{:.3f},\"pid\":{},\"tid\":{}}}",
      util::json::quote(name), start ? 's' : 'f',
      start ? "" : ",\"bp\":\"e\"", flow_id, ts_seconds * 1e6, pid, tid);
  const std::scoped_lock lock(mutex_);
  append_locked(std::move(event));
}

double EventTracer::wall_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::uint64_t EventTracer::events_recorded() const noexcept {
  return events_;
}

void EventTracer::flush() {
  const std::scoped_lock lock(mutex_);
  if (!buffer_.empty()) {
    sink_->write(buffer_);
    buffer_.clear();
  }
  sink_->flush();
}

void EventTracer::close() {
  const std::scoped_lock lock(mutex_);
  if (closed_) return;
  if (format_ == TraceFormat::ChromeJson)
    buffer_ += wrote_any_ ? "\n]}\n" : "{\"traceEvents\":[]}\n";
  closed_ = true;
  if (!buffer_.empty()) {
    sink_->write(buffer_);
    buffer_.clear();
  }
  // close(), not flush(): an atomic FileSink publishes its temp file
  // here, so a finalized trace is the only thing a reader can observe.
  sink_->close();
}

namespace {
thread_local TraceLane t_lane{};
}  // namespace

void set_thread_trace_lane(TraceLane lane) noexcept { t_lane = lane; }

TraceLane thread_trace_lane() noexcept { return t_lane; }

void set_default_tracer(EventTracer* tracer) noexcept {
  g_default_tracer.store(tracer, std::memory_order_release);
}

EventTracer* default_tracer() noexcept {
  return g_default_tracer.load(std::memory_order_acquire);
}

}  // namespace dras::obs
