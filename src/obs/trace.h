// Structured event tracer emitting Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto) or JSONL (one event object per line).
//
// Timestamps are caller-supplied seconds and are written as microseconds,
// the unit the trace-event spec mandates.  Simulator instrumentation
// passes *simulation* time so the resulting trace visualizes the schedule
// itself (each job a 'X' complete event, queue depth / used nodes as 'C'
// counter tracks); trainer instrumentation passes wall time from
// `wall_seconds()`.  The two live on different pid lanes (kSimPid /
// kTrainPid) so mixed traces stay readable.
//
// Events are serialized immediately into an in-memory buffer under a
// mutex and handed to the Sink in large chunks, so the simulator event
// loop never blocks on I/O.  The destructor (or close()) finalizes the
// JSON document.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sink.h"

namespace dras::obs {

enum class TraceFormat { ChromeJson, Jsonl };

/// One pre-encoded "args" entry: `value` must already be valid JSON
/// (use the targ() helpers).
struct TraceArg {
  std::string key;
  std::string value;
};

[[nodiscard]] TraceArg targ(std::string_view key, double value);
[[nodiscard]] TraceArg targ(std::string_view key, std::int64_t value);
[[nodiscard]] TraceArg targ(std::string_view key, std::uint64_t value);
[[nodiscard]] TraceArg targ(std::string_view key, int value);
[[nodiscard]] TraceArg targ(std::string_view key, bool value);
[[nodiscard]] TraceArg targ(std::string_view key, std::string_view value);
// String literals would otherwise prefer the bool overload (pointer→bool
// is a standard conversion; const char*→string_view is not).
[[nodiscard]] TraceArg targ(std::string_view key, const char* value);

inline constexpr int kSimPid = 1;    ///< Simulation-time lane.
inline constexpr int kTrainPid = 2;  ///< Wall-time (trainer) lane.
inline constexpr int kExecPid = 3;   ///< Wall-time (thread pool) lane;
                                     ///< tid = worker index + 1.

/// The (pid, tid) trace row wall-time events from the current thread
/// belong on.  Defaults to the trainer lane; exec::ThreadPool workers
/// switch themselves to (kExecPid, worker + 1) so spans opened inside a
/// pool task land on the worker's own row.
struct TraceLane {
  int pid = kTrainPid;
  int tid = 1;

  friend bool operator==(const TraceLane&, const TraceLane&) = default;
};

void set_thread_trace_lane(TraceLane lane) noexcept;
[[nodiscard]] TraceLane thread_trace_lane() noexcept;

/// RAII lane override (pool workers; tests).
class TraceLaneScope {
 public:
  explicit TraceLaneScope(TraceLane lane) noexcept
      : previous_(thread_trace_lane()) {
    set_thread_trace_lane(lane);
  }
  ~TraceLaneScope() { set_thread_trace_lane(previous_); }
  TraceLaneScope(const TraceLaneScope&) = delete;
  TraceLaneScope& operator=(const TraceLaneScope&) = delete;

 private:
  TraceLane previous_;
};

class EventTracer {
 public:
  /// Takes ownership of `sink`.  Emits process-name metadata up front.
  explicit EventTracer(std::unique_ptr<Sink> sink,
                       TraceFormat format = TraceFormat::ChromeJson);
  ~EventTracer();

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// 'i' instant event at `ts_seconds`.
  void instant(std::string_view name, double ts_seconds,
               const std::vector<TraceArg>& args = {}, int pid = kSimPid,
               int tid = 1);
  /// 'X' complete event covering [ts_seconds, ts_seconds + dur_seconds].
  void complete(std::string_view name, double ts_seconds, double dur_seconds,
                const std::vector<TraceArg>& args = {}, int pid = kSimPid,
                int tid = 1);
  /// 'C' counter sample; renders as a counter track.
  void counter(std::string_view name, double ts_seconds, double value,
               int pid = kSimPid);
  /// Flow event: 's' (start) / 'f' (finish, binding to the enclosing
  /// slice) with a shared `flow_id` draws a causality arrow between two
  /// slices — used by obs::Span to connect a cross-thread child to its
  /// parent's lane.
  void flow(std::string_view name, double ts_seconds, std::uint64_t flow_id,
            bool start, int pid, int tid);

  /// Wall-clock seconds since this tracer was constructed (monotonic);
  /// the timestamp source for wall-time lanes.
  [[nodiscard]] double wall_seconds() const noexcept;

  /// Events recorded so far.
  [[nodiscard]] std::uint64_t events_recorded() const noexcept;

  /// Serialize any buffered bytes to the sink and flush it.
  void flush();
  /// Finalize the document (writes the closing bracket for ChromeJson)
  /// and flush.  Further events are dropped.  Idempotent.
  void close();

  [[nodiscard]] TraceFormat format() const noexcept { return format_; }

 private:
  void append_locked(std::string&& event_json);
  void emit_metadata_locked();

  std::unique_ptr<Sink> sink_;
  TraceFormat format_;
  std::mutex mutex_;
  std::string buffer_;
  bool wrote_any_ = false;
  bool closed_ = false;
  std::atomic<std::uint64_t> events_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Process-wide default tracer (may be null).  Simulator instances pick
/// this up at construction; CLI drivers and bench harnesses install it.
/// Not owning — the caller keeps the tracer alive.
void set_default_tracer(EventTracer* tracer) noexcept;
[[nodiscard]] EventTracer* default_tracer() noexcept;

}  // namespace dras::obs
