#include "robust/health.h"

#include <cmath>

#include "core/dras_agent.h"
#include "nn/adam.h"
#include "nn/ops.h"
#include "util/format.h"

namespace dras::robust {

std::string_view to_string(HealthFault fault) noexcept {
  switch (fault) {
    case HealthFault::None:
      return "none";
    case HealthFault::NonFiniteLoss:
      return "non-finite-loss";
    case HealthFault::LossCeiling:
      return "loss-ceiling";
    case HealthFault::NonFiniteReward:
      return "non-finite-reward";
    case HealthFault::NonFiniteGradNorm:
      return "non-finite-grad-norm";
    case HealthFault::GradNormCeiling:
      return "grad-norm-ceiling";
    case HealthFault::NonFiniteParams:
      return "non-finite-params";
    case HealthFault::ParamNormCeiling:
      return "param-norm-ceiling";
    case HealthFault::NonFiniteOptimizerState:
      return "non-finite-optimizer-state";
    case HealthFault::EpsilonOutOfBounds:
      return "epsilon-out-of-bounds";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthLimits limits) : limits_(limits) {}

void HealthMonitor::note_loss(double loss) {
  if (limits_.recent_loss_depth == 0) return;
  if (losses_.size() < limits_.recent_loss_depth) {
    losses_.push_back(loss);
  } else {
    losses_[head_] = loss;
    head_ = (head_ + 1) % losses_.size();
  }
}

std::vector<double> HealthMonitor::recent_losses() const {
  std::vector<double> ordered;
  ordered.reserve(losses_.size());
  for (std::size_t i = 0; i < losses_.size(); ++i)
    ordered.push_back(losses_[(head_ + i) % losses_.size()]);
  return ordered;
}

HealthReport HealthMonitor::check(const core::DrasAgent& agent,
                                  const train::EpisodeResult& result) {
  ++checks_done_;
  note_loss(result.loss);

  HealthReport report;
  report.episode = result.episode;
  report.loss = result.loss;
  report.grad_norm = result.grad_norm;
  report.training_reward = result.training_reward;
  report.epsilon = result.epsilon;

  const nn::SpanStats params = nn::span_stats(agent.network().parameters());
  report.param_norm = params.l2_norm;
  report.non_finite_params = params.non_finite;

  // The optimizer's moments are checkpointed alongside the parameters,
  // so they are part of what a "good" snapshot certifies.
  const nn::Adam& optimizer = agent.optimizer();
  const std::size_t bad_moments =
      nn::span_stats(optimizer.first_moment()).non_finite +
      nn::span_stats(optimizer.second_moment()).non_finite;
  report.non_finite_moments = bad_moments;

  const auto trip = [&report](HealthFault fault, std::string detail) {
    report.fault = fault;
    report.detail = std::move(detail);
    return report;
  };

  // Order: the unambiguous corruption signals first (non-finite values),
  // then the magnitude ceilings, then the schedule invariant.
  if (!std::isfinite(result.loss))
    return trip(HealthFault::NonFiniteLoss,
                util::format("episode {} update loss is {}", result.episode,
                             result.loss));
  if (!std::isfinite(result.training_reward))
    return trip(HealthFault::NonFiniteReward,
                util::format("episode {} training reward is {}",
                             result.episode, result.training_reward));
  if (!std::isfinite(result.grad_norm))
    return trip(HealthFault::NonFiniteGradNorm,
                util::format("episode {} update gradient norm is {}",
                             result.episode, result.grad_norm));
  if (params.non_finite > 0)
    return trip(HealthFault::NonFiniteParams,
                util::format("{} of {} network parameters are non-finite "
                             "after episode {}",
                             params.non_finite, params.count,
                             result.episode));
  if (bad_moments > 0)
    return trip(HealthFault::NonFiniteOptimizerState,
                util::format("{} Adam moment entries are non-finite after "
                             "episode {}",
                             bad_moments, result.episode));
  if (limits_.max_loss > 0.0 && std::abs(result.loss) > limits_.max_loss)
    return trip(HealthFault::LossCeiling,
                util::format("episode {} |loss| {} exceeds ceiling {}",
                             result.episode, std::abs(result.loss),
                             limits_.max_loss));
  if (limits_.max_grad_norm > 0.0 &&
      result.grad_norm > limits_.max_grad_norm)
    return trip(HealthFault::GradNormCeiling,
                util::format("episode {} gradient norm {} exceeds ceiling {}",
                             result.episode, result.grad_norm,
                             limits_.max_grad_norm));
  if (limits_.max_param_norm > 0.0 &&
      params.l2_norm > limits_.max_param_norm)
    return trip(HealthFault::ParamNormCeiling,
                util::format("episode {} parameter norm {} exceeds "
                             "ceiling {}",
                             result.episode, params.l2_norm,
                             limits_.max_param_norm));
  if (limits_.check_epsilon && agent.config().kind == core::AgentKind::DQL) {
    const double eps = agent.epsilon();
    const double lo = std::min(agent.config().epsilon_min,
                               agent.config().epsilon_init);
    const double hi = std::max(agent.config().epsilon_min,
                               agent.config().epsilon_init);
    if (!std::isfinite(eps) || eps < lo || eps > hi)
      return trip(HealthFault::EpsilonOutOfBounds,
                  util::format("episode {} epsilon {} outside schedule "
                               "bounds [{}, {}]",
                               result.episode, eps, lo, hi));
  }
  return report;
}

}  // namespace dras::robust
