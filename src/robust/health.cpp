#include "robust/health.h"

#include <algorithm>
#include <cmath>

#include "core/dras_agent.h"
#include "nn/adam.h"
#include "nn/ops.h"
#include "util/format.h"

namespace dras::robust {

std::string_view to_string(HealthFault fault) noexcept {
  switch (fault) {
    case HealthFault::None:
      return "none";
    case HealthFault::NonFiniteLoss:
      return "non-finite-loss";
    case HealthFault::LossCeiling:
      return "loss-ceiling";
    case HealthFault::NonFiniteReward:
      return "non-finite-reward";
    case HealthFault::NonFiniteGradNorm:
      return "non-finite-grad-norm";
    case HealthFault::GradNormCeiling:
      return "grad-norm-ceiling";
    case HealthFault::NonFiniteParams:
      return "non-finite-params";
    case HealthFault::ParamNormCeiling:
      return "param-norm-ceiling";
    case HealthFault::NonFiniteOptimizerState:
      return "non-finite-optimizer-state";
    case HealthFault::EpsilonOutOfBounds:
      return "epsilon-out-of-bounds";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthLimits limits) : limits_(limits) {}

void HealthMonitor::note_loss(double loss) {
  if (limits_.recent_loss_depth == 0) return;
  if (losses_.size() < limits_.recent_loss_depth) {
    losses_.push_back(loss);
  } else {
    losses_[head_] = loss;
    head_ = (head_ + 1) % losses_.size();
  }
}

void HealthMonitor::note_metric(std::vector<double>& window, double value) {
  if (!limits_.adaptive || limits_.adaptive_window == 0) return;
  if (window.size() >= limits_.adaptive_window)
    window.erase(window.begin());
  window.push_back(value);
}

double HealthMonitor::derived_ceiling(
    const std::vector<double>& window) const {
  if (!limits_.adaptive || window.size() < limits_.adaptive_warmup ||
      window.empty())
    return 0.0;
  // median + k * MAD — both order statistics, so one corrupt spike in
  // the window barely moves the ceiling it is judged against.
  std::vector<double> scratch = window;
  const auto mid = scratch.begin() + scratch.size() / 2;
  std::nth_element(scratch.begin(), mid, scratch.end());
  const double median = *mid;
  for (double& v : scratch) v = std::abs(v - median);
  std::nth_element(scratch.begin(), mid, scratch.end());
  // Floor the MAD so a flat warmup (constant losses) still yields a
  // usable band instead of a zero-width one.
  const double mad =
      std::max(*mid, 0.05 * std::abs(median) + 1e-9);
  return median + limits_.adaptive_k_mad * mad;
}

double HealthMonitor::adaptive_loss_ceiling() const {
  return limits_.max_loss > 0.0 ? 0.0 : derived_ceiling(loss_window_);
}

double HealthMonitor::adaptive_grad_ceiling() const {
  return limits_.max_grad_norm > 0.0 ? 0.0 : derived_ceiling(grad_window_);
}

std::vector<double> HealthMonitor::recent_losses() const {
  std::vector<double> ordered;
  ordered.reserve(losses_.size());
  for (std::size_t i = 0; i < losses_.size(); ++i)
    ordered.push_back(losses_[(head_ + i) % losses_.size()]);
  return ordered;
}

HealthReport HealthMonitor::check(const core::DrasAgent& agent,
                                  const train::EpisodeResult& result) {
  ++checks_done_;
  note_loss(result.loss);
  // Ceilings derive from *prior* history, then the current observation
  // joins the window — a spike never raises the bar it is judged by.
  const double adaptive_loss = adaptive_loss_ceiling();
  const double adaptive_grad = adaptive_grad_ceiling();
  if (std::isfinite(result.loss))
    note_metric(loss_window_, std::abs(result.loss));
  if (std::isfinite(result.grad_norm))
    note_metric(grad_window_, result.grad_norm);

  HealthReport report;
  report.episode = result.episode;
  report.loss = result.loss;
  report.grad_norm = result.grad_norm;
  report.training_reward = result.training_reward;
  report.epsilon = result.epsilon;

  const nn::SpanStats params = nn::span_stats(agent.network().parameters());
  report.param_norm = params.l2_norm;
  report.non_finite_params = params.non_finite;

  // The optimizer's moments are checkpointed alongside the parameters,
  // so they are part of what a "good" snapshot certifies.
  const nn::Adam& optimizer = agent.optimizer();
  const std::size_t bad_moments =
      nn::span_stats(optimizer.first_moment()).non_finite +
      nn::span_stats(optimizer.second_moment()).non_finite;
  report.non_finite_moments = bad_moments;

  const auto trip = [&report](HealthFault fault, std::string detail) {
    report.fault = fault;
    report.detail = std::move(detail);
    return report;
  };

  // Order: the unambiguous corruption signals first (non-finite values),
  // then the magnitude ceilings, then the schedule invariant.
  if (!std::isfinite(result.loss))
    return trip(HealthFault::NonFiniteLoss,
                util::format("episode {} update loss is {}", result.episode,
                             result.loss));
  if (!std::isfinite(result.training_reward))
    return trip(HealthFault::NonFiniteReward,
                util::format("episode {} training reward is {}",
                             result.episode, result.training_reward));
  if (!std::isfinite(result.grad_norm))
    return trip(HealthFault::NonFiniteGradNorm,
                util::format("episode {} update gradient norm is {}",
                             result.episode, result.grad_norm));
  if (params.non_finite > 0)
    return trip(HealthFault::NonFiniteParams,
                util::format("{} of {} network parameters are non-finite "
                             "after episode {}",
                             params.non_finite, params.count,
                             result.episode));
  if (bad_moments > 0)
    return trip(HealthFault::NonFiniteOptimizerState,
                util::format("{} Adam moment entries are non-finite after "
                             "episode {}",
                             bad_moments, result.episode));
  // A static limit > 0 wins; a disabled one falls back to the derived
  // (median + k*MAD) ceiling, which is 0 until adaptive mode has warmed
  // up — 0 keeps the check off either way.
  const double loss_ceiling =
      limits_.max_loss > 0.0 ? limits_.max_loss : adaptive_loss;
  const double grad_ceiling =
      limits_.max_grad_norm > 0.0 ? limits_.max_grad_norm : adaptive_grad;
  if (loss_ceiling > 0.0 && std::abs(result.loss) > loss_ceiling)
    return trip(HealthFault::LossCeiling,
                util::format("episode {} |loss| {} exceeds {}ceiling {}",
                             result.episode, std::abs(result.loss),
                             limits_.max_loss > 0.0 ? "" : "adaptive ",
                             loss_ceiling));
  if (grad_ceiling > 0.0 && result.grad_norm > grad_ceiling)
    return trip(HealthFault::GradNormCeiling,
                util::format("episode {} gradient norm {} exceeds {}ceiling "
                             "{}",
                             result.episode, result.grad_norm,
                             limits_.max_grad_norm > 0.0 ? "" : "adaptive ",
                             grad_ceiling));
  if (limits_.max_param_norm > 0.0 &&
      params.l2_norm > limits_.max_param_norm)
    return trip(HealthFault::ParamNormCeiling,
                util::format("episode {} parameter norm {} exceeds "
                             "ceiling {}",
                             result.episode, params.l2_norm,
                             limits_.max_param_norm));
  if (limits_.check_epsilon && agent.config().kind == core::AgentKind::DQL) {
    const double eps = agent.epsilon();
    const double lo = std::min(agent.config().epsilon_min,
                               agent.config().epsilon_init);
    const double hi = std::max(agent.config().epsilon_min,
                               agent.config().epsilon_init);
    if (!std::isfinite(eps) || eps < lo || eps > hi)
      return trip(HealthFault::EpsilonOutOfBounds,
                  util::format("episode {} epsilon {} outside schedule "
                               "bounds [{}, {}]",
                               result.episode, eps, lo, hi));
  }
  return report;
}

}  // namespace dras::robust
