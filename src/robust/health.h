// Training health invariants (self-healing training, layer 1 of 2).
//
// A divergence — NaN loss, exploding gradients, parameters drifting to
// infinity, a collapsed ε schedule — silently corrupts every episode
// after it, and the three-phase curriculum (paper §V) makes that
// especially costly: phase-2/3 fine-tuning inherits whatever phase 1
// left behind.  HealthMonitor validates cheap per-episode invariants at
// the same boundary the checkpoint cadence uses, so a tripped invariant
// can be answered by rolling back to the last good snapshot (see
// robust/recovery.h, layer 2).
//
// Cost discipline: every check is O(1) over already-computed episode
// telemetry except the parameter and optimizer-moment scans, which are
// one pass each over flat float buffers per episode — the same order of
// work as the checkpoint serializer that runs at the same boundary.
// The scans deliberately cover exactly what that serializer captures
// (parameters + Adam moments): a snapshot certified "good" by a check
// that skipped the moments could itself carry the corruption.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "train/trainer.h"

namespace dras::core {
class DrasAgent;
}  // namespace dras::core

namespace dras::robust {

/// Invariant ceilings.  A limit <= 0 disables that ceiling; non-finite
/// values always trip regardless of limits.
struct HealthLimits {
  /// |loss| ceiling for the episode's last update.
  double max_loss = 1e9;
  /// Gradient-L2-norm ceiling for the episode's last update.  Note the
  /// optimiser clips at AdamConfig::max_grad_norm *before* the update,
  /// so the reported norm is the pre-clip magnitude — this ceiling
  /// should sit well above the clip threshold.
  double max_grad_norm = 0.0;
  /// Parameter-L2-norm ceiling (scanned on the live network).
  double max_param_norm = 1e9;
  /// Require the DQL ε to stay inside [epsilon_min, epsilon_init].
  bool check_epsilon = true;
  /// Depth of the recent-loss ring kept for the diagnostics dump.
  std::size_t recent_loss_depth = 16;

  // --- Adaptive ceilings ---
  //
  // Fixed ceilings are brittle under failure injection: killed and
  // requeued jobs legitimately shift the loss/gradient scale, so a
  // limit tuned on fault-free runs either fires spuriously or never.
  // With `adaptive` set, any magnitude ceiling left disabled (<= 0)
  // is instead derived from the run's own recent telemetry as
  //
  //     median + adaptive_k_mad * MAD
  //
  // over the last `adaptive_window` observations (MAD = median absolute
  // deviation — both robust to the very outliers being hunted).  The
  // derived ceiling only engages once `adaptive_warmup` observations
  // have accumulated; a static limit > 0 always wins over the derived
  // one, so explicit --guard-* flags keep their meaning.

  /// Derive disabled |loss| / gradient-norm ceilings from history.
  bool adaptive = false;
  /// Observations required before a derived ceiling engages.
  std::size_t adaptive_warmup = 16;
  /// Rolling history depth per metric.
  std::size_t adaptive_window = 64;
  /// Ceiling = median + adaptive_k_mad * MAD.
  double adaptive_k_mad = 8.0;
};

enum class HealthFault {
  None,
  NonFiniteLoss,
  LossCeiling,
  NonFiniteReward,
  NonFiniteGradNorm,
  GradNormCeiling,
  NonFiniteParams,
  ParamNormCeiling,
  NonFiniteOptimizerState,
  EpsilonOutOfBounds,
};

[[nodiscard]] std::string_view to_string(HealthFault fault) noexcept;

/// Outcome of one health check: which invariant tripped (if any) and
/// the observed values, for logs, counters and the diagnostics dump.
struct HealthReport {
  HealthFault fault = HealthFault::None;
  std::string detail;        ///< Human-readable "what tripped and by how much".
  std::size_t episode = 0;   ///< EpisodeResult::episode of the checked episode.
  double loss = 0.0;
  double grad_norm = 0.0;
  double param_norm = 0.0;
  std::size_t non_finite_params = 0;
  std::size_t non_finite_moments = 0;  ///< NaN/inf Adam moment entries.
  double training_reward = 0.0;
  double epsilon = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return fault == HealthFault::None;
  }
};

/// Per-episode invariant validation.  Stateless apart from the
/// recent-loss ring (diagnostics context); safe to reuse across runs.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthLimits limits = {});

  /// Validate `result` (and the live network behind `agent`) against
  /// the limits.  Records the loss in the recent-loss ring either way.
  [[nodiscard]] HealthReport check(const core::DrasAgent& agent,
                                   const train::EpisodeResult& result);

  [[nodiscard]] const HealthLimits& limits() const noexcept {
    return limits_;
  }
  /// Losses of the most recently checked episodes, oldest first.
  [[nodiscard]] std::vector<double> recent_losses() const;
  /// Health checks performed so far.
  [[nodiscard]] std::size_t checks_done() const noexcept {
    return checks_done_;
  }

  /// Derived |loss| / gradient-norm ceiling currently in force (0 while
  /// adaptive mode is off, the metric's static limit is set, or the
  /// warmup has not completed).  Exposed for logs and tests.
  [[nodiscard]] double adaptive_loss_ceiling() const;
  [[nodiscard]] double adaptive_grad_ceiling() const;

 private:
  void note_loss(double loss);
  void note_metric(std::vector<double>& window, double value);
  [[nodiscard]] double derived_ceiling(
      const std::vector<double>& window) const;

  HealthLimits limits_;
  std::vector<double> losses_;  // ring, oldest at head_
  std::size_t head_ = 0;
  std::size_t checks_done_ = 0;
  // Adaptive-ceiling history: finite observations only, bounded at
  // adaptive_window, oldest first.
  std::vector<double> loss_window_;  // |loss|
  std::vector<double> grad_window_;  // gradient L2 norm
};

}  // namespace dras::robust
