#include "robust/recovery.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "ckpt/manager.h"
#include "core/dras_agent.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/logging.h"

namespace dras::robust {

namespace {

struct RobustMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& rollbacks = reg.counter("robust.rollbacks");
  obs::Counter& recovery_failures = reg.counter("robust.recovery_failures");

  static RobustMetrics& get() {
    static RobustMetrics metrics;
    return metrics;
  }
};

/// JSON number, with the non-finite values JSON cannot carry rendered
/// as strings ("nan", "inf", "-inf") — diagnostics dumps exist exactly
/// because these values show up.
std::string json_number(double value) {
  if (std::isfinite(value)) return util::format("{}", value);
  if (std::isnan(value)) return "\"nan\"";
  return value > 0 ? "\"inf\"" : "\"-inf\"";
}

}  // namespace

std::string_view to_string(RollbackScope scope) noexcept {
  switch (scope) {
    case RollbackScope::Full:
      return "full";
    case RollbackScope::Params:
      return "params";
  }
  return "unknown";
}

RollbackScope parse_rollback_scope(std::string_view text) {
  if (text == "full") return RollbackScope::Full;
  if (text == "params") return RollbackScope::Params;
  throw std::invalid_argument(util::format(
      "unknown rollback scope \"{}\" (expected full or params)", text));
}

RecoveryPolicy::RecoveryPolicy(RecoveryOptions options,
                               ckpt::CheckpointManager& manager)
    : options_(std::move(options)), manager_(manager) {
  if (!(options_.lr_backoff > 0.0) || options_.lr_backoff > 1.0 ||
      !std::isfinite(options_.lr_backoff))
    throw std::invalid_argument(util::format(
        "RecoveryPolicy lr_backoff must be in (0, 1], got {}",
        options_.lr_backoff));
}

void RecoveryPolicy::apply(const ckpt::RecoveryState& state,
                           core::DrasAgent& agent) {
  agent.optimizer().set_lr_scale(state.lr_scale);
  agent.set_rng_nonce(state.rng_nonce);
}

std::optional<std::filesystem::path> RecoveryPolicy::recover(
    const HealthReport& report, const ckpt::TrainingState& training_state,
    const HealthMonitor* monitor) {
  if (training_state.agent == nullptr)
    throw std::invalid_argument(
        "RecoveryPolicy::recover needs an agent in the training state");
  if (training_state.recovery != &state_)
    throw std::invalid_argument(
        "RecoveryPolicy::recover: training_state.recovery must reference "
        "this policy's state()");
  core::DrasAgent& agent = *training_state.agent;
  RobustMetrics& m = RobustMetrics::get();

  const auto give_up = [&](std::string_view why) {
    m.recovery_failures.add();
    const auto dump = write_diagnostics(report, agent, monitor);
    util::log_warn("divergence unrecoverable ({}): {}{}", why, report.detail,
                   dump ? util::format("; diagnostics at {}", dump->string())
                        : std::string());
  };

  if (attempts_ >= options_.max_rollbacks) {
    give_up(util::format("rollback budget of {} exhausted",
                         options_.max_rollbacks));
    return std::nullopt;
  }

  // The full restore overwrites state_ (training_state.recovery points
  // here) with the snapshot's own rollback history; we then advance it.
  // A params-scope restore touches only the agent, so state_ keeps its
  // live history and the trainer/curriculum move on.
  std::optional<std::filesystem::path> restored;
  try {
    restored = options_.scope == RollbackScope::Params
                   ? restore_params_only(agent)
                   : manager_.restore_latest(training_state);
  } catch (const ckpt::CheckpointError& e) {
    give_up(util::format("no restorable snapshot: {}", e.what()));
    return std::nullopt;
  }
  if (!restored) {
    give_up("checkpoint directory holds no snapshot to roll back to");
    return std::nullopt;
  }

  ++attempts_;
  // The snapshot may predate a rollback this instance already performed
  // (the trainer persists post-rollback, but a repeat divergence can
  // land before that save or the save path may not be in play): never
  // let the restored history rewind the advance, or the retry would be
  // a bit-identical replay of the one that just diverged — same
  // lr_scale, same nonce, the whole budget burned on guaranteed
  // repeats.
  if (applied_ && applied_->rollbacks > state_.rollbacks) state_ = *applied_;
  state_.rollbacks += 1;
  state_.lr_scale *= options_.lr_backoff;
  // One fresh deterministic stream per rollback ever absorbed — the
  // cumulative count, so a retried episode never reuses a nonce even
  // across crash-resume.
  state_.rng_nonce = state_.rollbacks;
  state_.healthy_streak = 0;
  applied_ = state_;
  apply(state_, agent);

  m.rollbacks.add();
  util::log_warn(
      "divergence ({}): rolled back ({}) to {} — attempt {}/{}, lr_scale "
      "{}, rng nonce {}",
      to_string(report.fault), to_string(options_.scope),
      restored->string(), attempts_, options_.max_rollbacks,
      state_.lr_scale, state_.rng_nonce);
  return restored;
}

std::optional<std::filesystem::path> RecoveryPolicy::restore_params_only(
    core::DrasAgent& agent) {
  const std::vector<std::filesystem::path> checkpoints = manager_.list();
  if (checkpoints.empty()) return std::nullopt;
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    try {
      ckpt::load_agent_from_checkpoint(*it, agent);
      return *it;
    } catch (const ckpt::CheckpointError& e) {
      util::log_warn("skipping unreadable checkpoint {}: {}", it->string(),
                     e.what());
    } catch (const util::SerializationError& e) {
      util::log_warn("skipping undecodable checkpoint {}: {}", it->string(),
                     e.what());
    }
  }
  throw ckpt::CheckpointError(util::format(
      "all {} checkpoints in {} failed to restore an agent slice",
      checkpoints.size(), manager_.options().dir.string()));
}

void RecoveryPolicy::note_healthy(core::DrasAgent& agent) {
  if (options_.lr_recover_after == 0) return;
  if (state_.lr_scale >= 1.0) {
    state_.healthy_streak = 0;
    return;
  }
  state_.healthy_streak += 1;
  if (state_.healthy_streak < options_.lr_recover_after) return;
  state_.healthy_streak = 0;
  state_.lr_scale = std::min(1.0, state_.lr_scale / options_.lr_backoff);
  // Keep the monotonic record current so a later rollback compounds
  // from the recovered scale, not the stale post-backoff one.
  if (applied_) applied_ = state_;
  agent.optimizer().set_lr_scale(state_.lr_scale);
  util::log_info(
      "lr recovery: {} healthy episodes since last step, lr_scale back to "
      "{}",
      options_.lr_recover_after, state_.lr_scale);
}

std::optional<std::filesystem::path> RecoveryPolicy::write_diagnostics(
    const HealthReport& report, const core::DrasAgent& agent,
    const HealthMonitor* monitor) const {
  if (options_.diagnostics_path.empty()) return std::nullopt;

  const nn::SpanStats params = nn::span_stats(agent.network().parameters());
  std::ostringstream out;
  out << "{\"fault\":" << util::json::quote(to_string(report.fault))
      << ",\"detail\":" << util::json::quote(report.detail)
      << ",\"episode\":" << report.episode
      << ",\"rollbacks\":" << state_.rollbacks
      << ",\"attempts\":" << attempts_
      << ",\"max_rollbacks\":" << options_.max_rollbacks
      << ",\"lr_scale\":" << json_number(state_.lr_scale)
      << ",\"rng_nonce\":" << state_.rng_nonce
      << ",\"healthy_streak\":" << state_.healthy_streak
      << ",\"loss\":" << json_number(report.loss)
      << ",\"grad_norm\":" << json_number(report.grad_norm)
      << ",\"training_reward\":" << json_number(report.training_reward)
      << ",\"epsilon\":" << json_number(report.epsilon);
  out << ",\"parameters\":{\"count\":" << params.count
      << ",\"non_finite\":" << params.non_finite
      << ",\"l2_norm\":" << json_number(params.l2_norm)
      << ",\"mean\":" << json_number(params.mean)
      << ",\"min\":" << json_number(params.min)
      << ",\"max\":" << json_number(params.max) << '}';
  out << ",\"recent_losses\":[";
  if (monitor != nullptr) {
    bool first = true;
    for (const double loss : monitor->recent_losses()) {
      if (!first) out << ',';
      first = false;
      out << json_number(loss);
    }
  }
  out << "],\"recent_actions\":[";
  bool first = true;
  for (const std::uint32_t action : agent.recent_actions()) {
    if (!first) out << ',';
    first = false;
    out << action;
  }
  out << "]}\n";

  try {
    util::atomic_write_file(options_.diagnostics_path, out.str());
  } catch (const std::exception& e) {
    util::log_warn("cannot write divergence diagnostics {}: {}",
                   options_.diagnostics_path.string(), e.what());
    return std::nullopt;
  }
  return options_.diagnostics_path;
}

void apply_numeric_fault(ckpt::NumericFault fault, core::DrasAgent& agent,
                         train::EpisodeResult& result) {
  switch (fault) {
    case ckpt::NumericFault::NanGrads: {
      // The live gradient buffer is transient — every policy update
      // begins with zero_gradients() — so poisoning it alone would be a
      // no-op.  What an unscrubbed NaN backward pass durably leaves
      // behind is a poisoned optimiser: NaN moments turn every later
      // parameter update into NaN.  Inject exactly that state.
      ckpt::FaultInjector::poison_with_nan(agent.network().gradients());
      nn::Adam& optimizer = agent.optimizer();
      std::vector<float> moments(optimizer.first_moment().begin(),
                                 optimizer.first_moment().end());
      ckpt::FaultInjector::poison_with_nan(moments);
      optimizer.restore(moments, optimizer.second_moment(),
                        optimizer.steps_taken());
      break;
    }
    case ckpt::NumericFault::LossSpike:
      result.loss = ckpt::kInjectedLossSpike;
      break;
    case ckpt::NumericFault::ParamBlowup:
      ckpt::FaultInjector::scale_values(agent.network().parameters(),
                                        ckpt::kInjectedBlowupScale);
      break;
  }
}

}  // namespace dras::robust
