// Divergence recovery (self-healing training, layer 2 of 2).
//
// When a HealthMonitor invariant trips, RecoveryPolicy rolls the run
// back instead of letting corruption compound:
//
//   1. restore the newest readable snapshot through
//      ckpt::CheckpointManager::restore_latest() — the same machinery
//      crash-resume uses, so rollback inherits its determinism contract;
//   2. back off the learning rate (optimizer lr_scale *= lr_backoff),
//      the standard divergence response — smaller steps around the
//      region that blew up;
//   3. perturb the agent's episode RNG stream (a fresh deterministic
//      nonce per rollback) so the retried episode does not replay the
//      exact trajectory that diverged;
//   4. charge a bounded retry budget; when it is exhausted (or no
//      snapshot survives) the policy writes a JSON diagnostics dump via
//      util::atomic_write_file and gives up — the trainer then throws
//      DivergenceError and dras_sim exits with kDivergenceExitCode.
//
// All three effects are recorded in ckpt::RecoveryState (checkpoint
// format v2, "RCVR" section), so a crash *during* recovery resumes with
// the same backoff and the same retry discipline.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>

#include "ckpt/checkpoint.h"
#include "ckpt/fault.h"
#include "robust/health.h"

namespace dras::ckpt {
class CheckpointManager;
}  // namespace dras::ckpt

namespace dras::robust {

/// dras_sim exit code for unrecoverable divergence (retry budget
/// exhausted or no restorable snapshot) — distinct from usage errors
/// (2), crash drills (137) and signal exits (128+signo).
inline constexpr int kDivergenceExitCode = 86;

/// Thrown when training diverged and recovery was impossible, declined
/// (no policy wired) or out of budget.  `diagnostics()` names the dump
/// written before giving up (empty when no policy was involved).
class DivergenceError : public std::runtime_error {
 public:
  explicit DivergenceError(const std::string& what,
                           std::filesystem::path diagnostics = {})
      : std::runtime_error(what), diagnostics_(std::move(diagnostics)) {}

  [[nodiscard]] const std::filesystem::path& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  std::filesystem::path diagnostics_;
};

/// What a divergence rollback restores.
enum class RollbackScope {
  /// The full training state: agent, trainer, curriculum cursor,
  /// convergence window and telemetry all rewind to the snapshot, and
  /// the diverged round is replayed (with a fresh RNG nonce).
  Full,
  /// Parameters only: just the agent slice (network parameters, Adam
  /// moments, exploration schedule) is restored from the newest
  /// readable snapshot; trainer episode accounting, curriculum cursor,
  /// convergence window and telemetry keep their live state.  The
  /// diverged round is still retried (its cursor never committed), but
  /// nothing else rewinds — the snapshot may be several rounds old, and
  /// full scope would discard all of them.  Trades rewind fidelity for
  /// forward progress — useful when divergences are expected noise
  /// (e.g. training under heavy fault injection) rather than rare
  /// catastrophes.
  Params,
};

[[nodiscard]] std::string_view to_string(RollbackScope scope) noexcept;
/// Parse "full" / "params"; throws std::invalid_argument otherwise.
[[nodiscard]] RollbackScope parse_rollback_scope(std::string_view text);

struct RecoveryOptions {
  /// Rollbacks this policy instance may perform before giving up.
  std::size_t max_rollbacks = 3;
  /// How much state a rollback restores (--rollback-scope).
  RollbackScope scope = RollbackScope::Full;
  /// Per-rollback learning-rate multiplier (exponential backoff).
  double lr_backoff = 0.5;
  /// Healthy episodes after a rollback before one geometric LR recovery
  /// step (lr_scale /= lr_backoff, capped at 1.0).  0 disables recovery
  /// decay: a backed-off LR then stays backed off for the rest of the
  /// run, the pre-existing behaviour.
  std::size_t lr_recover_after = 0;
  /// Where the give-up diagnostics dump is written.  Empty = no dump.
  std::filesystem::path diagnostics_path;
};

class RecoveryPolicy {
 public:
  /// `manager` supplies the snapshots rolled back to (non-owning; must
  /// outlive the policy).
  RecoveryPolicy(RecoveryOptions options, ckpt::CheckpointManager& manager);

  [[nodiscard]] const RecoveryOptions& options() const noexcept {
    return options_;
  }
  /// The persisted recovery slice: wire this into the TrainingState the
  /// trainer saves/restores so rollback discipline survives crashes.
  [[nodiscard]] ckpt::RecoveryState& state() noexcept { return state_; }
  [[nodiscard]] const ckpt::RecoveryState& state() const noexcept {
    return state_;
  }
  /// Rollbacks performed by this instance (the budget meter; the
  /// cumulative count across resumes lives in state().rollbacks).
  [[nodiscard]] std::size_t attempts() const noexcept { return attempts_; }

  /// Respond to a tripped invariant: restore the newest readable
  /// snapshot into `training_state`, bump the rollback counters, back
  /// off the LR and perturb the agent's episode stream.  Returns the
  /// restored snapshot's path, or nullopt when the budget is exhausted
  /// or no snapshot could be restored — in which case the diagnostics
  /// dump (if configured) has been written.
  ///
  /// `training_state.agent` must be set and `training_state.recovery`
  /// must point at this policy's state() (the restore overwrites it
  /// with the snapshot's own rollback history before it is advanced).
  /// The advance is monotonic across this instance's lifetime: when the
  /// restored snapshot predates a rollback already performed (nothing
  /// was saved in between), the backoff compounds from the in-memory
  /// history instead of replaying the previous retry bit-for-bit.
  [[nodiscard]] std::optional<std::filesystem::path> recover(
      const HealthReport& report, const ckpt::TrainingState& training_state,
      const HealthMonitor* monitor);

  /// Credit one healthy committed episode toward LR recovery.  After
  /// options().lr_recover_after consecutive healthy episodes with
  /// lr_scale below 1.0, one backoff step is undone geometrically
  /// (lr_scale /= lr_backoff, capped at 1.0) and applied to `agent`'s
  /// optimiser; the streak then restarts so full recovery from k
  /// rollbacks takes k * lr_recover_after healthy episodes.  No-op when
  /// lr_recover_after is 0 or lr_scale is already 1.0.  recover()
  /// resets the streak.
  void note_healthy(core::DrasAgent& agent);

  /// Re-apply the persisted recovery effects to a freshly restored
  /// agent: LR backoff onto its optimiser, RNG nonce onto its episode
  /// stream.  Used after every restore — rollback and --resume alike —
  /// because neither lives in the "ADAM"/"AGNT" sections.
  static void apply(const ckpt::RecoveryState& state,
                    core::DrasAgent& agent);

  /// Write the give-up diagnostics dump (JSON, atomic): the tripped
  /// invariant, rollback history, parameter statistics, recent losses
  /// and the agent's last actions.  Returns the path written, or
  /// nullopt when diagnostics_path is empty or the write failed.
  std::optional<std::filesystem::path> write_diagnostics(
      const HealthReport& report, const core::DrasAgent& agent,
      const HealthMonitor* monitor) const;

 private:
  /// Params-scope restore: walk the manager's checkpoints newest-first
  /// and load only the agent slice of the first readable one.  Mirrors
  /// restore_latest()'s degradation contract (skip unreadable files,
  /// throw when checkpoints exist but none loads, nullopt when the
  /// directory is empty).
  std::optional<std::filesystem::path> restore_params_only(
      core::DrasAgent& agent);

  RecoveryOptions options_;
  ckpt::CheckpointManager& manager_;
  ckpt::RecoveryState state_;
  /// The state the last rollback advanced to.  restore_latest()
  /// overwrites state_ with the snapshot's history; when that snapshot
  /// predates this record, the next advance continues from here so
  /// consecutive divergences with no intervening save still compound
  /// the backoff and never reuse a nonce.
  std::optional<ckpt::RecoveryState> applied_;
  std::size_t attempts_ = 0;
};

/// Apply a drill fault to live training state (the sabotage hook behind
/// `dras_sim --inject-numeric-fault` and tests/robust): NanGrads poisons
/// the gradient pathway (gradient buffer + the optimiser's first
/// moment, the state an unscrubbed NaN backward pass leaves behind),
/// ParamBlowup scales the network parameters by
/// ckpt::kInjectedBlowupScale, LossSpike rewrites `result.loss` to
/// ckpt::kInjectedLossSpike.
void apply_numeric_fault(ckpt::NumericFault fault, core::DrasAgent& agent,
                         train::EpisodeResult& result);

}  // namespace dras::robust
