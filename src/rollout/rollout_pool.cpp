#include "rollout/rollout_pool.h"

#include <chrono>
#include <exception>
#include <future>
#include <optional>

#include "core/dras_agent.h"
#include "exec/parallel_runner.h"
#include "exec/thread_pool.h"
#include "nn/grad_accumulator.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "util/format.h"
#include "util/logging.h"

namespace dras::rollout {

namespace {

struct RolloutMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& rounds = reg.counter("rollout.rounds");
  obs::Counter& episodes = reg.counter("rollout.episodes");
  obs::Counter& updates_reduced = reg.counter("rollout.updates_reduced");
  obs::HdrHistogram& round_wall_s = reg.hdr("rollout.round_wall_s");
  obs::HdrHistogram& slot_wall_s = reg.hdr("rollout.slot_wall_s");

  static RolloutMetrics& get() {
    static RolloutMetrics metrics;
    return metrics;
  }
};

/// Everything a slot hands back to the reduction: its episode result,
/// the finished clone (baseline/instance/telemetry merges read it), the
/// deferred gradients and the buffered metrics.
struct SlotOutcome {
  train::EpisodeResult result;
  std::unique_ptr<core::DrasAgent> clone;
  nn::GradientAccumulator grads;
  obs::MetricShard shard;
};

}  // namespace

RolloutPool::RolloutPool(RolloutOptions options)
    : options_(options),
      workers_(options.workers == 0 ? exec::default_concurrency()
                                    : options.workers),
      batch_(options.batch == 0 ? workers_ : options.batch) {}

RolloutPool::~RolloutPool() = default;

RoundResult RolloutPool::collect(core::DrasAgent& agent, int total_nodes,
                                 std::span<const train::Jobset> slots,
                                 std::size_t first_episode) {
  RoundResult round;
  if (slots.empty()) return round;
  obs::EventTracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::default_tracer();
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start =
      tracer != nullptr ? tracer->wall_seconds() : 0.0;

  const std::size_t param_count = agent.network().parameter_count();
  const std::size_t instances_start = agent.instances_seen();
  const std::uint64_t recovery_nonce = agent.rng_nonce();
  std::optional<core::PGPolicy::BaselineSnapshot> baseline;
  if (agent.pg() != nullptr) baseline = agent.pg()->baseline_snapshot();

  // The enclosing round span (Trainer::run) on the submitting thread;
  // slot spans parent to it across the pool with the slot index as the
  // stable child ordinal, so span ids are identical at any worker count.
  const obs::SpanContext round_ctx = obs::Span::current();
  std::vector<SlotOutcome> outcomes(slots.size());
  const auto run_slot = [&](std::size_t i) {
    SlotOutcome& slot = outcomes[i];
    const auto slot_start = std::chrono::steady_clock::now();
    slot.grads = nn::GradientAccumulator(param_count);
    // Everything the episode emits is buffered per slot and merged in
    // slot order at the round boundary.
    obs::ShardScope shard_scope(slot.shard);
    obs::Span slot_span(
        "slot", round_ctx, i,
        {obs::targ("episode", static_cast<std::uint64_t>(first_episode + i)),
         obs::targ("jobset", slots[i].name)});
    slot.clone = agent.clone_agent();
    // One stream per global episode index, derived from the recovery
    // nonce: stable across worker counts, and a rolled-back round
    // retries with fresh trajectories because the nonce advanced.
    // Nonce 0 selects the agent's legacy serial stream, so avoid it.
    std::uint64_t nonce =
        exec::task_seed(recovery_nonce, "rollout", first_episode + i);
    if (nonce == 0) nonce = 1;
    slot.clone->set_rng_nonce(nonce);
    slot.clone->set_training(true);
    slot.clone->set_gradient_sink(&slot.grads);
    sim::Simulator simulator(total_nodes);
    if (options_.faults.enabled()) {
      // One failure stream per global episode index — the serial
      // trainer path derives the identical stream for this episode, so
      // worker count never changes which nodes fail when.
      sim::FaultConfig faults = options_.faults;
      faults.seed =
          exec::task_seed(options_.faults.seed, "fault", first_episode + i);
      simulator.set_fault_config(faults);
    }
    const sim::SimulationResult sim_result =
        simulator.run(slots[i].trace, *slot.clone);
    slot.clone->set_gradient_sink(nullptr);

    train::EpisodeResult& result = slot.result;
    result.faults = sim_result.faults;
    result.episode = first_episode + i;
    result.jobset = slots[i].name;
    result.phase = slots[i].phase;
    result.training_reward = slot.clone->episode_reward();
    result.loss = slot.grads.mean_loss();
    result.grad_norm = slot.grads.reduced_norm();
    result.epsilon = slot.clone->epsilon();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      slot_start)
            .count();
    // Buffered in this slot's shard; merged in slot order below, so the
    // registry content stays independent of worker count.
    RolloutMetrics::get().slot_wall_s.observe(result.wall_seconds);
  };

  if (workers_ <= 1 || slots.size() <= 1) {
    for (std::size_t i = 0; i < slots.size(); ++i) run_slot(i);
  } else {
    if (pool_ == nullptr)
      pool_ = std::make_unique<exec::ThreadPool>(
          exec::ThreadPool::Options{workers_, 0});
    std::vector<std::future<void>> futures;
    futures.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      futures.push_back(pool_->submit(
          [&run_slot, i] { run_slot(i); },
          util::format("rollout {}", first_episode + i)));
    }
    // Drain in submission order; report the lowest-indexed failure,
    // matching what the serial loop would throw.
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  // --- Round reduction, strictly in ascending slot order. ---
  nn::GradientAccumulator reduced(param_count);
  std::size_t instances_total = 0;
  round.episodes.reserve(slots.size());
  for (SlotOutcome& slot : outcomes) {
    slot.shard.merge();
    reduced.merge(slot.grads);
    instances_total += slot.clone->instances_seen() - instances_start;
    if (agent.pg() != nullptr)
      agent.pg()->merge_baseline_delta(*baseline, *slot.clone->pg());
    agent.adopt_episode_telemetry(*slot.clone);
    round.episodes.push_back(std::move(slot.result));
  }
  std::vector<float> gradient(param_count, 0.0f);
  reduced.reduce(gradient);
  round.updates = reduced.updates();
  round.instances = instances_total;
  round.mean_loss = reduced.mean_loss();
  round.grad_norm = reduced.reduced_norm();
  agent.apply_reduced_update(gradient, reduced.mean_loss(),
                             reduced.updates());
  agent.advance_instances(instances_total);

  RolloutMetrics& m = RolloutMetrics::get();
  m.rounds.add();
  m.episodes.add(slots.size());
  m.updates_reduced.add(round.updates);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  m.round_wall_s.observe(wall_seconds);
  if (tracer != nullptr) {
    tracer->complete(
        util::format("round {}..{}", first_episode,
                     first_episode + slots.size() - 1),
        trace_start, tracer->wall_seconds() - trace_start,
        {obs::targ("episodes", static_cast<std::uint64_t>(slots.size())),
         obs::targ("updates", static_cast<std::uint64_t>(round.updates)),
         obs::targ("mean_loss", round.mean_loss),
         obs::targ("grad_norm", round.grad_norm)},
        obs::kTrainPid);
  }
  util::log_info(
      "rollout round: episodes {}..{} on {} workers, {} updates reduced, "
      "mean loss {:.4f}",
      first_episode, first_episode + slots.size() - 1, workers_,
      round.updates, round.mean_loss);
  return round;
}

}  // namespace dras::rollout
