// Data-parallel rollout engine: synchronous multi-worker episode
// collection with deterministic gradient reduction.
//
// One *round* rolls out B episodes (B = RolloutOptions::batch) on B
// private clones of the training agent, all starting from the same
// round-start parameters, then applies ONE batched optimiser update to
// the original — the synchronous data-parallel pattern DD-PPO applies
// to HPC scheduling.  Mechanics per slot i of a round starting at
// global episode index E:
//
//   1. clone_agent() — a deep copy, so the episode is a pure function
//      of (round-start parameters, jobset trace, slot stream);
//   2. the clone's episode stream is exec::task_seed(nonce, "rollout",
//      E + i) where `nonce` is the agent's recovery nonce — stable
//      across worker counts, fresh after every divergence rollback;
//   3. the clone is armed with a per-slot nn::GradientAccumulator: its
//      policy updates compute batch-mean gradients exactly as the
//      legacy loop would, but deposit them instead of stepping;
//   4. every metric the episode emits lands in a per-slot
//      obs::MetricShard instead of the shared registry.
//
// At the round boundary, on the calling thread, strictly in ascending
// slot order (the reduction-order contract — float addition is not
// associative, so the order must be pinned to the task index, never to
// completion order): merge each slot's telemetry shard, gradient
// accumulator, PG-baseline delta and instance count, then apply the
// single reduced update.  Consequences proven by tests/rollout:
//
//   * post-update parameters are byte-identical for any worker count
//     at a fixed batch;
//   * workers = 1 with batch = 1 routes through the legacy per-episode
//     trainer path, byte-identical to a run with no pool at all;
//   * rounds are atomic with respect to checkpoints and health checks
//     (the trainer only saves/checks at round boundaries), so
//     divergence rollback and crash-resume work unchanged.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault.h"
#include "train/trainer.h"

namespace dras::exec {
class ThreadPool;
}  // namespace dras::exec

namespace dras::obs {
class EventTracer;
}  // namespace dras::obs

namespace dras::rollout {

struct RolloutOptions {
  /// Concurrent rollout threads; 0 = hardware concurrency.  A pure
  /// throughput knob: it never changes a single result bit.
  std::size_t workers = 1;
  /// Episodes per round — the unit of the batched update and the only
  /// knob that affects the math.  0 = same as the resolved worker
  /// count; reproducible runs across machines should pin it explicitly
  /// when workers is 0.  1 routes through the legacy per-episode path.
  std::size_t batch = 0;
  /// Round events land here (non-owning); obs::default_tracer() when
  /// null.
  obs::EventTracer* tracer = nullptr;
  /// Failure scenario for the rolled-out episodes (sim/fault.h).  Slot i
  /// of a round starting at global episode E derives its failure stream
  /// as exec::task_seed(faults.seed, "fault", E + i) — the same
  /// derivation the serial trainer path uses for episode E + i — so
  /// fault runs stay byte-identical at any worker count.  Keep this in
  /// sync with TrainerOptions::faults.  Disabled by default.
  sim::FaultConfig faults;
};

/// What one round produced: per-slot episode results (slot order) plus
/// the reduced update that was applied.
struct RoundResult {
  std::vector<train::EpisodeResult> episodes;
  std::size_t updates = 0;    ///< Deferred clone updates reduced into one step.
  std::size_t instances = 0;  ///< Scheduling instances the clones consumed.
  double mean_loss = 0.0;     ///< Mean loss across the deferred updates.
  double grad_norm = 0.0;     ///< L2 norm of the applied reduced gradient.
};

class RolloutPool {
 public:
  explicit RolloutPool(RolloutOptions options = {});
  ~RolloutPool();

  RolloutPool(const RolloutPool&) = delete;
  RolloutPool& operator=(const RolloutPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept { return workers_; }
  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }

  /// Roll out `slots` (episode indices first_episode, first_episode+1,
  /// ...) on clones of `agent` and apply one reduced update to it.
  /// Results come back in slot order regardless of scheduling;
  /// validation fields are left zero for the caller to stamp.  `agent`
  /// must outlive the call and is mutated only on the calling thread,
  /// after every slot finished.
  RoundResult collect(core::DrasAgent& agent, int total_nodes,
                      std::span<const train::Jobset> slots,
                      std::size_t first_episode);

 private:
  RolloutOptions options_;
  std::size_t workers_;
  std::size_t batch_;
  /// Lazily created on the first parallel round; reused across rounds.
  std::unique_ptr<exec::ThreadPool> pool_;
};

}  // namespace dras::rollout
