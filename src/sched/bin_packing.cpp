#include "sched/bin_packing.h"

namespace dras::sched {

void BinPacking::schedule(sim::SchedulingContext& ctx) {
  while (true) {
    const sim::Job* best = nullptr;
    for (const sim::Job* job : ctx.queue()) {
      if (!ctx.cluster().fits(job->size)) continue;
      // Largest runnable first; arrival order breaks ties (queue order).
      if (best == nullptr || job->size > best->size) best = job;
    }
    if (best == nullptr) break;
    ctx.start_now(best->id);
  }
}

}  // namespace dras::sched
