// BinPacking heuristic (paper §IV-A, after Tetris-style multi-resource
// packing): iteratively start the *largest runnable* job — the biggest job
// whose size fits the currently free nodes — until nothing more fits.
//
// No reservations: large jobs can be skipped over indefinitely by smaller
// arrivals, which is exactly the starvation behaviour Fig. 7 demonstrates.
#pragma once

#include <memory>

#include "sim/scheduler.h"

namespace dras::sched {

class BinPacking final : public sim::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "BinPacking";
  }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<BinPacking>(*this);
  }
};

}  // namespace dras::sched
