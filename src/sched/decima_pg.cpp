#include "sched/decima_pg.h"

#include <cassert>

#include "core/window.h"

namespace dras::sched {

DecimaPG::DecimaPG(const DecimaConfig& config)
    : config_(config),
      reward_(config.reward_kind, config.reward_weights),
      encoder_(config.total_nodes, config.time_scale),
      rng_(util::derive_seed(config.seed, "decima")) {
  core::PGConfig pg_cfg;
  pg_cfg.net.input_rows =
      2 * config.window + static_cast<std::size_t>(config.total_nodes);
  pg_cfg.net.fc1 = config.fc1;
  pg_cfg.net.fc2 = config.fc2;
  pg_cfg.net.outputs = config.window;
  pg_cfg.adam = config.adam;
  policy_ = std::make_unique<core::PGPolicy>(pg_cfg, config.seed);
}

std::unique_ptr<sim::Scheduler> DecimaPG::clone() const {
  auto copy = std::make_unique<DecimaPG>(config_);
  *copy->policy_ = *policy_;
  copy->rng_ = rng_;
  copy->training_ = training_;
  copy->episode_reward_ = episode_reward_;
  copy->instances_seen_ = instances_seen_;
  return copy;
}

void DecimaPG::begin_episode() {
  episode_reward_ = 0.0;
  // Restart the sampling stream: a trajectory is a deterministic function
  // of (parameters, trace, seed).
  rng_ = util::Rng(util::derive_seed(config_.seed, "decima"));
}

void DecimaPG::end_episode() {
  if (training_) policy_->update();
}

void DecimaPG::schedule(sim::SchedulingContext& ctx) {
  while (true) {
    std::vector<sim::Job*> runnable;
    for (sim::Job* job : ctx.queue())
      if (ctx.cluster().fits(job->size)) runnable.push_back(job);
    if (runnable.empty()) break;

    const auto window = core::truncate_window(runnable, config_.window);
    encoder_.encode_window(ctx, window, config_.window, encode_scratch_);
    // Stochastic policy at training and evaluation time (§III-B).
    const std::size_t action =
        policy_->sample_action(encode_scratch_, window.size(), rng_);
    const sim::Job* job = window[action];
    const bool ok = ctx.start_now(job->id);
    assert(ok);
    (void)ok;
    const double reward = reward_.step_reward(ctx, *job);
    episode_reward_ += reward;
    if (training_)
      policy_->record(encode_scratch_, window.size(), action, reward);
  }

  ++instances_seen_;
  if (training_ &&
      instances_seen_ % static_cast<std::size_t>(config_.update_every) == 0)
    policy_->update();
}

}  // namespace dras::sched
