// Decima-PG baseline (paper §IV-A): the modified Decima agent — graph
// neural network dropped, DRAS's state representation adopted — i.e. a
// flat policy-gradient scheduler *without* the hierarchical two-level
// structure.  It selects jobs for immediate execution only: no resource
// reservation and no backfilling, which is precisely why it starves
// large jobs (Fig. 7).
//
// Action space: a W-slot window over the *runnable* jobs (those that fit
// the free nodes) in arrival order; the scheduling instance ends when no
// job is runnable.
#pragma once

#include <memory>

#include "core/pg_policy.h"
#include "core/reward.h"
#include "core/state_encoder.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace dras::sched {

struct DecimaConfig {
  int total_nodes = 0;
  std::size_t window = 50;
  std::size_t fc1 = 0;
  std::size_t fc2 = 0;
  double time_scale = 86400.0;
  core::RewardKind reward_kind = core::RewardKind::Capability;
  core::RewardWeights reward_weights;
  int update_every = 10;
  nn::AdamConfig adam;
  std::uint64_t seed = 1;
};

class DecimaPG final : public sim::Scheduler {
 public:
  explicit DecimaPG(const DecimaConfig& config);

  [[nodiscard]] std::string_view name() const override { return "Decima-PG"; }
  void begin_episode() override;
  void end_episode() override;
  void schedule(sim::SchedulingContext& ctx) override;
  /// Deep copy: network parameters, optimiser moments, RNG position,
  /// update cadence (instances_seen_) and training flag all carry over.
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override;

  void set_training(bool enabled) noexcept { training_ = enabled; }
  [[nodiscard]] bool training() const noexcept { return training_; }
  [[nodiscard]] double episode_reward() const noexcept {
    return episode_reward_;
  }
  [[nodiscard]] core::PGPolicy& policy() noexcept { return *policy_; }

 private:
  DecimaConfig config_;
  core::RewardFunction reward_;
  core::StateEncoder encoder_;
  std::unique_ptr<core::PGPolicy> policy_;
  util::Rng rng_;
  bool training_ = true;
  double episode_reward_ = 0.0;
  std::size_t instances_seen_ = 0;
  std::vector<float> encode_scratch_;
};

}  // namespace dras::sched
