#include "sched/fair_share.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

namespace dras::sched {

namespace {

/// A job's requested claim on the machine, in node-seconds — what DRR
/// deficits are spent on and what WFQ finish tags advance by.
double job_cost(const sim::Job& job) {
  return static_cast<double>(job.size) * job.runtime_estimate;
}

/// Queued, non-reserved jobs grouped per user (arrival order within a
/// user; std::map keeps users in ascending-id rotation order).
std::map<int, std::vector<sim::Job*>> by_user(
    const sim::SchedulingContext& ctx) {
  std::map<int, std::vector<sim::Job*>> users;
  for (sim::Job* job : ctx.queue())
    if (!ctx.is_reserved(job->id)) users[job->user_id].push_back(job);
  return users;
}

/// The map entry strictly after `cursor` in wrap-around ascending order.
template <typename Map>
typename Map::iterator rotate_from(Map& users, int cursor) {
  auto it = users.upper_bound(cursor);
  if (it == users.end()) it = users.begin();
  return it;
}

/// Start `job` through the EASY rules of the current instance.
bool try_start(sim::SchedulingContext& ctx, const sim::Job& job) {
  return ctx.reservation().active() ? ctx.backfill(job.id)
                                    : ctx.start_now(job.id);
}

}  // namespace

// ---------------------------------------------------------------------------
// UserRoundRobin
// ---------------------------------------------------------------------------

void UserRoundRobin::schedule(sim::SchedulingContext& ctx) {
  while (!ctx.reservation().full()) {
    auto users = by_user(ctx);
    if (users.empty()) break;
    const auto it = rotate_from(users, cursor_);
    sim::Job* target = it->second.front();
    if (try_start(ctx, *target)) {
      cursor_ = it->first;
      continue;
    }
    if (!ctx.reserve(target->id)) break;  // racing full ledger
    cursor_ = it->first;
  }
  if (!ctx.reservation().active()) return;
  // Backfill keeps rotating across users too.
  while (true) {
    const auto candidates = ctx.backfill_candidates();
    if (candidates.empty()) break;
    std::map<int, sim::Job*> heads;
    for (sim::Job* job : candidates) heads.try_emplace(job->user_id, job);
    const auto it = rotate_from(heads, cursor_);
    if (!ctx.backfill(it->second->id)) break;
    cursor_ = it->first;
  }
}

// ---------------------------------------------------------------------------
// DeficitRoundRobin
// ---------------------------------------------------------------------------

void DeficitRoundRobin::schedule(sim::SchedulingContext& ctx) {
  // Derive the default quantum from the first queue this episode sees:
  // the mean job cost, so a typical user starts one typical job per
  // rotation.
  if (quantum_ <= 0.0 && derived_quantum_ <= 0.0) {
    double total = 0.0;
    for (const sim::Job* job : ctx.queue()) total += job_cost(*job);
    if (!ctx.queue().empty())
      derived_quantum_ = total / static_cast<double>(ctx.queue().size());
  }
  const double quantum =
      quantum_ > 0.0 ? quantum_
                     : (derived_quantum_ > 0.0 ? derived_quantum_ : 1.0);

  bool progress = true;
  bool fast_forwarded = false;
  while (progress && !ctx.reservation().full()) {
    progress = false;
    auto users = by_user(ctx);
    if (users.empty()) break;
    // Deficits persist only while a user stays backlogged (classic DRR).
    for (auto it = deficit_.begin(); it != deficit_.end();) {
      if (!users.contains(it->first)) it = deficit_.erase(it);
      else ++it;
    }
    // One full rotation starting after the cursor.
    std::vector<int> order;
    order.reserve(users.size());
    for (auto it = rotate_from(users, cursor_); order.size() < users.size();
         ++it) {
      if (it == users.end()) it = users.begin();
      order.push_back(it->first);
    }
    for (const int user : order) {
      double& deficit = deficit_[user];
      deficit += quantum;
      for (sim::Job* job : users[user]) {
        const double cost = job_cost(*job);
        if (deficit < cost) break;
        if (!try_start(ctx, *job)) break;
        deficit -= cost;
        cursor_ = user;
        progress = true;
      }
      if (ctx.reservation().full()) break;
    }
    // Work-conserving fast-forward: classic DRR keeps rotating while the
    // link is idle, so when a full rotation starts nothing but some
    // user's head job physically fits, grant every backlogged user the
    // quanta of the rotations the cheapest such start still needs (in
    // one step — idle rotations take no wall-clock time).  At most once
    // per instance, so a start rejected for non-deficit reasons (EASY
    // legality) cannot loop.
    if (!progress && !fast_forwarded) {
      double rotations = std::numeric_limits<double>::infinity();
      for (const auto& [user, jobs] : users) {
        const sim::Job* head = jobs.front();
        if (!ctx.cluster().fits(head->size)) continue;
        const double short_by = job_cost(*head) - deficit_[user];
        rotations =
            std::min(rotations, std::max(1.0, std::ceil(short_by / quantum)));
      }
      if (std::isfinite(rotations)) {
        for (const auto& [user, jobs] : users)
          deficit_[user] += rotations * quantum;
        fast_forwarded = true;
        progress = true;
      }
    }
  }
  // EASY guarantee: the rotation-next blocked job gets the reservation.
  if (!ctx.reservation().full()) {
    auto users = by_user(ctx);
    if (!users.empty()) {
      const auto it = rotate_from(users, cursor_);
      (void)ctx.reserve(it->second.front()->id);
    }
  }
  if (!ctx.reservation().active()) return;
  // Backfill in rotation order, spending accrued deficit only: a user
  // whose balance does not cover the job waits for later rotations, so
  // heavy users cannot jump the rotation through the backfill side door.
  while (true) {
    const auto candidates = ctx.backfill_candidates();
    if (candidates.empty()) break;
    std::map<int, sim::Job*> heads;
    for (sim::Job* job : candidates) heads.try_emplace(job->user_id, job);
    bool started = false;
    auto it = rotate_from(heads, cursor_);
    for (std::size_t seen = 0; seen < heads.size(); ++seen, ++it) {
      if (it == heads.end()) it = heads.begin();
      const double cost = job_cost(*it->second);
      if (deficit_[it->first] < cost) continue;
      if (!ctx.backfill(it->second->id)) continue;
      deficit_[it->first] -= cost;
      cursor_ = it->first;
      started = true;
      break;
    }
    if (!started) break;
  }
}

// ---------------------------------------------------------------------------
// WeightedFairQueuing
// ---------------------------------------------------------------------------

void WeightedFairQueuing::schedule(sim::SchedulingContext& ctx) {
  // Virtual finish tag of a queued job under SCFQ (self-clocked fair
  // queuing: the system virtual time is the tag of the job last served).
  const auto finish_tag = [&](const sim::Job& job) {
    double last = virtual_time_;
    if (const auto it = last_finish_.find(job.user_id);
        it != last_finish_.end())
      last = std::max(last, it->second);
    return last + job_cost(job) / weight(job.user_id);
  };
  // Smallest finish tag among `jobs`.  Tags tie whenever a freshly
  // backlogged user re-enters at the system virtual time, so ties go to
  // the user served least recently (smallest last finish), then arrival
  // order — otherwise equal-cost floods resolve ties by arrival and the
  // policy degenerates to FCFS.
  const auto last_finish_of = [&](int user) {
    const auto it = last_finish_.find(user);
    return it != last_finish_.end() ? it->second : 0.0;
  };
  const auto next_job = [&](const std::vector<sim::Job*>& jobs)
      -> std::pair<sim::Job*, double> {
    sim::Job* best = nullptr;
    double best_tag = 0.0;
    for (sim::Job* job : jobs) {
      if (ctx.is_reserved(job->id)) continue;
      const double tag = finish_tag(*job);
      if (best == nullptr || tag < best_tag ||
          (tag == best_tag &&
           last_finish_of(job->user_id) < last_finish_of(best->user_id))) {
        best = job;
        best_tag = tag;
      }
    }
    return {best, best_tag};
  };
  const auto commit = [&](const sim::Job& job, double tag) {
    last_finish_[job.user_id] = tag;
    virtual_time_ = tag;
  };

  while (!ctx.reservation().full()) {
    const auto [target, tag] = next_job(ctx.queue());
    if (target == nullptr) break;
    if (try_start(ctx, *target)) {
      commit(*target, tag);
      continue;
    }
    if (!ctx.reserve(target->id)) break;  // racing full ledger
    // A reservation is this policy's commitment to serve the job next:
    // advance the virtual clock now, since the automatic reservation
    // start never reports back to the scheduler.
    commit(*target, tag);
  }
  if (!ctx.reservation().active()) return;
  while (true) {
    const auto candidates = ctx.backfill_candidates();
    if (candidates.empty()) break;
    const auto [target, tag] = next_job(candidates);
    if (target == nullptr || !ctx.backfill(target->id)) break;
    commit(*target, tag);
  }
}

}  // namespace dras::sched
