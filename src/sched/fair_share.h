// Fair-share comparison schedulers (DESIGN.md §12).
//
// Three classical multi-tenant policies, all built on the same
// EASY-backfilling skeleton as FcfsEasy (start in policy order while jobs
// fit, reserve the first blocked job, then backfill) so they inherit its
// progress guarantee — only the *order* in which queued jobs are
// considered changes:
//
//   UserRoundRobin     — users take turns; within a user, arrival order.
//   DeficitRoundRobin  — each user accrues a node-second quantum per
//                        rotation and spends it to start (or backfill)
//                        jobs, so heavy jobs wait for their user's
//                        deficit to build up while cheaper users go
//                        first.  Idle-machine rotations fast-forward in
//                        one step (classic DRR rotates instantly on an
//                        idle link), keeping the policy work-conserving.
//   WeightedFairQueuing — jobs are ordered by virtual finish time
//                        max(V, last_finish[user]) + cost / weight[user],
//                        the classic WFQ service curve; tags tie toward
//                        the least-recently-served user.
//
// Reservations are system commitments the simulator honours on its own,
// so the policies account for them at decision time (cursor rotation,
// WFQ virtual-clock commit) rather than when the reserved job starts.
//
// All per-episode state (rotation cursor, deficits, virtual clocks) is
// reset in begin_episode() and copied by clone(), so the policies run
// deterministically under exec::ParallelEvaluator.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace dras::sched {

/// Round-robin across users, arrival order within a user.
class UserRoundRobin final : public sim::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "User-RR"; }
  void begin_episode() override { cursor_ = sim::kUnknownUser; }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<UserRoundRobin>(*this);
  }

 private:
  int cursor_ = sim::kUnknownUser;  ///< Last user served; rotation resumes
                                    ///< at the next larger user id.
};

/// Deficit round robin over per-user node-second budgets.
class DeficitRoundRobin final : public sim::Scheduler {
 public:
  /// `quantum` is the node-second budget a user accrues per rotation; 0
  /// derives one mean-job quantum from the first scheduling instance
  /// (mean size × mean estimate over the visible queue).
  explicit DeficitRoundRobin(double quantum = 0.0) : quantum_(quantum) {}

  [[nodiscard]] std::string_view name() const override { return "DRR"; }
  void begin_episode() override {
    deficit_.clear();
    cursor_ = sim::kUnknownUser;
    derived_quantum_ = 0.0;
  }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<DeficitRoundRobin>(*this);
  }

 private:
  double quantum_;
  double derived_quantum_ = 0.0;
  std::map<int, double> deficit_;  ///< user → unspent node-seconds.
  int cursor_ = sim::kUnknownUser;
};

/// Weighted fair queuing by virtual finish time.
class WeightedFairQueuing final : public sim::Scheduler {
 public:
  /// Users absent from `weights` get weight 1.  Larger weight = larger
  /// entitled share (virtual finish times advance more slowly).
  explicit WeightedFairQueuing(std::map<int, double> weights = {})
      : weights_(std::move(weights)) {}

  [[nodiscard]] std::string_view name() const override { return "WFQ"; }
  void begin_episode() override {
    virtual_time_ = 0.0;
    last_finish_.clear();
  }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<WeightedFairQueuing>(*this);
  }

 private:
  [[nodiscard]] double weight(int user) const {
    const auto it = weights_.find(user);
    return it != weights_.end() ? it->second : 1.0;
  }

  std::map<int, double> weights_;
  double virtual_time_ = 0.0;
  std::map<int, double> last_finish_;  ///< user → last virtual finish.
};

}  // namespace dras::sched
