#include "sched/fcfs_easy.h"

namespace dras::sched {

void FcfsEasy::schedule(sim::SchedulingContext& ctx) {
  // Start from the head of the queue while jobs fit; the first blocked
  // job receives a reservation.  With reservation depth 1 (the default)
  // this is classic EASY; at larger depths the walk continues past each
  // reserved job, reserving further blocked jobs until the ledger fills
  // (conservative-backfilling extension).
  while (!ctx.reservation().full()) {
    const sim::Job* target = nullptr;
    for (const sim::Job* job : ctx.queue()) {
      if (!ctx.is_reserved(job->id)) {
        target = job;
        break;
      }
    }
    if (target == nullptr) break;
    // Around an outstanding reservation every start is a backfill.
    const bool started = ctx.reservation().active()
                             ? ctx.backfill(target->id)
                             : ctx.start_now(target->id);
    if (started) continue;
    if (!ctx.reserve(target->id)) break;  // racing full ledger
  }
  if (!ctx.reservation().active()) return;
  // First-fit backfilling in arrival order; repeat until no candidate fits.
  while (true) {
    const auto candidates = ctx.backfill_candidates();
    if (candidates.empty()) break;
    ctx.backfill(candidates.front()->id);
  }
}

}  // namespace dras::sched
