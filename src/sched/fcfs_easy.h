// FCFS with EASY backfilling (paper §II-A, §IV-A) — the default policy on
// many production supercomputers.
//
// Jobs are prioritised by arrival time.  The head of the queue is started
// while it fits; the first job that does not fit gets a reservation at its
// earliest estimated start, and subsequent jobs are backfilled first-fit
// (in arrival order) provided they do not delay the reservation.
#pragma once

#include <memory>

#include "sim/scheduler.h"

namespace dras::sched {

class FcfsEasy final : public sim::Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "FCFS"; }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<FcfsEasy>(*this);
  }
};

}  // namespace dras::sched
