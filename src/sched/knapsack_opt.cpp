#include "sched/knapsack_opt.h"

#include <algorithm>
#include <cassert>

namespace dras::sched {

std::vector<std::size_t> KnapsackOpt::solve_knapsack(
    const std::vector<int>& weights, const std::vector<double>& values,
    int capacity) {
  assert(weights.size() == values.size());
  if (capacity <= 0 || weights.empty()) return {};
  const std::size_t n = weights.size();
  const auto cap = static_cast<std::size_t>(capacity);

  // dp[c] = best value with capacity c; keep[i][c] = item i used at cap c.
  std::vector<double> dp(cap + 1, 0.0);
  std::vector<std::vector<bool>> keep(n, std::vector<bool>(cap + 1, false));
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0) continue;  // defensive; job sizes are positive
    const auto w = static_cast<std::size_t>(weights[i]);
    if (w > cap) continue;
    for (std::size_t c = cap; c >= w; --c) {
      const double candidate = dp[c - w] + values[i];
      if (candidate > dp[c]) {
        dp[c] = candidate;
        keep[i][c] = true;
      }
    }
  }

  std::vector<std::size_t> picked;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (keep[i][c]) {
      picked.push_back(i);
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(picked.begin(), picked.end());
  return picked;
}

void KnapsackOpt::schedule(sim::SchedulingContext& ctx) {
  const auto& queue = ctx.queue();
  if (queue.empty()) return;

  std::vector<int> weights;
  std::vector<double> values;
  std::vector<sim::JobId> ids;
  weights.reserve(queue.size());
  values.reserve(queue.size());
  ids.reserve(queue.size());
  for (const sim::Job* job : queue) {
    weights.push_back(job->size);
    values.push_back(reward_.job_value(ctx, *job));
    ids.push_back(job->id);
  }

  const auto picked =
      solve_knapsack(weights, values, ctx.cluster().free_nodes());
  for (const std::size_t i : picked) ctx.start_now(ids[i]);
}

}  // namespace dras::sched
