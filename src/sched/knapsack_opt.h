// Optimization baseline (paper §IV-A): cluster scheduling formulated as a
// 0-1 knapsack over the free nodes, solved exactly with dynamic
// programming.  Item weight = job size, item value = the myopic objective
// gain under the same reward the DRAS agents optimise (Eq. 1 or Eq. 2), so
// the comparison isolates myopic-vs-long-term optimisation.
//
// No reservations and no backfilling: the method optimises the immediate
// objective only, which is exactly the limitation §I calls out.
#pragma once

#include <memory>

#include "core/reward.h"
#include "sim/scheduler.h"

namespace dras::sched {

class KnapsackOpt final : public sim::Scheduler {
 public:
  explicit KnapsackOpt(core::RewardFunction reward)
      : reward_(std::move(reward)) {}

  [[nodiscard]] std::string_view name() const override {
    return "Optimization";
  }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<KnapsackOpt>(*this);
  }

  /// Exact 0-1 knapsack: maximise total value with total weight <= capacity.
  /// Returns the selected item indices (ascending).  Exposed for testing
  /// against brute force.
  [[nodiscard]] static std::vector<std::size_t> solve_knapsack(
      const std::vector<int>& weights, const std::vector<double>& values,
      int capacity);

 private:
  core::RewardFunction reward_;
};

}  // namespace dras::sched
