#include "sched/priority_sched.h"

#include <algorithm>
#include <cmath>

namespace dras::sched {

PriorityScheduler::PriorityScheduler(std::string name, PriorityFn priority)
    : name_(std::move(name)), priority_(std::move(priority)) {}

std::vector<sim::Job*> PriorityScheduler::ordered_queue(
    const sim::SchedulingContext& ctx) const {
  std::vector<sim::Job*> jobs = ctx.queue();
  const sim::Time now = ctx.now();
  std::stable_sort(jobs.begin(), jobs.end(),
                   [&](const sim::Job* a, const sim::Job* b) {
                     const double pa = priority_(*a, now);
                     const double pb = priority_(*b, now);
                     if (pa != pb) return pa < pb;
                     if (a->submit_time != b->submit_time)
                       return a->submit_time < b->submit_time;
                     return a->id < b->id;
                   });
  return jobs;
}

void PriorityScheduler::schedule(sim::SchedulingContext& ctx) {
  // Start from the best-priority job while jobs fit; blocked jobs receive
  // reservations until the ledger fills (depth 1 = classic EASY).
  while (!ctx.reservation().full()) {
    const auto ordered = ordered_queue(ctx);
    const sim::Job* best = nullptr;
    for (const sim::Job* job : ordered) {
      if (!ctx.is_reserved(job->id)) {
        best = job;
        break;
      }
    }
    if (best == nullptr) break;
    const bool started = ctx.reservation().active()
                             ? ctx.backfill(best->id)
                             : ctx.start_now(best->id);
    if (started) continue;
    if (!ctx.reserve(best->id)) break;
  }
  if (!ctx.reservation().active()) return;
  // First-fit backfilling in priority order.
  while (true) {
    const auto candidates = ctx.backfill_candidates();
    if (candidates.empty()) break;
    const sim::Time now = ctx.now();
    const sim::Job* best = candidates.front();
    double best_priority = priority_(*best, now);
    for (const sim::Job* job : candidates) {
      const double p = priority_(*job, now);
      if (p < best_priority) {
        best = job;
        best_priority = p;
      }
    }
    ctx.backfill(best->id);
  }
}

PriorityScheduler make_sjf() {
  return PriorityScheduler("SJF", [](const sim::Job& job, sim::Time) {
    return job.runtime_estimate;
  });
}

PriorityScheduler make_ljf() {
  return PriorityScheduler("LJF", [](const sim::Job& job, sim::Time) {
    return -static_cast<double>(job.size);
  });
}

PriorityScheduler make_wfp3() {
  // WFP3 (Tang et al. / RLScheduler): favour jobs with large
  // (wait/runtime)^3 * size; negate so smaller = better.
  return PriorityScheduler("WFP3", [](const sim::Job& job, sim::Time now) {
    const double wait = std::max(0.0, now - job.submit_time);
    const double ratio = wait / std::max(1.0, job.runtime_estimate);
    return -(ratio * ratio * ratio) * static_cast<double>(job.size);
  });
}

PriorityScheduler make_f1() {
  // F1 (Carastan-Santos & de Camargo, SC'17; used by RLScheduler):
  // score = log10(req_time)*size + 870*log10(submit_time); smaller first.
  return PriorityScheduler("F1", [](const sim::Job& job, sim::Time) {
    return std::log10(std::max(1.0, job.runtime_estimate)) *
               static_cast<double>(job.size) +
           870.0 * std::log10(std::max(1.0, job.submit_time));
  });
}

}  // namespace dras::sched
