// Priority-function schedulers with EASY backfilling.
//
// A PriorityScheduler orders the wait queue by an arbitrary priority
// function and then behaves exactly like FCFS/EASY: start from the best
// job while it fits, reserve the first non-fitting job, backfill
// first-fit (in priority order) without delaying the reservation.
//
// Besides giving the DRAS evaluation a richer baseline roster, these are
// the classic hand-tuned heuristics that RL schedulers (RLScheduler,
// SC'20 — the paper's §II-A related work) compare against:
//
//   FCFS  f = submit_time                   (equivalent to sched::FcfsEasy)
//   SJF   f = runtime_estimate              (shortest job first)
//   LJF   f = -size                         (largest job first)
//   WFP3  f = -(wait / runtime_est)^3 * size          (lower = better)
//   F1    f = log10(runtime_est) * size - 870 * log10(submit_time + 1)
//
// Lower priority value = scheduled earlier.
#pragma once

#include <functional>
#include <memory>

#include "sim/scheduler.h"

namespace dras::sched {

/// Priority function: smaller values run first.  `now` is the scheduling
/// instant (WFP3-style policies depend on the current wait).
using PriorityFn = std::function<double(const sim::Job&, sim::Time now)>;

class PriorityScheduler final : public sim::Scheduler {
 public:
  PriorityScheduler(std::string name, PriorityFn priority);

  [[nodiscard]] std::string_view name() const override { return name_; }
  void schedule(sim::SchedulingContext& ctx) override;
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<PriorityScheduler>(*this);
  }

 private:
  /// Queue sorted by (priority, submit, id); deterministic.
  [[nodiscard]] std::vector<sim::Job*> ordered_queue(
      const sim::SchedulingContext& ctx) const;

  std::string name_;
  PriorityFn priority_;
};

/// Factory helpers for the classic heuristics.
[[nodiscard]] PriorityScheduler make_sjf();
[[nodiscard]] PriorityScheduler make_ljf();
[[nodiscard]] PriorityScheduler make_wfp3();
[[nodiscard]] PriorityScheduler make_f1();

}  // namespace dras::sched
