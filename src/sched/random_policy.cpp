#include "sched/random_policy.h"

#include <vector>

namespace dras::sched {

void RandomPolicy::schedule(sim::SchedulingContext& ctx) {
  while (true) {
    std::vector<const sim::Job*> runnable;
    for (const sim::Job* job : ctx.queue())
      if (ctx.cluster().fits(job->size)) runnable.push_back(job);
    if (runnable.empty()) break;
    const auto pick = rng_.uniform_index(runnable.size());
    ctx.start_now(runnable[pick]->id);
  }
}

}  // namespace dras::sched
