// Random policy (paper §IV-A): repeatedly pick a uniformly random runnable
// job until no queued job fits.  DRAS behaves like this at the start of
// training, so Random is the "no learning" control.
#pragma once

#include <memory>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace dras::sched {

class RandomPolicy final : public sim::Scheduler {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "Random"; }
  /// Restores the seed so repeated episodes are identical.
  void begin_episode() override { rng_ = util::Rng(seed_); }
  void schedule(sim::SchedulingContext& ctx) override;
  /// Copies the current RNG position as well as the seed.
  [[nodiscard]] std::unique_ptr<sim::Scheduler> clone() const override {
    return std::make_unique<RandomPolicy>(*this);
  }

 private:
  util::Rng rng_;
  std::uint64_t seed_;
};

}  // namespace dras::sched
