#include "serve/decision_service.h"

#include <algorithm>
#include <stdexcept>

#include "nn/ops.h"
#include "obs/metrics.h"
#include "util/format.h"

namespace dras::serve {

namespace {

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& swaps;
  obs::Counter& failures;
  obs::Gauge& queue_depth;
  obs::HdrHistogram& request_latency_us;
  obs::HdrHistogram& batch_size;
  obs::HdrHistogram& batch_forward_us;

  static ServeMetrics& get() {
    static ServeMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return ServeMetrics{
          registry.counter("serve.requests"),
          registry.counter("serve.batches"),
          registry.counter("serve.swaps"),
          registry.counter("serve.failures"),
          registry.gauge("serve.queue_depth"),
          registry.hdr("serve.request.latency_us"),
          registry.hdr("serve.batch.size"),
          registry.hdr("serve.batch.forward_us"),
      };
    }();
    return metrics;
  }
};

double micros_since(std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Throws std::invalid_argument when `request` does not fit the
/// network `agent` serves.
void validate_request(const core::DrasAgent& agent,
                      const DecisionRequest& request) {
  const nn::NetworkConfig& net = agent.network().config();
  if (request.valid == 0)
    throw std::invalid_argument("decision request has no valid actions");
  if (agent.config().kind == core::AgentKind::PG) {
    if (request.valid > net.outputs)
      throw std::invalid_argument(util::format(
          "decision request has {} valid slots, window is {}", request.valid,
          net.outputs));
    if (request.state.size() != net.input_size())
      throw std::invalid_argument(util::format(
          "PG decision request state has {} floats, expected {}",
          request.state.size(), net.input_size()));
  } else {
    if (request.state.size() != request.valid * net.input_size())
      throw std::invalid_argument(util::format(
          "DQL decision request state has {} floats, expected {}x{}",
          request.state.size(), request.valid, net.input_size()));
  }
}

/// Batched PG head: one forward_batch over all window states, then per
/// request the exact greedy_action math — softmax_masked over the full
/// logit row, argmax (first-max-wins) over the first `valid` probs.
void decide_pg(core::DrasAgent& agent,
               std::span<const DecisionRequest* const> requests,
               std::span<std::size_t> picks) {
  nn::Network& net = agent.network();
  const std::size_t in = net.config().input_size();
  const std::size_t out = net.config().outputs;
  const std::size_t batch = requests.size();
  std::vector<float> inputs(batch * in);
  for (std::size_t b = 0; b < batch; ++b)
    std::copy(requests[b]->state.begin(), requests[b]->state.end(),
              inputs.begin() + static_cast<std::ptrdiff_t>(b * in));
  std::vector<float> logits(batch * out);
  net.forward_batch(inputs, batch, logits);
  std::vector<float> probs(out);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::span<const float> row =
        std::span<const float>(logits).subspan(b * out, out);
    nn::softmax_masked(row, probs, requests[b]->valid);
    picks[b] = static_cast<std::size_t>(
        std::max_element(probs.begin(),
                         probs.begin() +
                             static_cast<std::ptrdiff_t>(requests[b]->valid)) -
        probs.begin());
  }
}

/// Batched DQL head: every candidate of every request becomes one row
/// of a single forward_batch; per request the argmax uses the exact
/// select_action(explore=false) comparison — double-cast Q, strict >,
/// first-wins.
void decide_dql(core::DrasAgent& agent,
                std::span<const DecisionRequest* const> requests,
                std::span<std::size_t> picks) {
  nn::Network& net = agent.network();
  const std::size_t in = net.config().input_size();
  std::size_t total = 0;
  for (const DecisionRequest* r : requests) total += r->valid;
  std::vector<float> inputs;
  inputs.reserve(total * in);
  for (const DecisionRequest* r : requests)
    inputs.insert(inputs.end(), r->state.begin(), r->state.end());
  std::vector<float> q(total);
  net.forward_batch(inputs, total, q);
  std::size_t offset = 0;
  for (std::size_t b = 0; b < requests.size(); ++b) {
    const std::size_t n = requests[b]->valid;
    std::size_t best = 0;
    double best_q = static_cast<double>(q[offset]);
    for (std::size_t i = 1; i < n; ++i) {
      const double qi = static_cast<double>(q[offset + i]);
      if (qi > best_q) {
        best_q = qi;
        best = i;
      }
    }
    picks[b] = best;
    offset += n;
  }
}

}  // namespace

DecisionService::DecisionService(ServiceOptions options)
    : options_(options) {
  if (options_.policy.max_batch == 0)
    throw std::invalid_argument("BatchPolicy.max_batch must be >= 1");
  if (options_.workers == 0)
    throw std::invalid_argument("DecisionService needs >= 1 worker");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

DecisionService::~DecisionService() { stop(); }

std::future<Decision> DecisionService::submit(DecisionRequest request) {
  obs::Span request_span("serve.request");
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.span = request_span.context();
  std::future<Decision> future = pending.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("decision service stopped")));
      failures_.fetch_add(1, std::memory_order_relaxed);
      ServeMetrics::get().failures.add(1);
      return future;
    }
    queue_.push_back(std::move(pending));
    ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void DecisionService::install(std::shared_ptr<const ModelSnapshot> snapshot) {
  if (!snapshot) throw std::invalid_argument("install(nullptr)");
  {
    // The swap is an O(1) pointer assignment under the queue mutex —
    // submitters and batch-closers contend on the same lock for
    // microseconds, never on a model load (which happened before this
    // call, off the serving path).
    std::lock_guard lock(mutex_);
    model_ = std::move(snapshot);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics::get().swaps.add(1);
  cv_.notify_all();
}

std::shared_ptr<const ModelSnapshot> DecisionService::current_snapshot()
    const {
  std::lock_guard lock(mutex_);
  return model_;
}

void DecisionService::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

DecisionService::Stats DecisionService::stats() const {
  return Stats{
      requests_.load(std::memory_order_relaxed),
      batches_.load(std::memory_order_relaxed),
      swaps_.load(std::memory_order_relaxed),
      failures_.load(std::memory_order_relaxed),
      max_batch_.load(std::memory_order_relaxed),
  };
}

void DecisionService::worker_loop(std::size_t /*worker_index*/) {
  // Per-worker model replica: cloned from the installed snapshot the
  // first time this worker sees it, then reused until the pointer
  // changes.  Cloning happens outside the lock, so a swap never stalls
  // the queue.
  std::unique_ptr<core::DrasAgent> replica;
  const ModelSnapshot* replica_source = nullptr;
  std::vector<Pending> batch;
  for (;;) {
    std::shared_ptr<const ModelSnapshot> snapshot;
    std::uint64_t batch_id = 0;
    std::size_t left_behind = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        return stopping_ || (!queue_.empty() && model_ != nullptr);
      });
      if (queue_.empty() && stopping_) return;
      if (model_ == nullptr) {
        // Stopping with requests that never saw a model: fail them.
        while (!queue_.empty()) {
          queue_.front().promise.set_exception(std::make_exception_ptr(
              std::runtime_error("decision service stopped before a model "
                                 "was installed")));
          queue_.pop_front();
          failures_.fetch_add(1, std::memory_order_relaxed);
          ServeMetrics::get().failures.add(1);
        }
        return;
      }
      // Coalesce: close the batch at max_batch requests or when the
      // oldest request's max_wait expires (immediately when stopping).
      if (queue_.size() < options_.policy.max_batch && !stopping_) {
        const auto deadline =
            queue_.front().enqueued + options_.policy.max_wait;
        cv_.wait_until(lock, deadline, [&] {
          return stopping_ || queue_.size() >= options_.policy.max_batch;
        });
      }
      if (queue_.empty()) continue;  // another worker drained it
      const std::size_t take =
          std::min(queue_.size(), options_.policy.max_batch);
      batch.clear();
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      snapshot = model_;
      batch_id = next_batch_id_++;
      left_behind = queue_.size();
      ServeMetrics::get().queue_depth.set(static_cast<double>(left_behind));
    }
    if (left_behind > 0) cv_.notify_one();
    if (replica_source != snapshot.get()) {
      replica = snapshot->make_replica();
      replica_source = snapshot.get();
    }
    serve_batch(batch, *snapshot, *replica, batch_id);
  }
}

void DecisionService::serve_batch(std::vector<Pending>& batch,
                                  const ModelSnapshot& snapshot,
                                  core::DrasAgent& replica,
                                  std::uint64_t batch_id) {
  ServeMetrics& metrics = ServeMetrics::get();
  obs::Span batch_span(
      "serve.batch", batch.front().span, batch_id,
      {obs::targ("batch_size", static_cast<std::uint64_t>(batch.size())),
       obs::targ("version", snapshot.version())});

  // Validate first: a malformed request fails alone, it cannot poison
  // the batch it rode in with.
  std::vector<const DecisionRequest*> valid_requests;
  std::vector<std::size_t> valid_slots;
  valid_requests.reserve(batch.size());
  valid_slots.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      validate_request(replica, batch[i].request);
      valid_requests.push_back(&batch[i].request);
      valid_slots.push_back(i);
    } catch (const std::exception&) {
      batch[i].promise.set_exception(std::current_exception());
      failures_.fetch_add(1, std::memory_order_relaxed);
      metrics.failures.add(1);
    }
  }

  std::vector<std::size_t> picks(valid_requests.size());
  if (!valid_requests.empty()) {
    obs::Span forward_span(
        "serve.forward",
        {obs::targ("rows", static_cast<std::uint64_t>(valid_requests.size()))},
        &metrics.batch_forward_us);
    if (replica.config().kind == core::AgentKind::PG)
      decide_pg(replica, valid_requests, picks);
    else
      decide_dql(replica, valid_requests, picks);
  }

  for (std::size_t i = 0; i < valid_requests.size(); ++i) {
    Pending& pending = batch[valid_slots[i]];
    Decision decision;
    decision.job_index = picks[i];
    decision.model_version = snapshot.version();
    decision.batch_id = batch_id;
    decision.batch_size = static_cast<std::uint32_t>(batch.size());
    decision.latency_us = micros_since(pending.enqueued);
    metrics.request_latency_us.observe(decision.latency_us);
    pending.promise.set_value(decision);
  }
  metrics.batch_size.observe(static_cast<double>(batch.size()));
  metrics.requests.add(valid_requests.size());
  metrics.batches.add(1);
  requests_.fetch_add(valid_requests.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (seen < batch.size() &&
         !max_batch_.compare_exchange_weak(
             seen, batch.size(), std::memory_order_relaxed)) {
  }
}

std::size_t reference_decision(core::DrasAgent& agent,
                               const DecisionRequest& request) {
  if (agent.pg() != nullptr)
    return agent.pg()->greedy_action(request.state, request.valid);
  const std::size_t in = agent.network().config().input_size();
  std::vector<std::vector<float>> candidates(request.valid);
  for (std::size_t i = 0; i < request.valid; ++i)
    candidates[i].assign(
        request.state.begin() + static_cast<std::ptrdiff_t>(i * in),
        request.state.begin() + static_cast<std::ptrdiff_t>((i + 1) * in));
  util::Rng rng(0);  // unused: explore=false never draws
  return agent.dql()->select_action(candidates, rng, /*explore=*/false);
}

DecisionRequest make_synthetic_request(const core::DrasConfig& config,
                                       util::Rng& rng) {
  const nn::NetworkConfig net = config.network_config();
  DecisionRequest request;
  if (config.kind == core::AgentKind::PG) {
    request.valid = 1 + static_cast<std::size_t>(
                            rng.uniform_index(config.window));
    request.state.resize(net.input_size());
  } else {
    request.valid = 1 + static_cast<std::size_t>(rng.uniform_index(8));
    request.state.resize(request.valid * net.input_size());
  }
  for (float& v : request.state)
    v = static_cast<float>(rng.uniform(0.0, 1.0));
  return request;
}

}  // namespace dras::serve
