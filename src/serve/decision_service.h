// The scheduling-decision service: micro-batched inference with hot
// model swap (ROADMAP "batched inference + hot model swap").
//
// Concurrent client threads submit() encoded (queue-state, window)
// requests and get a std::future<Decision> back.  Inference workers
// coalesce queued requests into batches under a max-batch/max-wait
// policy — a batch closes as soon as it holds `max_batch` requests or
// the oldest queued request has waited `max_wait`, whichever comes
// first — and run ONE nn::Network::forward_batch per batch.  Because
// forward_batch rows are bit-identical to per-sample forward() and the
// head math below is byte-for-byte the policies' greedy code, a served
// decision is bit-identical to the in-trainer decision from the same
// snapshot (the determinism oracle, enforced in tests and the bench).
//
// Hot swap: install() flips a shared_ptr under the queue mutex — an
// O(1) pointer assignment, so requests never stall on a swap.  Each
// worker keeps a private DrasAgent replica cloned from the snapshot it
// last saw and re-clones (outside the lock) when the pointer changed;
// in-flight batches finish on the old replica.  Every Decision carries
// the snapshot version that produced it.
//
// Telemetry: counters serve.requests / serve.batches / serve.swaps /
// serve.failures, gauge serve.queue_depth, hdr histograms
// serve.request.latency_us (submit → response), serve.batch.size and
// serve.batch.forward_us; spans serve.request → serve.batch →
// serve.forward (cross-thread parented, deterministic ids).  Stats are
// additionally mirrored in always-on atomics so shutdown logic and
// tests work with telemetry disabled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace dras::serve {

struct BatchPolicy {
  /// Close a batch at this many requests (1 = no coalescing).
  std::size_t max_batch = 32;
  /// ... or when the oldest queued request has waited this long.
  std::chrono::microseconds max_wait{200};
};

struct ServiceOptions {
  BatchPolicy policy;
  /// Inference worker threads, each with a private model replica.
  std::size_t workers = 1;
};

/// One encoded decision request.  For a PG agent `state` is the encoded
/// W-slot window (StateEncoder::pg_input_size floats) and `valid` the
/// number of jobs actually present; for DQL `state` is `valid`
/// concatenated candidate encodings (valid × dql_input_size floats).
struct DecisionRequest {
  std::vector<float> state;
  std::size_t valid = 0;
};

struct Decision {
  std::size_t job_index = 0;        ///< Selected window slot / candidate.
  std::uint64_t model_version = 0;  ///< Snapshot that produced it.
  std::uint64_t batch_id = 0;       ///< Batch the request rode in.
  std::uint32_t batch_size = 0;
  double latency_us = 0.0;          ///< submit() → response.
};

class DecisionService {
 public:
  explicit DecisionService(ServiceOptions options);
  ~DecisionService();

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Enqueue one request.  Never blocks on a model swap; blocks only
  /// briefly on the queue mutex.  Requests submitted before the first
  /// install() wait (successfully) until a model lands.  After stop()
  /// the future fails with std::runtime_error.
  std::future<Decision> submit(DecisionRequest request);

  /// Atomically make `snapshot` the serving model (shared_ptr flip
  /// under the queue mutex).  In-flight batches complete on the
  /// previous snapshot; later batches use the new one.
  void install(std::shared_ptr<const ModelSnapshot> snapshot);

  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current_snapshot() const;

  /// Drain the queue (serving every pending request if a model is
  /// installed), then join the workers.  Idempotent; the destructor
  /// calls it.
  void stop();

  struct Stats {
    std::uint64_t requests = 0;  ///< Successfully answered.
    std::uint64_t batches = 0;
    std::uint64_t swaps = 0;     ///< install() calls.
    std::uint64_t failures = 0;  ///< Futures completed with an exception.
    std::uint64_t max_batch = 0; ///< Largest batch served.
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Pending {
    DecisionRequest request;
    std::promise<Decision> promise;
    std::chrono::steady_clock::time_point enqueued;
    obs::SpanContext span;  ///< submit-side parent for the batch span.
  };

  void worker_loop(std::size_t worker_index);
  void serve_batch(std::vector<Pending>& batch,
                   const ModelSnapshot& snapshot, core::DrasAgent& replica,
                   std::uint64_t batch_id);

  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::shared_ptr<const ModelSnapshot> model_;
  bool stopping_ = false;
  std::uint64_t next_batch_id_ = 0;

  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

/// The decision the trainer-side greedy policy makes for `request` on
/// `agent` — PGPolicy::greedy_action / DQLPolicy::select_action with
/// exploration off.  The service's batched path must (and does) return
/// bit-identical indices; tests and the bench assert it through this
/// oracle.
[[nodiscard]] std::size_t reference_decision(core::DrasAgent& agent,
                                             const DecisionRequest& request);

/// Synthetic but well-formed request for load generation: encoder-range
/// values in [0,1], `valid` uniform in [1, window] (PG) or [1, 8]
/// candidates (DQL).  Deterministic per `rng` stream.
[[nodiscard]] DecisionRequest make_synthetic_request(
    const core::DrasConfig& config, util::Rng& rng);

}  // namespace dras::serve
