#include "serve/model_watcher.h"

#include <vector>

#include "ckpt/manager.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace dras::serve {

namespace {
struct WatcherMetrics {
  obs::Counter& installs;
  obs::Counter& load_failures;

  static WatcherMetrics& get() {
    static WatcherMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return WatcherMetrics{
          registry.counter("serve.watcher.installs"),
          registry.counter("serve.watcher.load_failures"),
      };
    }();
    return metrics;
  }
};
}  // namespace

ModelWatcher::ModelWatcher(WatcherOptions options, DecisionService& service)
    : options_(std::move(options)), service_(service) {
  if (options_.dir.empty())
    throw std::invalid_argument("ModelWatcher needs a directory");
}

ModelWatcher::~ModelWatcher() { stop(); }

bool ModelWatcher::poll_once() {
  std::lock_guard lock(poll_mutex_);
  // Candidates newest-first, with the trainer's `latest` pointer target
  // preferred: the pointer is written only after a snapshot fully
  // landed, so following it can never open a partially-renamed file.
  std::vector<std::filesystem::path> candidates;
  const std::optional<std::filesystem::path> pointer =
      ckpt::read_latest_pointer(options_.dir);
  if (pointer) candidates.push_back(*pointer);
  ckpt::CheckpointManager manager({.dir = options_.dir});
  const std::vector<std::filesystem::path> files = manager.list();
  for (auto it = files.rbegin(); it != files.rend(); ++it)
    if (!pointer || *it != *pointer) candidates.push_back(*it);

  for (const std::filesystem::path& path : candidates) {
    if (has_current_ && path == current_path_)
      return false;  // best available is already serving
    try {
      std::shared_ptr<const ModelSnapshot> snapshot =
          ModelSnapshot::load(path, options_.config);
      service_.install(snapshot);
      current_path_ = path;
      has_current_ = true;
      current_version_.store(snapshot->version(), std::memory_order_relaxed);
      installed_.fetch_add(1, std::memory_order_relaxed);
      WatcherMetrics::get().installs.add(1);
      util::log_info("serving model v{} from {}", snapshot->version(),
                     path.string());
      return true;
    } catch (const std::exception& e) {
      // Torn write that slipped past the pointer, checksum mismatch,
      // fingerprint mismatch: keep serving the old model, try older.
      load_failures_.fetch_add(1, std::memory_order_relaxed);
      WatcherMetrics::get().load_failures.add(1);
      util::log_warn("cannot load checkpoint {}: {}", path.string(),
                     e.what());
    }
  }
  return false;
}

void ModelWatcher::start() {
  {
    std::lock_guard lock(stop_mutex_);
    if (thread_.joinable()) return;  // already running
    stopping_ = false;
  }
  poll_once();  // serve immediately when a checkpoint already exists
  thread_ = std::thread([this] { thread_loop(); });
}

void ModelWatcher::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ModelWatcher::thread_loop() {
  for (;;) {
    {
      std::unique_lock lock(stop_mutex_);
      if (stop_cv_.wait_for(lock, options_.poll, [&] { return stopping_; }))
        return;
    }
    poll_once();
  }
}

}  // namespace dras::serve
