// Background checkpoint-directory watcher: the consumer half of the
// training → serving hot-swap loop.
//
// A ModelWatcher polls a checkpoint directory on its own thread.  Each
// poll resolves the best candidate — the file named by the trainer's
// atomic `latest` pointer when present and readable, otherwise the
// newest checkpoint by episode number — and, when it differs from what
// is currently serving, loads it into a ModelSnapshot and install()s it
// on the DecisionService.  A load failure (torn write that slipped past
// the pointer, checksum mismatch, fingerprint mismatch) is counted and
// the watcher falls back to the next-older checkpoint, so the service
// keeps serving the last good model; the `latest` pointer written by
// CheckpointManager after each *successful* snapshot makes that path
// rare (the pointer never names a partially-renamed file).
//
// poll_once() is public so tests drive the protocol deterministically
// without the thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <thread>

#include "core/dras_agent.h"
#include "serve/decision_service.h"

namespace dras::serve {

struct WatcherOptions {
  std::filesystem::path dir;      ///< Checkpoint directory to watch.
  core::DrasConfig config;        ///< Agent shape the checkpoints must match.
  std::chrono::milliseconds poll{50};
};

class ModelWatcher {
 public:
  ModelWatcher(WatcherOptions options, DecisionService& service);
  ~ModelWatcher();

  ModelWatcher(const ModelWatcher&) = delete;
  ModelWatcher& operator=(const ModelWatcher&) = delete;

  /// One poll of the directory: returns true when a new snapshot was
  /// installed.  Thread-safe with respect to the background thread (an
  /// internal mutex serializes polls).
  bool poll_once();

  /// Start / stop the background polling thread.  start() polls once
  /// synchronously first so a directory that already holds a checkpoint
  /// serves immediately.
  void start();
  void stop();

  [[nodiscard]] std::uint64_t swaps_installed() const noexcept {
    return installed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t load_failures() const noexcept {
    return load_failures_.load(std::memory_order_relaxed);
  }
  /// Version currently installed by this watcher (0 before the first).
  [[nodiscard]] std::uint64_t current_version() const noexcept {
    return current_version_.load(std::memory_order_relaxed);
  }

 private:
  void thread_loop();

  WatcherOptions options_;
  DecisionService& service_;

  std::mutex poll_mutex_;                 ///< Serializes poll_once().
  std::filesystem::path current_path_;    ///< Guarded by poll_mutex_.
  bool has_current_ = false;              ///< Guarded by poll_mutex_.

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;

  std::atomic<std::uint64_t> installed_{0};
  std::atomic<std::uint64_t> load_failures_{0};
  std::atomic<std::uint64_t> current_version_{0};
};

}  // namespace dras::serve
