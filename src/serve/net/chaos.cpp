#include "serve/net/chaos.h"

#include <string>
#include <utility>

#include "util/format.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dras::serve::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::chrono::milliseconds kPollTick{20};
constexpr std::chrono::milliseconds kForwardBudget{2000};

}  // namespace

struct ChaosProxy::Connection {
  util::Socket client;
  util::Socket upstream;
  std::uint64_t id = 0;
  std::thread to_upstream;
  std::thread to_client;
  std::atomic<bool> dead{false};

  void kill() {
    dead.store(true, std::memory_order_relaxed);
    client.shutdown();
    upstream.shutdown();
  }
};

ChaosProxy::ChaosProxy(util::SocketAddress listen_address,
                       util::SocketAddress upstream_address,
                       ChaosConfig config)
    : listen_address_(std::move(listen_address)),
      upstream_address_(std::move(upstream_address)),
      config_(config) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (started_.exchange(true)) return;
  listener_ = util::Listener::bind_and_listen(listen_address_);
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::log_info("chaos: proxy {} -> {} (drop={} corrupt={} delay={} "
                 "truncate={} reorder={} kill={} seed={})",
                 listener_.local_address().describe(),
                 upstream_address_.describe(), config_.drop, config_.corrupt,
                 config_.delay, config_.truncate, config_.reorder,
                 config_.kill, config_.seed);
}

void ChaosProxy::stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->kill();
  }
  for (auto& connection : connections) {
    if (connection->to_upstream.joinable()) connection->to_upstream.join();
    if (connection->to_client.joinable()) connection->to_client.join();
  }
}

util::SocketAddress ChaosProxy::bound_address() const {
  return listener_.local_address();
}

ChaosProxy::Stats ChaosProxy::stats() const {
  Stats stats;
  stats.connections = connections_count_.load();
  stats.forwarded_chunks = forwarded_chunks_.load();
  stats.forwarded_bytes = forwarded_bytes_.load();
  stats.dropped = dropped_.load();
  stats.corrupted = corrupted_.load();
  stats.delayed = delayed_.load();
  stats.truncated = truncated_.load();
  stats.reordered = reordered_.load();
  stats.killed = killed_.load();
  return stats;
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<util::Socket> accepted;
    try {
      accepted = listener_.accept(kPollTick);
    } catch (const util::SocketError&) {
      if (stopping_.load()) break;
      continue;
    }
    if (!accepted) continue;

    util::Socket upstream;
    try {
      upstream = util::connect_socket(upstream_address_,
                                      std::chrono::milliseconds(500));
    } catch (const util::SocketError& error) {
      // Upstream down (e.g. the kill+restart drill): drop the client,
      // it will retry and reconnect.
      util::log_debug("chaos: upstream connect failed: {}", error.what());
      accepted->close();
      continue;
    }

    connections_count_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->client = std::move(*accepted);
    connection->upstream = std::move(upstream);
    connection->id = next_connection_id_++;
    Connection* raw = connection.get();
    connection->to_upstream = std::thread([this, raw] { pump(*raw, true); });
    connection->to_client = std::thread([this, raw] { pump(*raw, false); });

    std::lock_guard lock(connections_mutex_);
    // Reap finished connections so a long chaos run does not accumulate
    // dead threads.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->dead.load(std::memory_order_relaxed)) {
        if ((*it)->to_upstream.joinable()) (*it)->to_upstream.join();
        if ((*it)->to_client.joinable()) (*it)->to_client.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connections_.push_back(std::move(connection));
  }
}

void ChaosProxy::pump(Connection& connection, bool client_to_server) {
  util::Socket& from = client_to_server ? connection.client
                                        : connection.upstream;
  util::Socket& to = client_to_server ? connection.upstream
                                      : connection.client;
  util::Rng rng(util::derive_seed(
      config_.seed, util::format("chaos-{}-{}", connection.id,
                                 client_to_server ? "c2s" : "s2c")));
  std::string held;  // reordered chunk waiting for its successor
  char buffer[2048];

  auto forward = [&](std::string_view chunk) {
    to.send_all(chunk, Clock::now() + kForwardBudget);
    forwarded_chunks_.fetch_add(1, std::memory_order_relaxed);
    forwarded_bytes_.fetch_add(chunk.size(), std::memory_order_relaxed);
  };

  try {
    while (!stopping_.load(std::memory_order_relaxed) &&
           !connection.dead.load(std::memory_order_relaxed)) {
      std::size_t n = 0;
      try {
        n = from.recv_some(buffer, sizeof(buffer), Clock::now() + kPollTick);
      } catch (const util::SocketTimeout&) {
        continue;
      }
      if (n == 0) break;  // side closed: tear the pipe down
      std::string chunk(buffer, n);

      if (config_.kill > 0 && rng.bernoulli(config_.kill)) {
        killed_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (config_.drop > 0 && rng.bernoulli(config_.drop)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (config_.truncate > 0 && rng.bernoulli(config_.truncate)) {
        truncated_.fetch_add(1, std::memory_order_relaxed);
        forward(std::string_view(chunk).substr(0, chunk.size() / 2));
        break;  // mid-frame EOF at the receiver
      }
      if (config_.corrupt > 0 && rng.bernoulli(config_.corrupt)) {
        corrupted_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t at = rng.uniform_index(chunk.size());
        chunk[at] = static_cast<char>(chunk[at] ^ 0x5A);
      }
      if (config_.delay > 0 && rng.bernoulli(config_.delay)) {
        delayed_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(config_.delay_for);
      }
      if (config_.reorder > 0 && held.empty() &&
          rng.bernoulli(config_.reorder)) {
        reordered_.fetch_add(1, std::memory_order_relaxed);
        held = std::move(chunk);
        continue;  // forwarded after the NEXT chunk
      }
      forward(chunk);
      if (!held.empty()) {
        forward(held);
        held.clear();
      }
    }
  } catch (const util::SocketError&) {
    // Either side vanished mid-forward; normal under chaos.
  }
  connection.kill();  // mirror the teardown to the other pump
}

}  // namespace dras::serve::net
