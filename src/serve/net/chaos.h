// ChaosProxy: a byte-level fault injector between DecisionClient and
// DecisionServer — PR 8's fault-injection discipline applied to the
// serving transport.
//
// The proxy accepts connections, opens a matching upstream connection,
// and pumps bytes both ways.  Per forwarded chunk it draws faults from
// a deterministic per-connection-per-direction RNG stream
// (derive_seed(seed, "chaos-<conn>-<dir>")), so a chaos run replays
// exactly under the same seed:
//
//   drop      chunk silently discarded (client sees a stall -> timeout)
//   delay     chunk forwarded after `delay` (latency spike)
//   corrupt   one byte flipped (client/server detect via frame CRC)
//   truncate  half the chunk forwarded, then the connection is killed
//             (mid-frame EOF)
//   reorder   chunk held and sent after the next one (stream desync ->
//             CRC/magic errors at the receiver)
//   kill      connection killed outright mid-request
//
// The proxy never parses frames: every fault lands on raw bytes, which
// is exactly the adversary the CRC framing claims to survive.  With all
// probabilities zero the proxy is a transparent byte pipe (the
// `--chaos off` acceptance path).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/socket.h"

namespace dras::serve::net {

struct ChaosConfig {
  double drop = 0.0;      ///< P(discard chunk).
  double corrupt = 0.0;   ///< P(flip one byte).
  double delay = 0.0;     ///< P(sleep `delay_for` before forwarding).
  double truncate = 0.0;  ///< P(forward half chunk, then kill).
  double reorder = 0.0;   ///< P(hold chunk until after the next one).
  double kill = 0.0;      ///< P(kill the connection outright).
  std::chrono::milliseconds delay_for{20};
  std::uint64_t seed = 1;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0 || corrupt > 0 || delay > 0 || truncate > 0 ||
           reorder > 0 || kill > 0;
  }
};

class ChaosProxy {
 public:
  ChaosProxy(util::SocketAddress listen_address,
             util::SocketAddress upstream_address, ChaosConfig config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind + launch the accept loop.  Throws util::SocketError on bind
  /// failure.
  void start();
  /// Kill every pumped connection and join.  Idempotent.
  void stop();

  [[nodiscard]] util::SocketAddress bound_address() const;

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t forwarded_chunks = 0;
    std::uint64_t forwarded_bytes = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t delayed = 0;
    std::uint64_t truncated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t killed = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Connection;

  void accept_loop();
  void pump(Connection& connection, bool client_to_server);

  util::SocketAddress listen_address_;
  util::SocketAddress upstream_address_;
  ChaosConfig config_;

  util::Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::uint64_t next_connection_id_ = 0;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<std::uint64_t> connections_count_{0};
  std::atomic<std::uint64_t> forwarded_chunks_{0};
  std::atomic<std::uint64_t> forwarded_bytes_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> truncated_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> killed_{0};
};

}  // namespace dras::serve::net
