#include "serve/net/client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/dras_agent.h"
#include "obs/metrics.h"
#include "util/format.h"
#include "util/logging.h"

namespace dras::serve::net {
namespace {

using Clock = std::chrono::steady_clock;

struct ClientMetrics {
  obs::Counter& requests;
  obs::Counter& served;
  obs::Counter& degraded;
  obs::Counter& retries;
  obs::Counter& reconnects;
  obs::Counter& transport_errors;
  obs::Counter& breaker_opens;
  obs::Counter& breaker_closes;
  obs::HdrHistogram& latency_us;

  static ClientMetrics& get() {
    static ClientMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return ClientMetrics{
          registry.counter("serve.net.client.requests"),
          registry.counter("serve.net.client.served"),
          registry.counter("serve.net.client.degraded"),
          registry.counter("serve.net.client.retries"),
          registry.counter("serve.net.client.reconnects"),
          registry.counter("serve.net.client.transport_errors"),
          registry.counter("serve.net.client.breaker_opens"),
          registry.counter("serve.net.client.breaker_closes"),
          registry.hdr("serve.net.client.latency_us"),
      };
    }();
    return metrics;
  }
};

double micros_since(Clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

DecisionClient::DecisionClient(ClientOptions options)
    : options_(std::move(options)),
      backoff_rng_(util::derive_seed(options_.seed, "net-client-backoff")) {
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.breaker_threshold == 0) options_.breaker_threshold = 1;
}

DecisionClient::~DecisionClient() = default;

void DecisionClient::set_fallback(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  std::lock_guard lock(mutex_);
  fallback_ = std::move(snapshot);
  fallback_replica_ = fallback_ ? fallback_->make_replica() : nullptr;
}

NetDecision DecisionClient::decide(const DecisionRequest& request) {
  std::lock_guard lock(mutex_);
  const auto started = Clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  ClientMetrics::get().requests.add();

  bool half_open_probe = false;
  if (breaker_open_.load(std::memory_order_relaxed)) {
    if (Clock::now() < breaker_reopen_at_) {
      return fallback_or_throw(request, started, 0, "circuit breaker open");
    }
    half_open_probe = true;  // cooldown over: one probe attempt
  }

  const std::size_t attempts_allowed =
      half_open_probe ? 1 : options_.max_attempts;
  std::string last_error = "no attempt made";

  for (std::size_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      ClientMetrics::get().retries.add();
      std::this_thread::sleep_for(backoff_delay(attempt));
    }
    try {
      ensure_connected();
      RequestMsg msg;
      msg.request_id = ++next_request_id_;
      msg.request = request;
      const ResponseMsg response =
          roundtrip(msg, Clock::now() + options_.request_timeout);

      if (response.status == Status::Ok) {
        note_success();
        served_.fetch_add(1, std::memory_order_relaxed);
        ClientMetrics::get().served.add();
        NetDecision decision;
        decision.job_index = static_cast<std::size_t>(response.job_index);
        decision.model_version = response.model_version;
        decision.degraded = false;
        decision.batch_size = response.batch_size;
        decision.attempts = static_cast<std::uint32_t>(attempt + 1);
        decision.latency_us = micros_since(started);
        ClientMetrics::get().latency_us.observe(decision.latency_us);
        return decision;
      }
      if (response.status == Status::BadRequest) {
        // Deterministic rejection: the transport itself worked, so the
        // breaker is untouched; retrying or falling back would only
        // mask a caller bug.
        note_success();
        throw RequestRejected("server rejected request: " + response.message);
      }
      // Retryable server-side transient.
      server_rejects_.fetch_add(1, std::memory_order_relaxed);
      last_error = util::format("server status {}: {}",
                                to_string(response.status), response.message);
      if (response.status == Status::ShuttingDown) drop_connection();
    } catch (const RequestRejected&) {
      throw;
    } catch (const util::SocketError& error) {
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      ClientMetrics::get().transport_errors.add();
      last_error = error.what();
      drop_connection();
    } catch (const WireError& error) {
      // Corrupted / desynced stream (chaos!): detected, never trusted.
      transport_errors_.fetch_add(1, std::memory_order_relaxed);
      ClientMetrics::get().transport_errors.add();
      last_error = util::format("wire error [{}]: {}",
                                to_string(error.reason()), error.what());
      drop_connection();
    }
  }

  note_failure();
  return fallback_or_throw(request, started,
                           static_cast<std::uint32_t>(attempts_allowed),
                           last_error);
}

bool DecisionClient::ping() {
  std::lock_guard lock(mutex_);
  try {
    ensure_connected();
    const std::uint64_t nonce = ++next_request_id_;
    socket_.send_all(encode_ping(nonce),
                     Clock::now() + options_.request_timeout);
    const auto deadline = Clock::now() + options_.request_timeout;
    char buffer[512];
    for (;;) {
      std::optional<Frame> frame;
      while ((frame = decoder_.next())) {
        if (frame->type == FrameType::Pong && decode_pong(*frame) == nonce) {
          return true;
        }
      }
      const std::size_t n = socket_.recv_some(buffer, sizeof(buffer), deadline);
      if (n == 0) return false;
      decoder_.feed(std::string_view(buffer, n));
    }
  } catch (const std::exception&) {
    drop_connection();
    return false;
  }
}

bool DecisionClient::breaker_open() const {
  return breaker_open_.load(std::memory_order_relaxed);
}

DecisionClient::Stats DecisionClient::stats() const {
  Stats stats;
  stats.requests = requests_.load();
  stats.served = served_.load();
  stats.degraded = degraded_.load();
  stats.retries = retries_.load();
  stats.reconnects = reconnects_.load();
  stats.transport_errors = transport_errors_.load();
  stats.server_rejects = server_rejects_.load();
  stats.breaker_opens = breaker_opens_.load();
  stats.breaker_closes = breaker_closes_.load();
  return stats;
}

void DecisionClient::ensure_connected() {
  if (socket_.valid()) return;
  socket_ = util::connect_socket(options_.address, options_.connect_timeout);
  decoder_.reset();
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  ClientMetrics::get().reconnects.add();
}

void DecisionClient::drop_connection() {
  socket_.close();
  decoder_.reset();
}

ResponseMsg DecisionClient::roundtrip(const RequestMsg& msg,
                                      Clock::time_point deadline) {
  socket_.send_all(encode_request(msg), deadline);
  char buffer[4096];
  for (;;) {
    std::optional<Frame> frame;
    while ((frame = decoder_.next())) {
      switch (frame->type) {
        case FrameType::Response: {
          ResponseMsg response = decode_response(*frame);
          if (response.request_id != msg.request_id) {
            // A response for a request we no longer wait on (e.g. the
            // previous attempt's answer arriving after its timeout).
            // Correlation ids make it safe to simply discard.
            continue;
          }
          return response;
        }
        case FrameType::Goodbye: {
          const ResponseMsg goodbye = decode_goodbye(*frame);
          throw util::SocketClosed(util::format(
              "server goodbye [{}]: {}", to_string(goodbye.status),
              goodbye.message));
        }
        case FrameType::Hello:
        case FrameType::Pong:
          continue;  // greeting / stale ping echo
        case FrameType::Ping:
          socket_.send_all(encode_pong(decode_ping(*frame)), deadline);
          continue;
        case FrameType::Request:
          throw WireError(WireError::Reason::BadType,
                          "server sent a Request frame");
      }
    }
    const std::size_t n = socket_.recv_some(buffer, sizeof(buffer), deadline);
    if (n == 0) {
      decoder_.on_eof();  // partial frame -> typed Truncated
      throw util::SocketClosed("server closed connection mid-request");
    }
    decoder_.feed(std::string_view(buffer, n));
  }
}

std::chrono::microseconds DecisionClient::backoff_delay(std::size_t attempt) {
  double delay = static_cast<double>(options_.backoff_base.count());
  for (std::size_t i = 1; i < attempt; ++i) {
    delay *= options_.backoff_multiplier;
  }
  delay = std::min(delay, static_cast<double>(options_.backoff_cap.count()));
  // Full jitter in [0.5, 1.5)x from the named deterministic stream.
  delay *= 0.5 + backoff_rng_.uniform();
  return std::chrono::microseconds(static_cast<std::int64_t>(delay));
}

NetDecision DecisionClient::fallback_or_throw(const DecisionRequest& request,
                                              Clock::time_point started,
                                              std::uint32_t attempts,
                                              const std::string& why) {
  if (!fallback_replica_) {
    throw TransportError("decision transport failed (" + why +
                         ") and no fallback model is installed");
  }
  NetDecision decision;
  decision.job_index = reference_decision(*fallback_replica_, request);
  decision.model_version = fallback_ ? fallback_->version() : 0;
  decision.degraded = true;
  decision.attempts = attempts;
  decision.latency_us = micros_since(started);
  degraded_.fetch_add(1, std::memory_order_relaxed);
  ClientMetrics::get().degraded.add();
  ClientMetrics::get().latency_us.observe(decision.latency_us);
  return decision;
}

void DecisionClient::note_success() {
  consecutive_failures_ = 0;
  if (breaker_open_.exchange(false, std::memory_order_relaxed)) {
    breaker_closes_.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::get().breaker_closes.add();
    util::log_info("serve.net: circuit breaker closed (fail-back to server)");
  }
}

void DecisionClient::note_failure() {
  ++consecutive_failures_;
  const bool was_open = breaker_open_.load(std::memory_order_relaxed);
  if (consecutive_failures_ >= options_.breaker_threshold || was_open) {
    breaker_reopen_at_ = Clock::now() + options_.breaker_cooldown;
    if (!breaker_open_.exchange(true, std::memory_order_relaxed)) {
      breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      ClientMetrics::get().breaker_opens.add();
      util::log_warn(
          "serve.net: circuit breaker OPEN after {} consecutive failures "
          "(failover to local fallback for {} ms)",
          consecutive_failures_,
          options_.breaker_cooldown.count());
    }
  }
}

}  // namespace dras::serve::net
