// DecisionClient: the consumer half of the serving transport.
//
// decide() always returns a decision or throws a *typed* error — never
// hangs.  The failure ladder, in order:
//
//   1. Timeouts.  Connect and request each have their own budget; a
//      wedged server surfaces as SocketTimeout, not a stuck caller.
//   2. Bounded retries with seeded exponential backoff + jitter.
//      Decision requests are idempotent reads, so a transport fault or
//      a retryable server status (Overloaded / Unavailable /
//      DeadlineExceeded / ShuttingDown) is retried up to `max_attempts`
//      times; the backoff jitter comes from a named deterministic RNG
//      stream (derive_seed(seed, "net-client-backoff")), so a chaos run
//      is reproducible.  BadRequest is deterministic and never retried.
//      Any transport-level fault also closes the socket, so the next
//      attempt reconnects from scratch — this is what carries the
//      client across a server restart and hot model swaps.
//   3. Circuit breaker → degraded mode.  After `breaker_threshold`
//      consecutive decide() failures the breaker opens: for
//      `breaker_cooldown` every call is served locally by the fallback
//      model (serve::reference_decision on a replica of the snapshot
//      given to set_fallback) and tagged degraded=true.  After the
//      cooldown one half-open probe goes to the server; success closes
//      the breaker (fail-back), failure re-opens it.  Without a
//      fallback installed, exhausted retries throw TransportError —
//      callers opt into degraded service explicitly.
//
// Every NetDecision carries served|degraded provenance and the model
// version that produced it, so the caller can always tell which failure
// domain answered.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "serve/decision_service.h"
#include "serve/net/wire.h"
#include "util/rng.h"
#include "util/socket.h"

namespace dras::core {
class DrasAgent;
}

namespace dras::serve::net {

/// Retries exhausted (or breaker open) and no fallback installed.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Server answered BadRequest: deterministic, not retried, no fallback.
class RequestRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  util::SocketAddress address;
  std::chrono::milliseconds connect_timeout{250};
  std::chrono::milliseconds request_timeout{1000};
  /// Total attempts per decide() (first try + retries).
  std::size_t max_attempts = 4;
  std::chrono::microseconds backoff_base{500};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds backoff_cap{50'000};
  /// Seed for the jittered-backoff RNG stream (reproducible runs).
  std::uint64_t seed = 1;
  /// Consecutive decide() failures before the breaker opens.
  std::size_t breaker_threshold = 3;
  /// How long the breaker stays open before a half-open probe.
  std::chrono::milliseconds breaker_cooldown{500};
};

struct NetDecision {
  std::size_t job_index = 0;
  std::uint64_t model_version = 0;  ///< 0 when served by the fallback.
  bool degraded = false;            ///< true = local fallback answered.
  std::uint32_t batch_size = 0;     ///< Server-side batch (0 if degraded).
  std::uint32_t attempts = 1;       ///< Attempts this decision consumed.
  double latency_us = 0.0;          ///< decide() wall time.
};

class DecisionClient {
 public:
  explicit DecisionClient(ClientOptions options);
  ~DecisionClient();

  DecisionClient(const DecisionClient&) = delete;
  DecisionClient& operator=(const DecisionClient&) = delete;

  /// Install the local fallback model for degraded mode.  The client
  /// keeps a private replica; `snapshot` may be hot-swapped later by
  /// calling again.
  void set_fallback(std::shared_ptr<const ModelSnapshot> snapshot);

  /// One decision, always (see the ladder above).  Thread-safe
  /// (serialized internally — one request in flight per client; run
  /// several clients for concurrency, like the load generator does).
  [[nodiscard]] NetDecision decide(const DecisionRequest& request);

  /// Round-trip liveness probe; false on any failure.  Never counts
  /// toward the breaker.
  [[nodiscard]] bool ping();

  [[nodiscard]] bool breaker_open() const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t served = 0;          ///< Answered by the server.
    std::uint64_t degraded = 0;        ///< Answered by the fallback.
    std::uint64_t retries = 0;         ///< Extra attempts beyond the first.
    std::uint64_t reconnects = 0;      ///< Socket (re)connections.
    std::uint64_t transport_errors = 0;
    std::uint64_t server_rejects = 0;  ///< Retryable non-Ok statuses seen.
    std::uint64_t breaker_opens = 0;   ///< Failover transitions.
    std::uint64_t breaker_closes = 0;  ///< Fail-back transitions.
  };
  [[nodiscard]] Stats stats() const;

 private:
  void ensure_connected();
  void drop_connection();
  [[nodiscard]] ResponseMsg roundtrip(const RequestMsg& msg,
                                      std::chrono::steady_clock::time_point
                                          deadline);
  [[nodiscard]] std::chrono::microseconds backoff_delay(std::size_t attempt);
  [[nodiscard]] NetDecision fallback_or_throw(
      const DecisionRequest& request,
      std::chrono::steady_clock::time_point started, std::uint32_t attempts,
      const std::string& why);
  void note_success();
  void note_failure();

  ClientOptions options_;

  mutable std::mutex mutex_;
  util::Socket socket_;
  FrameDecoder decoder_;
  util::Rng backoff_rng_;
  std::uint64_t next_request_id_ = 0;

  std::shared_ptr<const ModelSnapshot> fallback_;
  std::unique_ptr<core::DrasAgent> fallback_replica_;

  // Breaker state (guarded by mutex_ except the open flag for readers).
  std::size_t consecutive_failures_ = 0;
  std::atomic<bool> breaker_open_{false};
  std::chrono::steady_clock::time_point breaker_reopen_at_{};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> transport_errors_{0};
  std::atomic<std::uint64_t> server_rejects_{0};
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> breaker_closes_{0};
};

}  // namespace dras::serve::net
