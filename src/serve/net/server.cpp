#include "serve/net/server.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/format.h"
#include "util/logging.h"

namespace dras::serve::net {
namespace {

using Clock = std::chrono::steady_clock;

struct ServerMetrics {
  obs::Counter& connections;
  obs::Counter& connections_shed;
  obs::Counter& requests_ok;
  obs::Counter& requests_shed;
  obs::Counter& requests_bad;
  obs::Counter& requests_deadline;
  obs::Counter& frame_errors;
  obs::Gauge& active_connections;
  obs::HdrHistogram& request_us;

  static ServerMetrics& get() {
    static ServerMetrics metrics = [] {
      auto& registry = obs::Registry::global();
      return ServerMetrics{
          registry.counter("serve.net.server.connections"),
          registry.counter("serve.net.server.connections_shed"),
          registry.counter("serve.net.server.requests_ok"),
          registry.counter("serve.net.server.requests_shed"),
          registry.counter("serve.net.server.requests_bad"),
          registry.counter("serve.net.server.requests_deadline"),
          registry.counter("serve.net.server.frame_errors"),
          registry.gauge("serve.net.server.active_connections"),
          registry.hdr("serve.net.server.request_us"),
      };
    }();
    return metrics;
  }
};

double micros_since(Clock::time_point start) noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

DecisionServer::DecisionServer(ServerOptions options, DecisionService& service)
    : options_(std::move(options)), service_(service) {
  if (options_.io_workers == 0) options_.io_workers = 1;
  if (options_.max_connections == 0)
    options_.max_connections = options_.io_workers;
}

DecisionServer::~DecisionServer() { stop(); }

void DecisionServer::start() {
  if (started_.exchange(true)) return;
  listener_ = util::Listener::bind_and_listen(options_.address);
  // Queue capacity covers every admissible connection so a handler task
  // is never rejected by the pool itself.
  pool_ = std::make_unique<exec::ThreadPool>(exec::ThreadPool::Options{
      options_.io_workers, options_.max_connections + 1});
  accept_thread_ = std::thread([this] { accept_loop(); });
  util::log_info("serve.net: listening on {}",
                 listener_.local_address().describe());
}

void DecisionServer::stop() {
  if (!started_.load() || stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  pool_.reset();  // drains queued handlers (they observe stopping_), joins
  util::log_info("serve.net: server drained and stopped");
}

util::SocketAddress DecisionServer::bound_address() const {
  return listener_.local_address();
}

DecisionServer::Stats DecisionServer::stats() const {
  Stats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.connections_shed = connections_shed_.load();
  stats.connections_closed = connections_closed_.load();
  stats.requests_ok = requests_ok_.load();
  stats.requests_shed = requests_shed_.load();
  stats.requests_unavailable = requests_unavailable_.load();
  stats.requests_deadline = requests_deadline_.load();
  stats.requests_bad = requests_bad_.load();
  stats.frame_errors = frame_errors_.load();
  return stats;
}

void DecisionServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::optional<util::Socket> accepted;
    try {
      accepted = listener_.accept(options_.poll_tick);
    } catch (const util::SocketError& error) {
      if (stopping_.load()) break;
      util::log_warn("serve.net: accept failed: {}", error.what());
      continue;
    }
    if (!accepted) continue;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().connections.add();

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // All handler workers are occupied: an accepted-but-unread
      // connection would just time out client-side.  Shed explicitly.
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().connections_shed.add();
      try {
        accepted->send_all(
            encode_goodbye(Status::Overloaded, "server at connection limit"),
            Clock::now() + options_.poll_tick);
      } catch (const util::SocketError&) {
        // Best effort; the close below is the real signal.
      }
      accepted->close();
      continue;
    }

    active_connections_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().active_connections.add(1.0);
    auto shared = std::make_shared<util::Socket>(std::move(*accepted));
    try {
      (void)pool_->submit(
          [this, shared]() mutable { handle_connection(std::move(*shared)); },
          "serve.net.connection");
    } catch (const std::exception&) {
      // Pool already shutting down: drop the connection.
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      ServerMetrics::get().active_connections.add(-1.0);
    }
  }
}

void DecisionServer::handle_connection(util::Socket socket) {
  FrameDecoder decoder;
  char buffer[4096];
  try {
    // Greet with the wire version and current model version so the
    // client can log skew before sending anything.
    auto snapshot = service_.current_snapshot();
    HelloMsg hello;
    hello.model_version = snapshot ? snapshot->version() : 0;
    socket.send_all(encode_hello(hello),
                    Clock::now() + options_.request_deadline);

    while (!stopping_.load(std::memory_order_relaxed)) {
      std::size_t n = 0;
      try {
        n = socket.recv_some(buffer, sizeof(buffer),
                             Clock::now() + options_.poll_tick);
      } catch (const util::SocketTimeout&) {
        continue;  // idle tick: re-check the stop flag
      }
      if (n == 0) {
        // Peer closed.  A partial frame left behind is a truncation.
        decoder.on_eof();
        break;
      }
      decoder.feed(std::string_view(buffer, n));
      std::optional<Frame> frame;
      while ((frame = decoder.next())) {
        handle_frame(socket, *frame);
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      try {
        socket.send_all(encode_goodbye(Status::ShuttingDown, "server drain"),
                        Clock::now() + options_.poll_tick);
      } catch (const util::SocketError&) {
      }
    }
  } catch (const WireError& error) {
    // Stream-level fault: this connection's byte stream is unusable, so
    // close it — but ONLY it.  Other connections are untouched.
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().frame_errors.add();
    util::log_warn("serve.net: closing connection after frame error [{}]: {}",
                   to_string(error.reason()), error.what());
    try {
      socket.send_all(encode_goodbye(Status::BadRequest, error.what()),
                      Clock::now() + options_.poll_tick);
    } catch (const util::SocketError&) {
    }
  } catch (const util::SocketError&) {
    // Peer vanished (reset / mid-write close).  Normal under chaos.
  } catch (const std::exception& error) {
    util::log_warn("serve.net: connection handler error: {}", error.what());
  }
  socket.close();
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  ServerMetrics::get().active_connections.add(-1.0);
}

void DecisionServer::handle_frame(util::Socket& socket, const Frame& frame) {
  switch (frame.type) {
    case FrameType::Ping:
      socket.send_all(encode_pong(decode_ping(frame)),
                      Clock::now() + options_.request_deadline);
      return;
    case FrameType::Pong:
    case FrameType::Hello:
    case FrameType::Goodbye:
      return;  // tolerated no-ops from a client
    case FrameType::Response:
      // A client must not send responses; treat as a protocol breach.
      throw WireError(WireError::Reason::BadType,
                      "client sent a Response frame");
    case FrameType::Request:
      break;
  }

  const auto started = Clock::now();
  RequestMsg msg;
  try {
    msg = decode_request(frame);
  } catch (const WireError& error) {
    // Framing was intact (CRC passed) but the body is malformed: fail
    // exactly this request when we can still correlate it.
    if (auto id = salvage_request_id(frame)) {
      requests_bad_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().requests_bad.add();
      ResponseMsg response;
      response.request_id = *id;
      response.status = Status::BadRequest;
      response.message = error.what();
      respond(socket, response);
      return;
    }
    throw;  // not even an id to answer: connection-level fault
  }

  ResponseMsg response;
  response.request_id = msg.request_id;

  if (stopping_.load(std::memory_order_relaxed)) {
    response.status = Status::ShuttingDown;
    response.message = "server draining";
    respond(socket, response);
    return;
  }
  if (service_.current_snapshot() == nullptr) {
    requests_unavailable_.fetch_add(1, std::memory_order_relaxed);
    response.status = Status::Unavailable;
    response.message = "no model installed";
    respond(socket, response);
    return;
  }
  if (inflight_requests_.fetch_add(1, std::memory_order_relaxed) >=
      options_.admission_capacity) {
    inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().requests_shed.add();
    response.status = Status::Overloaded;
    response.message = "admission queue full";
    respond(socket, response);
    return;
  }

  try {
    std::future<Decision> future = service_.submit(std::move(msg.request));
    if (future.wait_until(started + options_.request_deadline) !=
        std::future_status::ready) {
      // Abandon the future (the service will still complete it; the
      // shared state keeps it alive) and tell the client to retry.
      inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
      requests_deadline_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::get().requests_deadline.add();
      response.status = Status::DeadlineExceeded;
      response.message = "server deadline exceeded";
      respond(socket, response);
      return;
    }
    Decision decision = future.get();
    inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
    response.status = Status::Ok;
    response.model_version = decision.model_version;
    response.job_index = decision.job_index;
    response.batch_size = decision.batch_size;
    response.server_latency_us = decision.latency_us;
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().requests_ok.add();
    ServerMetrics::get().request_us.observe(micros_since(started));
  } catch (const std::invalid_argument& error) {
    // DecisionService validation: deterministic per-request failure.
    inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
    requests_bad_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().requests_bad.add();
    response.status = Status::BadRequest;
    response.message = error.what();
  } catch (const std::exception& error) {
    inflight_requests_.fetch_sub(1, std::memory_order_relaxed);
    response.status = stopping_.load() ? Status::ShuttingDown
                                       : Status::InternalError;
    response.message = error.what();
  }
  respond(socket, response);
}

void DecisionServer::respond(util::Socket& socket, const ResponseMsg& msg) {
  socket.send_all(encode_response(msg),
                  Clock::now() + options_.request_deadline);
}

}  // namespace dras::serve::net
