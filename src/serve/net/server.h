// DecisionServer: the accept loop that puts a serve::DecisionService on
// a socket (Unix domain or localhost TCP — see util::SocketAddress).
//
// Failure-domain contract, in decreasing blast radius:
//   * Process: never.  No client input can crash or wedge the server.
//   * Connection: a stream-level framing fault (bad magic, CRC mismatch,
//     version skew, truncation) means the byte stream has lost sync —
//     the server sends a best-effort Goodbye and closes THAT connection;
//     every other connection keeps serving.
//   * Request: a Request frame that passes framing but fails payload
//     decoding or DecisionService validation fails exactly that request
//     with a correlated BadRequest response; the connection keeps going
//     (PR 7's per-request containment, extended over the wire).
//
// Overload: connections beyond `max_connections` are turned away with a
// Goodbye{Overloaded} at accept; requests beyond `admission_capacity`
// in-flight decisions are shed with Response{Overloaded}.  Both are
// explicit signals the client's retry/backoff logic understands, never
// silent queue growth.
//
// Shutdown: stop() is drain-then-close — the listener closes first (no
// new connections), each connection handler finishes the request it is
// executing, answers ShuttingDown to anything newly read, and exits.
// Wiring stop() to util::InterruptGuard gives SIGINT/SIGTERM graceful
// drain (tools/dras_serve --listen does exactly that).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "exec/thread_pool.h"
#include "serve/decision_service.h"
#include "serve/net/wire.h"
#include "util/socket.h"

namespace dras::serve::net {

struct ServerOptions {
  util::SocketAddress address;
  /// Connection-handler threads; one handler occupies one worker for
  /// the connection's lifetime.
  std::size_t io_workers = 4;
  /// Concurrent connections before accept-time shedding.
  /// 0 = io_workers (a connection beyond that could not be read anyway).
  std::size_t max_connections = 0;
  /// In-flight decision requests before request-level shedding.
  std::size_t admission_capacity = 256;
  /// Server-side wall budget per request (submit → decision).
  std::chrono::milliseconds request_deadline{2000};
  /// Poll tick for accept/read loops — the stop-flag reaction latency.
  std::chrono::milliseconds poll_tick{20};
};

class DecisionServer {
 public:
  /// `service` must outlive the server.
  DecisionServer(ServerOptions options, DecisionService& service);
  ~DecisionServer();

  DecisionServer(const DecisionServer&) = delete;
  DecisionServer& operator=(const DecisionServer&) = delete;

  /// Bind, listen and launch the accept loop.  Throws util::SocketError
  /// when the address cannot be bound.
  void start();

  /// Drain-then-close: stop accepting, let in-flight requests finish,
  /// join everything.  Idempotent; the destructor calls it.
  void stop();

  /// The listening address (TCP port 0 resolved to the real port).
  [[nodiscard]] util::SocketAddress bound_address() const;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_shed = 0;    ///< Goodbye{Overloaded} at accept.
    std::uint64_t connections_closed = 0;  ///< Handler exits (any reason).
    std::uint64_t requests_ok = 0;
    std::uint64_t requests_shed = 0;        ///< Response{Overloaded}.
    std::uint64_t requests_unavailable = 0; ///< No model installed.
    std::uint64_t requests_deadline = 0;    ///< Response{DeadlineExceeded}.
    std::uint64_t requests_bad = 0;         ///< Response{BadRequest}.
    std::uint64_t frame_errors = 0;         ///< Stream-level WireErrors.
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t active_connections() const noexcept {
    return active_connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(util::Socket socket);
  void handle_frame(util::Socket& socket, const Frame& frame);
  void respond(util::Socket& socket, const ResponseMsg& msg);

  ServerOptions options_;
  DecisionService& service_;

  util::Listener listener_;
  std::thread accept_thread_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> inflight_requests_{0};

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_shed_{0};
  std::atomic<std::uint64_t> requests_unavailable_{0};
  std::atomic<std::uint64_t> requests_deadline_{0};
  std::atomic<std::uint64_t> requests_bad_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
};

}  // namespace dras::serve::net
