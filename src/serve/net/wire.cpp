#include "serve/net/wire.h"

#include <cstring>

namespace dras::serve::net {
namespace {

bool known_frame_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::Hello) &&
         type <= static_cast<std::uint8_t>(FrameType::Goodbye);
}

/// Map a BinaryReader over-read inside a payload decoder to BadPayload.
template <typename Fn>
auto decode_payload(const Frame& frame, std::string_view what, Fn&& fn) {
  try {
    util::BinaryReader reader(frame.payload);
    auto result = fn(reader);
    reader.expect_exhausted();
    return result;
  } catch (const WireError&) {
    throw;
  } catch (const util::SerializationError& error) {
    throw WireError(WireError::Reason::BadPayload,
                    std::string(what) + " payload malformed: " + error.what());
  }
}

}  // namespace

std::string_view to_string(WireError::Reason reason) noexcept {
  switch (reason) {
    case WireError::Reason::BadMagic: return "bad-magic";
    case WireError::Reason::VersionSkew: return "version-skew";
    case WireError::Reason::BadType: return "bad-type";
    case WireError::Reason::Oversized: return "oversized";
    case WireError::Reason::CrcMismatch: return "crc-mismatch";
    case WireError::Reason::Truncated: return "truncated";
    case WireError::Reason::BadPayload: return "bad-payload";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw WireError(WireError::Reason::Oversized,
                    "frame payload too large: " +
                        std::to_string(payload.size()) + " > " +
                        std::to_string(kMaxFramePayload));
  }
  util::BinaryWriter writer;
  writer.u32(kFrameMagic);
  writer.u8(kWireVersion);
  writer.u8(static_cast<std::uint8_t>(type));
  writer.u8(0);  // reserved
  writer.u8(0);  // reserved
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(util::crc32(payload));
  std::string frame = writer.take();
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) {
  // Compact lazily: drop consumed prefix once it dominates the buffer so
  // a long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<Frame> FrameDecoder::next() {
  const std::string_view view =
      std::string_view(buffer_).substr(consumed_);
  if (view.size() < kFrameHeaderSize) return std::nullopt;

  util::BinaryReader header(view.substr(0, kFrameHeaderSize));
  const std::uint32_t magic = header.u32();
  if (magic != kFrameMagic) {
    throw WireError(WireError::Reason::BadMagic,
                    "frame magic mismatch (stream desynced or not DRNF)");
  }
  const std::uint8_t version = header.u8();
  if (version != kWireVersion) {
    throw WireError(WireError::Reason::VersionSkew,
                    "peer wire version " + std::to_string(version) +
                        ", expected " + std::to_string(kWireVersion));
  }
  const std::uint8_t type = header.u8();
  if (!known_frame_type(type)) {
    throw WireError(WireError::Reason::BadType,
                    "unknown frame type " + std::to_string(type));
  }
  (void)header.u8();  // reserved
  (void)header.u8();  // reserved
  const std::uint32_t length = header.u32();
  if (length > kMaxFramePayload) {
    throw WireError(WireError::Reason::Oversized,
                    "declared payload length " + std::to_string(length) +
                        " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  const std::uint32_t crc = header.u32();

  if (view.size() < kFrameHeaderSize + length) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(view.data() + kFrameHeaderSize, length);
  if (util::crc32(frame.payload) != crc) {
    throw WireError(WireError::Reason::CrcMismatch,
                    "payload CRC mismatch on " + std::to_string(length) +
                        "-byte frame");
  }
  consumed_ += kFrameHeaderSize + length;
  ++frames_decoded_;
  return frame;
}

void FrameDecoder::on_eof() const {
  if (pending() > 0) {
    throw WireError(WireError::Reason::Truncated,
                    "connection closed mid-frame with " +
                        std::to_string(pending()) + " bytes buffered");
  }
}

void FrameDecoder::reset() {
  buffer_.clear();
  consumed_ = 0;
}

bool status_retryable(Status status) noexcept {
  switch (status) {
    case Status::Overloaded:
    case Status::Unavailable:
    case Status::DeadlineExceeded:
    case Status::ShuttingDown:
      return true;
    case Status::Ok:
    case Status::BadRequest:
    case Status::InternalError:
      return false;
  }
  return false;
}

std::string_view to_string(Status status) noexcept {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Overloaded: return "overloaded";
    case Status::BadRequest: return "bad-request";
    case Status::Unavailable: return "unavailable";
    case Status::DeadlineExceeded: return "deadline-exceeded";
    case Status::ShuttingDown: return "shutting-down";
    case Status::InternalError: return "internal-error";
  }
  return "unknown";
}

std::string encode_hello(const HelloMsg& msg) {
  util::BinaryWriter writer;
  writer.u8(msg.wire_version);
  writer.u64(msg.model_version);
  return encode_frame(FrameType::Hello, writer.buffer());
}

std::string encode_request(const RequestMsg& msg) {
  util::BinaryWriter writer;
  writer.u64(msg.request_id);
  writer.u64(msg.request.valid);
  writer.f32_span(msg.request.state);
  return encode_frame(FrameType::Request, writer.buffer());
}

std::string encode_response(const ResponseMsg& msg) {
  util::BinaryWriter writer;
  writer.u64(msg.request_id);
  writer.u8(static_cast<std::uint8_t>(msg.status));
  writer.u64(msg.model_version);
  writer.u64(msg.job_index);
  writer.u32(msg.batch_size);
  writer.f64(msg.server_latency_us);
  writer.str(msg.message);
  return encode_frame(FrameType::Response, writer.buffer());
}

std::string encode_ping(std::uint64_t nonce) {
  util::BinaryWriter writer;
  writer.u64(nonce);
  return encode_frame(FrameType::Ping, writer.buffer());
}

std::string encode_pong(std::uint64_t nonce) {
  util::BinaryWriter writer;
  writer.u64(nonce);
  return encode_frame(FrameType::Pong, writer.buffer());
}

std::string encode_goodbye(Status status, std::string_view message) {
  util::BinaryWriter writer;
  writer.u64(0);  // no request correlation for connection-level notices
  writer.u8(static_cast<std::uint8_t>(status));
  writer.u64(0);
  writer.u64(0);
  writer.u32(0);
  writer.f64(0.0);
  writer.str(message);
  return encode_frame(FrameType::Goodbye, writer.buffer());
}

namespace {

ResponseMsg decode_response_body(util::BinaryReader& reader,
                                 std::string_view what) {
  ResponseMsg msg;
  msg.request_id = reader.u64();
  const std::uint8_t status = reader.u8();
  if (status > static_cast<std::uint8_t>(Status::InternalError)) {
    throw WireError(WireError::Reason::BadPayload,
                    std::string(what) + " carries unknown status " +
                        std::to_string(status));
  }
  msg.status = static_cast<Status>(status);
  msg.model_version = reader.u64();
  msg.job_index = reader.u64();
  msg.batch_size = reader.u32();
  msg.server_latency_us = reader.f64();
  msg.message = reader.str();
  return msg;
}

}  // namespace

HelloMsg decode_hello(const Frame& frame) {
  return decode_payload(frame, "hello", [](util::BinaryReader& reader) {
    HelloMsg msg;
    msg.wire_version = reader.u8();
    msg.model_version = reader.u64();
    return msg;
  });
}

RequestMsg decode_request(const Frame& frame) {
  return decode_payload(frame, "request", [](util::BinaryReader& reader) {
    RequestMsg msg;
    msg.request_id = reader.u64();
    msg.request.valid = reader.u64();
    msg.request.state = reader.f32_vector();
    return msg;
  });
}

ResponseMsg decode_response(const Frame& frame) {
  return decode_payload(frame, "response", [](util::BinaryReader& reader) {
    return decode_response_body(reader, "response");
  });
}

std::uint64_t decode_ping(const Frame& frame) {
  return decode_payload(frame, "ping",
                        [](util::BinaryReader& reader) { return reader.u64(); });
}

std::uint64_t decode_pong(const Frame& frame) {
  return decode_payload(frame, "pong",
                        [](util::BinaryReader& reader) { return reader.u64(); });
}

ResponseMsg decode_goodbye(const Frame& frame) {
  return decode_payload(frame, "goodbye", [](util::BinaryReader& reader) {
    return decode_response_body(reader, "goodbye");
  });
}

std::optional<std::uint64_t> salvage_request_id(const Frame& frame) noexcept {
  if (frame.payload.size() < sizeof(std::uint64_t)) return std::nullopt;
  std::uint64_t id = 0;
  std::memcpy(&id, frame.payload.data(), sizeof(id));
  return id;
}

}  // namespace dras::serve::net
