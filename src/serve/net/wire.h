// Wire protocol for the out-of-process decision service.
//
// Every message travels inside a fixed 16-byte frame header followed by
// the payload:
//
//   offset  size  field
//   0       4     magic   "DRNF" (0x464E5244 little-endian)
//   4       1     wire version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved (zero)
//   8       4     payload length (bytes, <= kMaxFramePayload)
//   12      4     CRC-32 of the payload (util::crc32)
//
// Payloads are util::BinaryWriter layouts, so the framing and the body
// share one serialisation idiom with the checkpoint container.  The
// CRC makes corruption *detectable*: a flipped byte anywhere in the
// payload surfaces as WireError{CrcMismatch} at the receiver instead of
// a silently wrong decision — the property the chaos drill gates on.
//
// Decoding is incremental and adversarial-input-safe: FrameDecoder
// buffers raw bytes from the socket and yields complete frames; every
// malformed input (bad magic, version skew, oversized declared length,
// CRC mismatch, unknown type, truncation at EOF) throws a typed
// WireError and never reads out of bounds (the adversarial parser suite
// runs the lot under ASan/UBSan).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/decision_service.h"
#include "util/binio.h"

namespace dras::serve::net {

inline constexpr std::uint32_t kFrameMagic = 0x464E5244u;  // "DRNF" LE
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Hard payload cap: a corrupted length field cannot make the receiver
/// buffer gigabytes.  4 MiB is ~500x the largest real request (a Cori
/// PG window is ~48 KiB of state floats).
inline constexpr std::size_t kMaxFramePayload = 4u << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,     ///< Server -> client on accept: wire version, model version.
  Request = 2,   ///< Client -> server: one DecisionRequest.
  Response = 3,  ///< Server -> client: decision or typed failure status.
  Ping = 4,      ///< Liveness probe (either direction).
  Pong = 5,      ///< Ping echo.
  Goodbye = 6,   ///< Connection-level rejection/termination notice.
};

/// Typed framing/parsing failure.  Derives from SerializationError so
/// callers that already handle malformed binary input catch it too.
class WireError : public util::SerializationError {
 public:
  enum class Reason {
    BadMagic,     ///< Header magic mismatch — not our protocol / desynced.
    VersionSkew,  ///< Peer speaks a wire version we do not.
    BadType,      ///< Frame type byte outside the known range.
    Oversized,    ///< Declared payload length exceeds kMaxFramePayload.
    CrcMismatch,  ///< Payload CRC-32 does not match the header.
    Truncated,    ///< EOF with a partial frame buffered.
    BadPayload,   ///< Frame intact but the payload failed to decode.
  };

  WireError(Reason reason, const std::string& what)
      : util::SerializationError(what), reason_(reason) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

[[nodiscard]] std::string_view to_string(WireError::Reason reason) noexcept;

struct Frame {
  FrameType type = FrameType::Ping;
  std::string payload;
};

/// Frame `payload` with header + CRC; the result is ready to send.
/// Throws WireError{Oversized} when the payload exceeds the cap.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

/// Incremental frame decoder.  feed() raw socket bytes, then call
/// next() until it returns nullopt (more bytes needed).  Malformed
/// input throws WireError; the decoder is then poisoned (the stream has
/// lost sync) and the connection should be dropped.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// The next complete frame, or nullopt when more input is needed.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet yielded as frames.  Nonzero at EOF
  /// means the peer died mid-frame: call on_eof() to turn that into a
  /// typed Truncated error.
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - consumed_;
  }

  /// Throws WireError{Truncated} when a partial frame is buffered.
  void on_eof() const;

  void reset();

  [[nodiscard]] std::uint64_t frames_decoded() const noexcept {
    return frames_decoded_;
  }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  std::uint64_t frames_decoded_ = 0;
};

// ---------------------------------------------------------------------------
// Message bodies.

/// Response status.  Retryable statuses are server-side transients where
/// the request was *not* served (safe to retry because decision requests
/// are idempotent reads); BadRequest is deterministic and never retried.
enum class Status : std::uint8_t {
  Ok = 0,
  Overloaded = 1,        ///< Admission queue full — shed.
  BadRequest = 2,        ///< Malformed / failed validation. Not retryable.
  Unavailable = 3,       ///< No model installed yet.
  DeadlineExceeded = 4,  ///< Server-side deadline passed before a decision.
  ShuttingDown = 5,      ///< Server draining; connection closing.
  InternalError = 6,     ///< Unexpected server-side failure.
};

[[nodiscard]] bool status_retryable(Status status) noexcept;
[[nodiscard]] std::string_view to_string(Status status) noexcept;

struct HelloMsg {
  std::uint8_t wire_version = kWireVersion;
  std::uint64_t model_version = 0;  ///< 0 = no model installed yet.
};

struct RequestMsg {
  std::uint64_t request_id = 0;
  DecisionRequest request;
};

struct ResponseMsg {
  std::uint64_t request_id = 0;
  Status status = Status::Ok;
  std::uint64_t model_version = 0;
  std::uint64_t job_index = 0;
  std::uint32_t batch_size = 0;
  double server_latency_us = 0.0;
  std::string message;  ///< Diagnostic for non-Ok statuses.
};

// Encoders return a complete frame (header + payload), ready to send.
[[nodiscard]] std::string encode_hello(const HelloMsg& msg);
[[nodiscard]] std::string encode_request(const RequestMsg& msg);
[[nodiscard]] std::string encode_response(const ResponseMsg& msg);
[[nodiscard]] std::string encode_ping(std::uint64_t nonce);
[[nodiscard]] std::string encode_pong(std::uint64_t nonce);
[[nodiscard]] std::string encode_goodbye(Status status,
                                         std::string_view message);

// Decoders take a frame already validated by FrameDecoder (type + CRC)
// and throw WireError{BadPayload} when the body does not parse.
[[nodiscard]] HelloMsg decode_hello(const Frame& frame);
[[nodiscard]] RequestMsg decode_request(const Frame& frame);
[[nodiscard]] ResponseMsg decode_response(const Frame& frame);
[[nodiscard]] std::uint64_t decode_ping(const Frame& frame);
[[nodiscard]] std::uint64_t decode_pong(const Frame& frame);
[[nodiscard]] ResponseMsg decode_goodbye(const Frame& frame);

/// Best-effort request-id salvage from a Request frame whose payload
/// failed to decode: lets the server fail exactly that request with a
/// correlated BadRequest response instead of dropping the connection.
/// nullopt when even the id bytes are missing.
[[nodiscard]] std::optional<std::uint64_t> salvage_request_id(
    const Frame& frame) noexcept;

}  // namespace dras::serve::net
