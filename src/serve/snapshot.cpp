#include "serve/snapshot.h"

#include "ckpt/manager.h"

namespace dras::serve {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::load(
    const std::filesystem::path& path, const core::DrasConfig& config) {
  auto agent = std::make_unique<core::DrasAgent>(config);
  ckpt::load_agent_from_checkpoint(path, *agent);
  agent->set_training(false);
  const std::uint64_t version =
      ckpt::CheckpointManager::parse_episode(path).value_or(0);
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(config, path, version, std::move(agent)));
}

}  // namespace dras::serve
