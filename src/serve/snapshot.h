// An immutable, versioned serving model loaded from a checkpoint.
//
// A ModelSnapshot is the unit the hot-swap protocol moves around: the
// ModelWatcher loads one from the newest checkpoint file, the
// DecisionService flips a shared_ptr to it, and each inference worker
// clones a private replica so batched forwards never share mutable
// network scratch across threads.  The snapshot itself is never
// forwarded through after construction — it is a frozen parameter
// source, safe to share read-only between any number of workers.
//
// The version is the episode number encoded in the checkpoint filename
// (ckpt-<episode>.dras), which is exactly the trainer's progress
// counter — so "every response attributable to one snapshot version"
// means attributable to one training episode boundary.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "core/dras_agent.h"

namespace dras::serve {

class ModelSnapshot {
 public:
  /// Build an agent from `config`, load the agent slice of the
  /// checkpoint at `path` (fingerprint-guarded — a checkpoint written
  /// by a differently configured agent is rejected), disable training
  /// and freeze.  `version` defaults to the episode parsed from the
  /// filename (0 when the name is not a managed checkpoint name).
  /// Throws ckpt::CheckpointError / util::SerializationError on any
  /// framing or content defect — the caller keeps serving the old
  /// snapshot.
  static std::shared_ptr<const ModelSnapshot> load(
      const std::filesystem::path& path, const core::DrasConfig& config);

  [[nodiscard]] const core::DrasConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Deep copy for one inference worker: parameters and the (disabled)
  /// training flag carry over, so replica decisions are bit-identical
  /// to decisions made directly on the loaded agent.
  [[nodiscard]] std::unique_ptr<core::DrasAgent> make_replica() const {
    return agent_->clone_agent();
  }

  /// The pristine loaded agent (single-threaded use only — tests and
  /// the in-trainer determinism oracle).
  [[nodiscard]] const core::DrasAgent& agent() const noexcept {
    return *agent_;
  }

 private:
  ModelSnapshot(core::DrasConfig config, std::filesystem::path path,
                std::uint64_t version, std::unique_ptr<core::DrasAgent> agent)
      : config_(std::move(config)),
        path_(std::move(path)),
        version_(version),
        agent_(std::move(agent)) {}

  core::DrasConfig config_;
  std::filesystem::path path_;
  std::uint64_t version_ = 0;
  std::unique_ptr<core::DrasAgent> agent_;
};

}  // namespace dras::serve
