#include "sim/backfill.h"

namespace dras::sim {

bool backfill_legal(const Cluster& cluster, const Reservation& reservation,
                    const Job& job, Time now) {
  if (job.id == reservation.job) return false;
  if (!cluster.fits(job.size)) return false;
  // Fast path: the job is estimated to finish before the reserved start.
  if (now + job.runtime_estimate <= reservation.start) return true;
  // Slow path: the job would still be running at t_r; it is legal only if
  // the reservation's nodes remain covered.  Nodes available at t_r after
  // allocating the job: free_now - job.size + releases by t_r (the job
  // itself releases after t_r, so it contributes nothing).
  const int available_at_start =
      cluster.free_nodes() - job.size + cluster.released_by(reservation.start);
  return available_at_start >= reservation.size;
}

std::vector<Job*> backfill_candidates(const Cluster& cluster,
                                      const Reservation& reservation,
                                      const std::vector<Job*>& queue,
                                      Time now) {
  std::vector<Job*> candidates;
  for (Job* job : queue) {
    if (backfill_legal(cluster, reservation, *job, now))
      candidates.push_back(job);
  }
  return candidates;
}

}  // namespace dras::sim
