// EASY backfilling legality checks (paper §II-A, §III-B).
//
// With one outstanding reservation (R nodes at time t_r), a waiting job j
// may start now without delaying the reservation iff
//   (1) j fits in the currently free nodes, and
//   (2) after allocating j, at least R nodes are still (estimated to be)
//       available at t_r — i.e. j either finishes by t_r or runs on nodes
//       the reservation does not need.
// Estimated completion times are used throughout, as in production EASY.
#pragma once

#include <vector>

#include "sim/cluster.h"
#include "sim/job.h"
#include "sim/reservation.h"

namespace dras::sim {

/// Would starting `job` at `now` be a legal EASY backfill against
/// `reservation` given the current cluster state?
[[nodiscard]] bool backfill_legal(const Cluster& cluster,
                                  const Reservation& reservation,
                                  const Job& job, Time now);

/// Filter `queue` (arrival order preserved) down to jobs that may legally
/// backfill right now.  The reserved job itself is excluded.
[[nodiscard]] std::vector<Job*> backfill_candidates(
    const Cluster& cluster, const Reservation& reservation,
    const std::vector<Job*>& queue, Time now);

}  // namespace dras::sim
