#include "sim/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dras::sim {

Cluster::Cluster(int total_nodes)
    : total_nodes_(total_nodes), free_nodes_(total_nodes) {
  if (total_nodes <= 0)
    throw std::invalid_argument("cluster needs a positive node count");
}

bool Cluster::allocate(const Job& job, Time now) {
  if (!fits(job.size)) return false;
  assert(!running_.contains(job.id));
  RunningJob rec;
  rec.id = job.id;
  rec.size = job.size;
  rec.start = now;
  rec.estimated_end = now + job.runtime_estimate;
  rec.actual_end = now + job.effective_runtime();
  running_.emplace(job.id, rec);
  free_nodes_ -= job.size;
  return true;
}

std::optional<RunningJob> Cluster::release(JobId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) return std::nullopt;
  RunningJob rec = it->second;
  running_.erase(it);
  free_nodes_ += rec.size;
  assert(free_nodes_ <= total_nodes_);
  return rec;
}

std::vector<RunningJob> Cluster::running_jobs() const {
  std::vector<RunningJob> jobs;
  jobs.reserve(running_.size());
  for (const auto& [id, rec] : running_) jobs.push_back(rec);
  return jobs;
}

const RunningJob* Cluster::find_running(JobId id) const noexcept {
  const auto it = running_.find(id);
  return it == running_.end() ? nullptr : &it->second;
}

void Cluster::fail_free_node(Time repair_end) {
  assert(free_nodes_ > 0);
  --free_nodes_;
  down_.insert(std::upper_bound(down_.begin(), down_.end(), repair_end),
               repair_end);
}

void Cluster::repair_node() {
  assert(!down_.empty());
  down_.erase(down_.begin());
  ++free_nodes_;
  assert(free_nodes_ <= total_nodes_);
}

Time Cluster::earliest_start(int size, Time now) const {
  if (size > total_nodes_)
    throw std::invalid_argument("job larger than the whole machine");
  if (fits(size)) return now;
  std::vector<std::pair<Time, int>> releases;  // (estimated end, size)
  releases.reserve(running_.size() + down_.size());
  for (const auto& [id, rec] : running_)
    releases.emplace_back(rec.estimated_end, rec.size);
  for (const Time repair : down_) releases.emplace_back(repair, 1);
  std::sort(releases.begin(), releases.end());
  int available = free_nodes_;
  for (const auto& [when, n] : releases) {
    available += n;
    if (available >= size) return std::max(when, now);
  }
  // Unreachable: sum of releases restores total_nodes_ >= size.
  assert(false);
  return now;
}

int Cluster::released_by(Time when) const noexcept {
  int released = 0;
  for (const auto& [id, rec] : running_)
    if (rec.estimated_end <= when) released += rec.size;
  for (const Time repair : down_)
    if (repair <= when) ++released;
  return released;
}

void Cluster::encode_nodes(Time now, std::vector<NodeRow>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(total_nodes_));
  std::vector<RunningJob> jobs = running_jobs();
  std::sort(jobs.begin(), jobs.end(), [](const RunningJob& a,
                                         const RunningJob& b) {
    if (a.estimated_end != b.estimated_end)
      return a.estimated_end < b.estimated_end;
    return a.id < b.id;
  });
  for (const RunningJob& rec : jobs) {
    const float delta = static_cast<float>(std::max(0.0, rec.estimated_end - now));
    for (int i = 0; i < rec.size; ++i)
      out.push_back(NodeRow{0.0f, delta});
  }
  // Down nodes look like busy nodes releasing at their repair time, so
  // the agent sees failed capacity exactly as temporarily-claimed nodes.
  for (const Time repair : down_)
    out.push_back(NodeRow{0.0f, static_cast<float>(std::max(0.0, repair - now))});
  const auto busy = out.size();
  for (std::size_t i = busy; i < static_cast<std::size_t>(total_nodes_); ++i)
    out.push_back(NodeRow{1.0f, 0.0f});
}

void Cluster::clear() {
  running_.clear();
  down_.clear();
  free_nodes_ = total_nodes_;
}

}  // namespace dras::sim
