// Node pool with estimated-release accounting.
//
// The paper's state encoding (§III-A) treats nodes as interchangeable:
// each node contributes an availability bit plus the delta between its
// estimated release time and "now".  The cluster therefore tracks counts
// and the set of running jobs (size + estimated / actual end), and only
// materialises per-node rows on demand for the neural-network input.
//
// Estimated end times come from user runtime estimates (upper bounds); the
// actual end, driven by the trace runtime, is never later than the
// estimate.  Reservation and EASY-backfill arithmetic deliberately use the
// *estimated* ends, exactly as production backfilling schedulers do.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/job.h"

namespace dras::sim {

/// A running-job record inside the cluster.
struct RunningJob {
  JobId id = kInvalidJob;
  int size = 0;
  Time start = 0.0;
  Time estimated_end = 0.0;  ///< start + runtime_estimate.
  Time actual_end = 0.0;     ///< start + effective_runtime.
};

/// One materialised node row of the paper's state encoding:
/// (available bit, estimated-release minus now; zero when available).
struct NodeRow {
  float available = 1.0f;
  float release_delta = 0.0f;
};

/// Fixed pool of `total_nodes` interchangeable nodes.
class Cluster {
 public:
  explicit Cluster(int total_nodes);

  [[nodiscard]] int total_nodes() const noexcept { return total_nodes_; }
  [[nodiscard]] int free_nodes() const noexcept { return free_nodes_; }
  [[nodiscard]] int down_nodes() const noexcept {
    return static_cast<int>(down_.size());
  }
  [[nodiscard]] int used_nodes() const noexcept {
    return total_nodes_ - free_nodes_ - down_nodes();
  }
  [[nodiscard]] double utilization() const noexcept {
    return static_cast<double>(used_nodes()) / total_nodes_;
  }
  [[nodiscard]] bool fits(int size) const noexcept {
    return size <= free_nodes_;
  }
  [[nodiscard]] std::size_t running_count() const noexcept {
    return running_.size();
  }

  /// Allocate `job.size` nodes at time `now`.  Returns false (no change)
  /// when the job does not fit.
  bool allocate(const Job& job, Time now);

  /// Release the nodes held by `id`.  Returns the record, or nullopt if the
  /// job was not running.
  std::optional<RunningJob> release(JobId id);

  /// All running jobs, unordered.
  [[nodiscard]] std::vector<RunningJob> running_jobs() const;

  /// Look up one running job.
  [[nodiscard]] const RunningJob* find_running(JobId id) const noexcept;

  /// Take one *free* node out of service until `repair_end` (node
  /// failure; see sim/fault.h).  Requires free_nodes() > 0.  A down node
  /// is neither free nor used: it cannot be allocated and does not count
  /// toward utilization.
  void fail_free_node(Time repair_end);

  /// Return the earliest-due down node to service.  Requires
  /// down_nodes() > 0.  Repairs complete in repair-end order, so the
  /// NodeRepair event stream and this FIFO always agree.
  void repair_node();

  /// Repair-end times of down nodes, ascending.
  [[nodiscard]] const std::vector<Time>& down_until() const noexcept {
    return down_;
  }

  /// Earliest time at which `size` nodes are simultaneously free, assuming
  /// running jobs end at their *estimated* ends.  Returns `now` when the
  /// job already fits.  Requires size <= total_nodes().
  [[nodiscard]] Time earliest_start(int size, Time now) const;

  /// Nodes whose estimated release is <= `when` (excludes already-free).
  [[nodiscard]] int released_by(Time when) const noexcept;

  /// Materialise the N node rows of the state encoding at time `now`,
  /// appending into `out` (resized to total_nodes()).  Busy nodes are
  /// listed first in increasing estimated-release order, then free nodes;
  /// the ordering is deterministic so identical states encode identically.
  void encode_nodes(Time now, std::vector<NodeRow>& out) const;

  /// Reset to an empty (all idle) cluster.
  void clear();

 private:
  int total_nodes_;
  int free_nodes_;
  std::unordered_map<JobId, RunningJob> running_;
  std::vector<Time> down_;  // repair-end times, ascending

};

}  // namespace dras::sim
