#include "sim/event_queue.h"

namespace dras::sim {

bool event_after(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time > b.time;
  if (a.type != b.type) return a.type > b.type;
  if (a.job != b.job) return a.job > b.job;
  return a.aux > b.aux;
}

Event EventQueue::pop() {
  Event event = heap_.top();
  heap_.pop();
  return event;
}

void EventQueue::clear() {
  heap_ = {};
}

}  // namespace dras::sim
