// Discrete-event queue for the scheduling simulator.
//
// Three event kinds drive the fault-free simulation: job submission (from
// the trace), job completion (clock advance by the effective runtime), and
// the arrival of a reservation's start time.  Fault-aware runs add node
// failure / repair events and per-job checkpoint I/O phases (sim/fault.h).
// Events with equal timestamps are ordered deterministically — completions
// first, so resources freed at time t are visible to decisions taken at
// time t, then reservation triggers, then submissions, then fault events —
// and ties within a kind break on job id, then on the aux payload.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/job.h"

namespace dras::sim {

enum class EventType : std::uint8_t {
  JobEnd = 0,            ///< A running job completes.
  ReservationReady = 1,  ///< A reservation's start time arrives.
  JobSubmit = 2,         ///< A job enters the system from the trace.
  NodeFailure = 3,       ///< A node fails (aux = fault-group index).
  NodeRepair = 4,        ///< A failed node returns to service.
  CkptStart = 5,         ///< A job reaches a checkpoint boundary.
  CkptDone = 6,          ///< A job's checkpoint I/O completes.
};

struct Event {
  Time time = 0.0;
  EventType type = EventType::JobSubmit;
  JobId job = kInvalidJob;
  /// Event-kind payload: the job's incarnation for JobEnd / CkptStart /
  /// CkptDone (stale events from a killed incarnation are ignored), the
  /// fault-group index for NodeFailure.  Always 0 in fault-free runs.
  std::int64_t aux = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Strict-weak ordering: earliest time first; see file comment for ties.
[[nodiscard]] bool event_after(const Event& a, const Event& b) noexcept;

/// Min-heap of events with deterministic ordering.
class EventQueue {
 public:
  void push(Event event) { heap_.push(event); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }
  Event pop();
  void clear();

 private:
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return event_after(a, b);
    }
  };
  std::priority_queue<Event, std::vector<Event>, After> heap_;
};

}  // namespace dras::sim
