#include "sim/fault.h"

#include <stdexcept>
#include <string>

namespace dras::sim {

std::string_view to_string(RequeuePolicy policy) noexcept {
  switch (policy) {
    case RequeuePolicy::Requeue: return "requeue";
    case RequeuePolicy::Resubmit: return "resubmit";
    case RequeuePolicy::Drop: return "drop";
  }
  return "requeue";
}

RequeuePolicy parse_requeue_policy(std::string_view text) {
  if (text == "requeue") return RequeuePolicy::Requeue;
  if (text == "resubmit") return RequeuePolicy::Resubmit;
  if (text == "drop") return RequeuePolicy::Drop;
  throw std::invalid_argument("unknown requeue policy: " + std::string(text) +
                              " (expected requeue|resubmit|drop)");
}

bool FaultConfig::failures_active() const noexcept {
  if (groups.empty()) return mtbf > 0.0;
  for (const FaultNodeGroup& group : groups)
    if (group.nodes > 0 && group.mtbf > 0.0) return true;
  return false;
}

void FaultStats::merge(const FaultStats& other) noexcept {
  node_failures += other.node_failures;
  job_kills += other.job_kills;
  requeues += other.requeues;
  checkpoints += other.checkpoints;
  wasted_node_seconds += other.wasted_node_seconds;
}

}  // namespace dras::sim
