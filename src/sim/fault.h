// Failure model for the simulated system.
//
// Production HPC machines are not fault-free: nodes fail (roughly
// exponentially, per node-group MTBF), take a repair time to return,
// kill whatever job they were running, and applications defend
// themselves with periodic checkpoints whose I/O contends for a shared
// bandwidth budget (interfering checkpoints stretch effective runtime).
// This header describes that scenario; the engine lives in
// sim::Simulator and activates only when FaultConfig::enabled() — a
// default-constructed config leaves the simulator byte-identical to the
// historical fault-free behaviour.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dras::sim {

/// What happens to a job killed by a node failure.
enum class RequeuePolicy : std::uint8_t {
  Requeue = 0,   ///< Back of the wait queue, original submit time kept
                 ///< (waits accumulate across incarnations).
  Resubmit = 1,  ///< Back of the queue as if newly submitted now.
  Drop = 2,      ///< Gone; counted as unfinished.
};

[[nodiscard]] std::string_view to_string(RequeuePolicy policy) noexcept;
/// Parse "requeue" / "resubmit" / "drop"; throws std::invalid_argument.
[[nodiscard]] RequeuePolicy parse_requeue_policy(std::string_view text);

/// One node-group's failure process: `nodes` nodes failing with the
/// given per-node MTBF contribute an independent Poisson stream of rate
/// nodes / mtbf.  Which node a failure strikes is drawn uniformly over
/// the whole (interchangeable) machine.
struct FaultNodeGroup {
  int nodes = 0;
  double mtbf = 0.0;  ///< Seconds; <= 0 disables the group.

  friend bool operator==(const FaultNodeGroup&,
                         const FaultNodeGroup&) = default;
};

/// Fault-scenario knobs.  All-defaults == fault-free.
struct FaultConfig {
  /// Per-node mean time between failures, seconds; 0 disables failures.
  /// Ignored when `groups` is non-empty.
  double mtbf = 0.0;
  /// Seconds a failed node stays down before repair returns it.
  double repair_time = 1800.0;
  RequeuePolicy requeue = RequeuePolicy::Requeue;
  /// Compute-seconds of progress between application checkpoints;
  /// 0 disables checkpointing (a killed job then restarts from zero).
  double ckpt_interval = 0.0;
  /// Channel-seconds of checkpoint I/O per allocated node.
  double ckpt_seconds_per_node = 2.0;
  /// Shared checkpoint-channel speed multiplier (> 0).  Transfers are
  /// serialized: concurrent checkpoints queue and stretch runtime.
  double io_bandwidth = 1.0;
  /// Window for the recent-fault-rate state feature, seconds.
  double feature_window = 4.0 * 3600.0;
  /// Seed for the failure stream ("sim-fault" derived stream).
  std::uint64_t seed = 0;
  /// Heterogeneous failure processes; empty = one group of the whole
  /// machine at `mtbf`.
  std::vector<FaultNodeGroup> groups;

  [[nodiscard]] bool failures_active() const noexcept;
  [[nodiscard]] bool checkpoints_active() const noexcept {
    return ckpt_interval > 0.0 && ckpt_seconds_per_node > 0.0 &&
           io_bandwidth > 0.0;
  }
  /// Anything at all to simulate?  When false the simulator takes the
  /// exact legacy code path.
  [[nodiscard]] bool enabled() const noexcept {
    return failures_active() || checkpoints_active();
  }

  friend bool operator==(const FaultConfig&, const FaultConfig&) = default;
};

/// Cumulative fault accounting (one episode, or merged across a run).
struct FaultStats {
  std::uint64_t node_failures = 0;  ///< Failure events (incl. absorbed).
  std::uint64_t job_kills = 0;      ///< Jobs killed by a node failure.
  std::uint64_t requeues = 0;       ///< Kills that re-entered the queue.
  std::uint64_t checkpoints = 0;    ///< Completed checkpoint writes.
  double wasted_node_seconds = 0.0;  ///< Lost (non-durable) work.

  void merge(const FaultStats& other) noexcept;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Cross-episode fault scenario: the configuration plus cumulative
/// counters.  Serialized into the checkpoint container (section "FALT")
/// so crash-resume under faults reports identical totals.
struct FaultScenario {
  FaultConfig config;
  FaultStats stats;
};

}  // namespace dras::sim
