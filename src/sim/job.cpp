#include "sim/job.h"

#include <algorithm>
#include "util/format.h"
#include <stdexcept>

namespace dras::sim {

std::string_view to_string(ExecMode mode) noexcept {
  switch (mode) {
    case ExecMode::None: return "none";
    case ExecMode::Ready: return "ready";
    case ExecMode::Reserved: return "reserved";
    case ExecMode::Backfilled: return "backfilled";
  }
  return "?";
}

std::string validate_job(const Job& job) {
  if (job.id < 0) return util::format("job has invalid id {}", job.id);
  if (job.size <= 0)
    return util::format("job {} has non-positive size {}", job.id, job.size);
  if (job.submit_time < 0.0)
    return util::format("job {} has negative submit time", job.id);
  if (job.runtime_estimate <= 0.0)
    return util::format("job {} has non-positive runtime estimate", job.id);
  if (job.runtime_actual < 0.0)
    return util::format("job {} has negative actual runtime", job.id);
  if (job.priority != 0 && job.priority != 1)
    return util::format("job {} has priority {} outside {{0,1}}", job.id,
                       job.priority);
  for (const JobId dep : job.dependencies) {
    if (dep == job.id)
      return util::format("job {} depends on itself", job.id);
  }
  return {};
}

void normalize_trace(Trace& trace) {
  for (const Job& job : trace) {
    if (auto err = validate_job(job); !err.empty())
      throw std::invalid_argument(err);
  }
  std::sort(trace.begin(), trace.end(), [](const Job& a, const Job& b) {
    if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
    return a.id < b.id;
  });
}

}  // namespace dras::sim
