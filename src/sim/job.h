// Job model for the scheduling simulator.
//
// Mirrors the paper's job abstraction (§II-A): rigid jobs described by a
// size (node count) and a user-supplied runtime estimate that acts as an
// upper bound (the scheduler kills a job when it exceeds its estimate).
// The trace additionally carries the actual runtime used to advance the
// simulation clock, an optional priority bit, and optional dependencies
// (a job is hidden from scheduling until all parents have completed,
// matching Theta's handling of dependent jobs).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dras::sim {

using JobId = std::int64_t;
using Time = double;  ///< Seconds since the trace epoch.

inline constexpr Time kUnsetTime = -1.0;
inline constexpr JobId kInvalidJob = -1;

/// Sentinel user/project id: identity unknown (the SWF "-1" convention).
inline constexpr int kUnknownUser = -1;

/// How a job was ultimately dispatched (paper §III-B).
enum class ExecMode : std::uint8_t {
  None = 0,        ///< Not yet started.
  Ready = 1,       ///< Selected for immediate execution.
  Reserved = 2,    ///< Held a resource reservation before starting.
  Backfilled = 3,  ///< Started ahead of a reservation through a backfill hole.
};

[[nodiscard]] std::string_view to_string(ExecMode mode) noexcept;

/// A single batch job.
struct Job {
  JobId id = kInvalidJob;
  Time submit_time = 0.0;
  int size = 1;                 ///< Requested nodes (rigid).
  Time runtime_estimate = 0.0;  ///< User walltime request; kill bound.
  Time runtime_actual = 0.0;    ///< True runtime from the trace.
  int priority = 0;             ///< 1 = high priority, 0 = low (§III-A).
  std::vector<JobId> dependencies;  ///< Parent jobs; empty for most jobs.

  // --- Multi-tenant identity (src/fair; -1 = unknown, the SWF sentinel) ---
  int user_id = kUnknownUser;     ///< Submitting user (SWF field 12).
  int project_id = kUnknownUser;  ///< Group / allocation project (field 13).

  // --- Filled in by the simulator ---
  Time start_time = kUnsetTime;
  Time end_time = kUnsetTime;
  ExecMode mode = ExecMode::None;

  // --- Fault-model bookkeeping (sim/fault.h; untouched when fault-free) ---
  std::int64_t incarnation = 0;  ///< Bumped on each kill; stale events ignored.
  int requeues = 0;              ///< Times killed and re-entered the queue.
  Time progress_saved = 0.0;     ///< Compute-seconds durably checkpointed.
  double wasted_node_seconds = 0.0;  ///< Lost work across kills.

  /// Runtime the simulator will charge: the actual runtime capped at the
  /// estimate (jobs exceeding their request are killed, §II-A).
  [[nodiscard]] Time effective_runtime() const noexcept {
    return runtime_actual < runtime_estimate ? runtime_actual
                                             : runtime_estimate;
  }

  [[nodiscard]] bool started() const noexcept {
    return start_time != kUnsetTime;
  }
  [[nodiscard]] bool finished() const noexcept {
    return end_time != kUnsetTime;
  }
  /// Wait time; only meaningful once started.
  [[nodiscard]] Time wait_time() const noexcept {
    return start_time - submit_time;
  }
  /// Response time (submission to completion); needs `finished()`.
  [[nodiscard]] Time response_time() const noexcept {
    return end_time - submit_time;
  }
  /// Bounded slowdown with a floor on runtime to avoid division blow-up.
  [[nodiscard]] double slowdown(Time runtime_floor = 1.0) const noexcept {
    const Time run = effective_runtime() > runtime_floor ? effective_runtime()
                                                         : runtime_floor;
    return response_time() / run;
  }
  /// Node-seconds consumed by the job.
  [[nodiscard]] double node_seconds() const noexcept {
    return static_cast<double>(size) * effective_runtime();
  }
};

/// Validate trace-level invariants for one job; returns an error message or
/// an empty string when the job is well-formed.
[[nodiscard]] std::string validate_job(const Job& job);

/// A trace is a submit-time-ordered list of jobs.
using Trace = std::vector<Job>;

/// Sort a trace by (submit_time, id) and verify per-job invariants.
/// Throws std::invalid_argument when a job fails validation.
void normalize_trace(Trace& trace);

}  // namespace dras::sim
