#include "sim/metrics_collector.h"

#include <cassert>

namespace dras::sim {

MetricsCollector::MetricsCollector(int total_nodes)
    : total_nodes_(total_nodes) {}

void MetricsCollector::advance(Time from, Time to, int used_nodes) {
  assert(to >= from);
  const double dt = to - from;
  used_node_seconds_ += dt * used_nodes;
  elapsed_node_seconds_ += dt * total_nodes_;
}

void MetricsCollector::record_completion(const Job& job) {
  JobRecord rec;
  rec.id = job.id;
  rec.size = job.size;
  rec.priority = job.priority;
  rec.submit = job.submit_time;
  rec.start = job.start_time;
  rec.end = job.end_time;
  rec.mode = job.mode;
  rec.requeues = job.requeues;
  rec.wasted_node_seconds = job.wasted_node_seconds;
  rec.user_id = job.user_id;
  rec.project_id = job.project_id;
  records_.push_back(rec);
}

double MetricsCollector::utilization() const noexcept {
  return elapsed_node_seconds_ > 0.0
             ? used_node_seconds_ / elapsed_node_seconds_
             : 0.0;
}

void MetricsCollector::clear() {
  used_node_seconds_ = 0.0;
  elapsed_node_seconds_ = 0.0;
  records_.clear();
  faults_ = FaultStats{};
}

}  // namespace dras::sim
