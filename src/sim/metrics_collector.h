// Per-run metrics collection.
//
// Collects a slim record for every completed job plus a node-seconds
// integral of machine usage, from which all paper metrics (§IV-E: wait,
// response, slowdown, utilisation) and all figure aggregations (per size
// bucket, per execution mode, per week) are derived after the run.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault.h"
#include "sim/job.h"

namespace dras::sim {

/// Everything the evaluation needs to know about one finished job.
struct JobRecord {
  JobId id = kInvalidJob;
  int size = 0;
  int priority = 0;
  Time submit = 0.0;
  Time start = 0.0;  ///< Start of the completing incarnation.
  Time end = 0.0;
  ExecMode mode = ExecMode::None;
  int requeues = 0;  ///< Fault kills survived before completing.
  double wasted_node_seconds = 0.0;  ///< Lost work across those kills.
  int user_id = kUnknownUser;     ///< Submitting user (src/fair).
  int project_id = kUnknownUser;  ///< Allocation project.

  [[nodiscard]] Time wait() const noexcept { return start - submit; }
  [[nodiscard]] Time response() const noexcept { return end - submit; }
  [[nodiscard]] Time runtime() const noexcept { return end - start; }
  [[nodiscard]] double slowdown(Time floor = 1.0) const noexcept {
    const Time run = runtime() > floor ? runtime() : floor;
    return response() / run;
  }
  [[nodiscard]] double node_seconds() const noexcept {
    return static_cast<double>(size) * runtime();
  }
};

class MetricsCollector {
 public:
  explicit MetricsCollector(int total_nodes);

  /// Integrate machine usage over [from, to) with `used_nodes` busy.
  void advance(Time from, Time to, int used_nodes);

  void record_completion(const Job& job);

  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] double used_node_seconds() const noexcept {
    return used_node_seconds_;
  }
  [[nodiscard]] double elapsed_node_seconds() const noexcept {
    return elapsed_node_seconds_;
  }
  /// Ratio of useful node-hours to elapsed node-hours (§IV-E).
  [[nodiscard]] double utilization() const noexcept;

  // --- Fault accounting (sim/fault.h) ---
  void record_failure() noexcept { ++faults_.node_failures; }
  /// A job was killed by a node failure, losing `wasted_node_seconds`
  /// of non-checkpointed work.
  void record_kill(double wasted_node_seconds) noexcept {
    ++faults_.job_kills;
    faults_.wasted_node_seconds += wasted_node_seconds;
  }
  void record_requeue() noexcept { ++faults_.requeues; }
  void record_checkpoint() noexcept { ++faults_.checkpoints; }
  [[nodiscard]] const FaultStats& faults() const noexcept { return faults_; }

  void clear();

 private:
  int total_nodes_;
  double used_node_seconds_ = 0.0;
  double elapsed_node_seconds_ = 0.0;
  std::vector<JobRecord> records_;
  FaultStats faults_;
};

}  // namespace dras::sim
