#include "sim/profile.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace dras::sim {

AvailabilityProfile::AvailabilityProfile(
    const Cluster& cluster, std::span<const Reservation> reservations,
    Time now)
    : now_(now) {
  // Accumulate deltas at each breakpoint.
  std::map<Time, int> deltas;
  for (const RunningJob& rec : cluster.running_jobs()) {
    const Time release = std::max(rec.estimated_end, now);
    deltas[release] += rec.size;
  }
  // Down nodes (sim/fault.h) come back at their repair times.
  for (const Time repair : cluster.down_until())
    deltas[std::max(repair, now)] += 1;
  for (const Reservation& r : reservations) {
    const Time start = std::max(r.start, now);
    deltas[start] -= r.size;
    deltas[start + std::max(r.duration, 0.0)] += r.size;
  }

  steps_.reserve(deltas.size() + 1);
  int available = cluster.free_nodes();
  // Apply any deltas landing exactly at `now` into the initial step.
  auto it = deltas.begin();
  while (it != deltas.end() && it->first <= now) {
    available += it->second;
    ++it;
  }
  steps_.push_back(Step{now, available});
  for (; it != deltas.end(); ++it) {
    available += it->second;
    steps_.push_back(Step{it->first, available});
  }
}

int AvailabilityProfile::available_at(Time t) const {
  assert(!steps_.empty());
  // Last step with time <= t.
  const auto after = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& step) { return value < step.time; });
  if (after == steps_.begin()) return steps_.front().available;
  return std::prev(after)->available;
}

int AvailabilityProfile::min_available(Time from, Time to) const {
  if (to <= from) return available_at(from);
  int lowest = available_at(from);
  for (const Step& step : steps_) {
    if (step.time <= from) continue;
    if (step.time >= to) break;
    lowest = std::min(lowest, step.available);
  }
  return lowest;
}

Time AvailabilityProfile::earliest_start(int size, Time duration) const {
  // Candidate starts: now and every breakpoint.  Availability only
  // changes at breakpoints, so checking candidates in order finds the
  // earliest feasible window.
  for (const Step& step : steps_) {
    const Time candidate = std::max(step.time, now_);
    if (min_available(candidate, candidate + duration) >= size)
      return candidate;
  }
  // All claims expire after the last breakpoint; the machine is as free
  // as it will ever be there.
  return steps_.back().time;
}

bool AvailabilityProfile::can_start_now(int size, Time duration) const {
  return min_available(now_, now_ + duration) >= size;
}

}  // namespace dras::sim
