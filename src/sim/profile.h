// Future node-availability profile.
//
// A step function A(t) = nodes available at time t >= now, built from
//   + the currently free nodes,
//   + releases of running jobs at their *estimated* ends,
//   − claims of outstanding reservations (r.size nodes held from r.start
//     for the reserved job's estimated runtime).
//
// The profile generalises the single-reservation EASY arithmetic in
// backfill.h to arbitrarily many outstanding reservations: a job may
// start now iff subtracting its own claim keeps A(t) non-negative
// everywhere, and a new reservation's earliest start is the first t where
// A stays >= size for the job's whole estimated duration.  This is the
// engine behind the reservation-depth extension (conservative-style
// backfilling when depth is large, plain EASY at depth 1).
#pragma once

#include <span>
#include <vector>

#include "sim/cluster.h"
#include "sim/job.h"
#include "sim/reservation.h"

namespace dras::sim {

class AvailabilityProfile {
 public:
  /// Build the profile at time `now` from the cluster's running set and
  /// the outstanding reservations.
  AvailabilityProfile(const Cluster& cluster,
                      std::span<const Reservation> reservations, Time now);

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Available nodes at time t (t >= now).
  [[nodiscard]] int available_at(Time t) const;

  /// Minimum availability over [from, to).  `to` may be +infinity
  /// conceptually; pass kOpenEnd for "forever".
  [[nodiscard]] int min_available(Time from, Time to) const;

  /// Earliest time t >= now at which `size` nodes stay available for the
  /// whole window [t, t + duration).  Always succeeds for
  /// size <= total nodes because every claim eventually expires.
  [[nodiscard]] Time earliest_start(int size, Time duration) const;

  /// Would starting a job of `size` nodes now, holding them for
  /// `duration` (its runtime estimate), violate any future commitment?
  [[nodiscard]] bool can_start_now(int size, Time duration) const;

  /// Step breakpoints (time, available-after-time); for tests/debugging.
  struct Step {
    Time time = 0.0;
    int available = 0;
  };
  [[nodiscard]] const std::vector<Step>& steps() const noexcept {
    return steps_;
  }

  static constexpr Time kOpenEnd = 1e300;

 private:
  Time now_;
  std::vector<Step> steps_;  // sorted by time; steps_[0].time == now
};

}  // namespace dras::sim
