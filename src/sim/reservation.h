// Resource reservation ledger.
//
// A reservation pins the earliest start time of a job that cannot run
// now; backfilled jobs must not delay it (see backfill.h / profile.h).
// The ledger holds up to `depth` outstanding reservations:
//
//   depth == 1  — classic EASY (paper §II-A / §III-B): one reservation,
//                 exactly the behaviour DRAS and FCFS use in the paper.
//   depth  > 1  — the conservative-backfilling extension: several queued
//                 jobs hold future node claims simultaneously, planned
//                 through the AvailabilityProfile.
//
// Reservations are system commitments: they persist until the reserved
// job starts (the simulator starts it automatically once it fits without
// jeopardising the remaining reservations).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sim/job.h"

namespace dras::sim {

struct Reservation {
  JobId job = kInvalidJob;
  int size = 0;         ///< Nodes the reserved job needs.
  Time start = 0.0;     ///< Earliest start computed from estimated releases.
  Time duration = 0.0;  ///< Reserved job's runtime estimate (claim length).
};

class ReservationLedger {
 public:
  explicit ReservationLedger(std::size_t depth = 1) : depth_(depth) {}

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t count() const noexcept { return list_.size(); }
  [[nodiscard]] bool active() const noexcept { return !list_.empty(); }
  [[nodiscard]] bool full() const noexcept { return list_.size() >= depth_; }

  /// Oldest outstanding reservation (the only one at depth 1).
  [[nodiscard]] const Reservation& get() const { return list_.front(); }
  [[nodiscard]] std::span<const Reservation> all() const noexcept {
    return list_;
  }
  [[nodiscard]] bool holds(JobId id) const noexcept {
    return find(id) != list_.end();
  }

  /// Install a reservation.  Returns false when the ledger is full.
  bool add(Reservation r) {
    if (full()) return false;
    list_.push_back(r);
    return true;
  }
  /// Remove the reservation for `id`; false if absent.
  bool remove(JobId id) {
    const auto it = find(id);
    if (it == list_.end()) return false;
    list_.erase(it);
    return true;
  }
  void clear() noexcept { list_.clear(); }

 private:
  [[nodiscard]] std::vector<Reservation>::const_iterator find(
      JobId id) const noexcept {
    return std::find_if(list_.begin(), list_.end(),
                        [id](const Reservation& r) { return r.job == id; });
  }

  std::size_t depth_;
  std::vector<Reservation> list_;
};

}  // namespace dras::sim
