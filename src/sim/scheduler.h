// Pluggable scheduling-policy interface.
//
// The simulator invokes `schedule()` at every scheduling instance (job
// submission, job completion, or reservation start).  The policy acts on
// the environment exclusively through the SchedulingContext: starting jobs
// immediately, creating one reservation, and backfilling against it.  The
// context validates every action (fit, legality) so a buggy policy cannot
// corrupt simulator state, mirroring how CQSim separates the queue manager
// from the policy plug-in.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "sim/backfill.h"
#include "sim/cluster.h"
#include "sim/job.h"
#include "sim/reservation.h"

namespace dras::sim {

class Simulator;

/// Window onto the simulator offered to a policy for one scheduling
/// instance.  All actions take effect at `now()`.
class SchedulingContext {
 public:
  // --- Observation ---
  [[nodiscard]] Time now() const noexcept;
  [[nodiscard]] const Cluster& cluster() const noexcept;
  /// Visible wait queue, arrival order.  Starting or backfilling a job
  /// removes it from this vector immediately.
  [[nodiscard]] const std::vector<Job*>& queue() const noexcept;
  [[nodiscard]] const ReservationLedger& reservation() const noexcept;
  /// Does `id` currently hold a reservation?  (Reserved jobs remain in
  /// the wait queue until they start.)
  [[nodiscard]] bool is_reserved(JobId id) const noexcept;
  /// Index of this scheduling instance within the run (0-based).
  [[nodiscard]] std::size_t instance() const noexcept;
  /// Longest wait among queued jobs (used by reward Eq. 1's t_max).
  [[nodiscard]] Time max_queued_time() const noexcept;

  // --- Fault observation (sim/fault.h; all zero in fault-free runs) ---
  /// Fraction of machine nodes currently down for repair.
  [[nodiscard]] double fraction_down() const noexcept;
  /// Node failures within the configured feature window, per node.
  [[nodiscard]] double recent_fault_rate() const noexcept;
  /// Node-seconds of killed-and-requeued work waiting in the queue.
  [[nodiscard]] double requeued_backlog() const noexcept;

  // --- Fairness observation (src/fair; zero before any job starts) ---
  /// `user`'s fraction of all decayed node-second consumption this run,
  /// in [0, 1] (fair::ShareTracker; users never charged report 0).
  [[nodiscard]] double user_share(int user) const noexcept;
  /// Distinct user ids among currently queued jobs (the unknown
  /// sentinel counts as one user).
  [[nodiscard]] std::size_t queued_user_count() const noexcept;

  // --- Actions ---
  /// Start `id` immediately (execution mode Ready unless the job held a
  /// reservation earlier, then Reserved).  Fails if it does not fit or is
  /// not queued.
  bool start_now(JobId id);
  /// Reserve nodes for `id` at its earliest estimated start.  Fails if the
  /// job already fits (it should be started instead), is not queued, or a
  /// reservation is already active this instance.
  bool reserve(JobId id);
  /// Start `id` as a backfill against the active reservation.  Fails
  /// without an active reservation or when EASY-illegal.
  bool backfill(JobId id);
  /// Queued jobs that may legally backfill right now (empty without an
  /// active reservation).
  [[nodiscard]] std::vector<Job*> backfill_candidates() const;

 private:
  friend class Simulator;
  explicit SchedulingContext(Simulator& sim) : sim_(sim) {}
  Simulator& sim_;
};

/// Base class for every scheduling policy (heuristic or learned).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once before a run/episode starts.
  virtual void begin_episode() {}
  /// Called once after the run drains.
  virtual void end_episode() {}

  /// Make scheduling decisions for the current instance.
  virtual void schedule(SchedulingContext& ctx) = 0;

  /// Deep copy of this policy, including all mutable state (RNG position,
  /// learned parameters, optimiser moments, exploration schedule), so that
  /// the clone run in isolation behaves bit-identically to the original.
  /// Required for parallel evaluation (exec::ParallelEvaluator), where each
  /// worker evaluates a private instance.  The default returns nullptr,
  /// meaning "not cloneable"; such policies can still be evaluated
  /// serially (--jobs 1).
  [[nodiscard]] virtual std::unique_ptr<Scheduler> clone() const {
    return nullptr;
  }
};

}  // namespace dras::sim
