#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"

namespace dras::sim {

namespace {

// Registered once per process; every op is a no-op unless obs::enabled().
struct SimMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& instances = reg.counter("sim.scheduling_instances");
  obs::Counter& submits = reg.counter("sim.jobs.submitted");
  obs::Counter& completions = reg.counter("sim.jobs.completed");
  obs::Counter& starts_ready = reg.counter("sim.jobs.started_ready");
  obs::Counter& starts_backfill = reg.counter("sim.jobs.started_backfill");
  obs::Counter& starts_reserved = reg.counter("sim.jobs.started_reserved");
  obs::Counter& reservations = reg.counter("sim.reservations");
  obs::Counter& kills = reg.counter("sim.jobs.killed_walltime");
  obs::Counter& runs = reg.counter("sim.runs");
  obs::Counter& node_failures = reg.counter("sim.node_failures");
  obs::Counter& fault_kills = reg.counter("sim.jobs.killed_fault");
  obs::Counter& requeues = reg.counter("sim.jobs.requeued");
  obs::Counter& checkpoints = reg.counter("sim.checkpoints");
  obs::Histogram& wait_s = reg.histogram(
      "sim.job_wait_s", obs::Histogram::exponential_bounds(1.0, 4.0, 10));
  obs::Histogram& queue_depth = reg.histogram(
      "sim.queue_depth", obs::Histogram::linear_bounds(0.0, 16.0, 16));
  obs::Histogram& schedule_us = reg.histogram(
      "sim.schedule_us", obs::Histogram::exponential_bounds(1.0, 4.0, 12));

  static SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// SchedulingContext
// ---------------------------------------------------------------------------

Time SchedulingContext::now() const noexcept { return sim_.now_; }

const Cluster& SchedulingContext::cluster() const noexcept {
  return sim_.cluster_;
}

const std::vector<Job*>& SchedulingContext::queue() const noexcept {
  return sim_.queue_.visible();
}

const ReservationLedger& SchedulingContext::reservation() const noexcept {
  return sim_.ledger_;
}

bool SchedulingContext::is_reserved(JobId id) const noexcept {
  return sim_.ledger_.holds(id);
}

std::size_t SchedulingContext::instance() const noexcept {
  return sim_.instances_;
}

Time SchedulingContext::max_queued_time() const noexcept {
  return sim_.queue_.max_queued_time(sim_.now_);
}

double SchedulingContext::fraction_down() const noexcept {
  return sim_.fraction_down();
}

double SchedulingContext::recent_fault_rate() const noexcept {
  return sim_.recent_fault_rate();
}

double SchedulingContext::requeued_backlog() const noexcept {
  return sim_.requeued_backlog();
}

double SchedulingContext::user_share(int user) const noexcept {
  return sim_.user_share(user);
}

std::size_t SchedulingContext::queued_user_count() const noexcept {
  return sim_.queued_user_count();
}

bool SchedulingContext::start_now(JobId id) {
  return sim_.action_start(id, /*as_backfill=*/false);
}

bool SchedulingContext::reserve(JobId id) { return sim_.action_reserve(id); }

bool SchedulingContext::backfill(JobId id) {
  return sim_.action_start(id, /*as_backfill=*/true);
}

std::vector<Job*> SchedulingContext::backfill_candidates() const {
  if (!sim_.ledger_.active()) return {};
  if (sim_.ledger_.depth() == 1) {
    return dras::sim::backfill_candidates(sim_.cluster_, sim_.ledger_.get(),
                                          sim_.queue_.visible(), sim_.now_);
  }
  // Multi-reservation path: plan against the availability profile.
  const AvailabilityProfile profile(sim_.cluster_, sim_.ledger_.all(),
                                    sim_.now_);
  std::vector<Job*> candidates;
  for (Job* job : sim_.queue_.visible()) {
    if (sim_.ledger_.holds(job->id)) continue;
    if (profile.can_start_now(job->size, job->runtime_estimate))
      candidates.push_back(job);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator(int total_nodes, int reservation_depth)
    : cluster_(total_nodes),
      ledger_(static_cast<std::size_t>(std::max(reservation_depth, 1))),
      metrics_(total_nodes),
      tracer_(obs::default_tracer()) {}

void Simulator::notify_observers(const SchedulingContext& ctx,
                                 const Job& job) {
  for (const ActionObserver& observer : observers_) observer(ctx, job);
}

std::vector<Reservation> Simulator::reservations_except(
    JobId excluded) const {
  std::vector<Reservation> others;
  for (const Reservation& r : ledger_.all())
    if (r.job != excluded) others.push_back(r);
  return others;
}

bool Simulator::start_is_reservation_safe(const Job& job) const {
  if (!ledger_.active()) return true;
  if (ledger_.depth() == 1)
    return backfill_legal(cluster_, ledger_.get(), job, now_);
  const AvailabilityProfile profile(cluster_, ledger_.all(), now_);
  return profile.can_start_now(job.size, job.runtime_estimate);
}

Job* Simulator::find_queued(JobId id) noexcept {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  Job& job = jobs_[it->second];
  if (job.started()) return nullptr;
  return &job;
}

bool Simulator::action_start(JobId id, bool as_backfill) {
  Job* job = find_queued(id);
  if (job == nullptr) return false;
  if (ledger_.holds(id)) return false;  // reserved jobs start automatically
  if (as_backfill && !ledger_.active()) return false;
  if (!cluster_.fits(job->size)) return false;
  // Starting a job while reservations are outstanding must not delay any
  // of them, whatever the policy chooses to call the action.
  if (!start_is_reservation_safe(*job)) return false;
  ExecMode mode;
  if (ever_reserved_.contains(id)) {
    mode = ExecMode::Reserved;
  } else if (as_backfill) {
    mode = ExecMode::Backfilled;
  } else {
    mode = ExecMode::Ready;
  }
  start_job(*job, mode);
  if (!observers_.empty()) {
    SchedulingContext ctx(*this);
    notify_observers(ctx, *job);
  }
  return true;
}

bool Simulator::action_reserve(JobId id) {
  if (ledger_.full()) return false;
  Job* job = find_queued(id);
  if (job == nullptr) return false;
  if (ledger_.holds(id)) return false;
  // A job that can legally start right now must be started instead.
  if (cluster_.fits(job->size) && start_is_reservation_safe(*job))
    return false;
  Reservation r;
  r.job = id;
  r.size = job->size;
  r.duration = job->runtime_estimate;
  if (ledger_.depth() == 1) {
    r.start = cluster_.earliest_start(job->size, now_);
  } else {
    const AvailabilityProfile profile(cluster_, ledger_.all(), now_);
    r.start = profile.earliest_start(job->size, job->runtime_estimate);
  }
  const bool added = ledger_.add(r);
  assert(added);
  (void)added;
  ever_reserved_.insert(id);
  // Guarantee a scheduling instance at the reserved start even if no job
  // event lands there (the job usually starts earlier via auto-start).
  if (r.start > now_)
    events_.push(Event{r.start, EventType::ReservationReady, id});
  SimMetrics::get().reservations.add();
  if (tracer_ != nullptr) {
    tracer_->instant("reserve", now_,
                     {obs::targ("job", job->id), obs::targ("size", job->size),
                      obs::targ("reserved_start", r.start)});
  }
  if (!observers_.empty()) {
    SchedulingContext ctx(*this);
    notify_observers(ctx, *job);
  }
  return true;
}

void Simulator::auto_start_reserved(const SchedulingContext& ctx) {
  bool progress = true;
  while (progress && ledger_.active()) {
    progress = false;
    for (const Reservation& r : ledger_.all()) {
      Job& job = jobs_[index_.at(r.job)];
      if (!cluster_.fits(job.size)) continue;
      if (ledger_.depth() > 1) {
        // Starting this reserved job must not jeopardise the others.
        const auto others = reservations_except(r.job);
        const AvailabilityProfile profile(cluster_, others, now_);
        if (!profile.can_start_now(job.size, job.runtime_estimate)) continue;
      }
      ledger_.remove(r.job);
      start_job(job, ExecMode::Reserved);
      notify_observers(ctx, job);
      progress = true;
      break;  // ledger mutated; restart the scan
    }
  }
}

void Simulator::start_job(Job& job, ExecMode mode) {
  const bool removed = queue_.remove(job.id);
  assert(removed);
  (void)removed;
  const bool allocated = cluster_.allocate(job, now_);
  assert(allocated);
  (void)allocated;
  job.start_time = now_;
  job.mode = mode;
  ++started_jobs_;
  // Fair-share ledger: charge the work this incarnation will perform
  // (remaining runtime after any durably checkpointed progress) at start
  // time.  Unknown users pool under the sentinel key.
  shares_.charge(job.user_id,
                 static_cast<double>(job.size) *
                     (job.effective_runtime() - job.progress_saved),
                 now_);
  if (!faults_enabled_) {
    job.end_time = now_ + job.effective_runtime();
    events_.push(Event{job.end_time, EventType::JobEnd, job.id});
  } else {
    // Restarted work leaves the requeued backlog as it starts.
    if (job.incarnation > 0) {
      requeued_backlog_ -= static_cast<double>(job.size) *
                           (job.effective_runtime() - job.progress_saved);
      if (requeued_backlog_ < 0.0) requeued_backlog_ = 0.0;
    }
    JobRun& run = runstate_[job.id];
    run = JobRun{};
    run.segment_start = now_;
    run.progress_at_segment = job.progress_saved;
    run.initial_progress = job.progress_saved;
    schedule_next_phase(job, run);
  }

  SimMetrics& m = SimMetrics::get();
  switch (mode) {
    case ExecMode::Backfilled: m.starts_backfill.add(); break;
    case ExecMode::Reserved: m.starts_reserved.add(); break;
    default: m.starts_ready.add(); break;
  }
  m.wait_s.observe(job.wait_time());
  if (tracer_ != nullptr) {
    tracer_->complete(to_string(mode), job.start_time,
                      job.effective_runtime(),
                      {obs::targ("job", job.id), obs::targ("size", job.size),
                       obs::targ("wait_s", job.wait_time())});
  }
}

void Simulator::handle_event(const Event& event) {
  switch (event.type) {
    case EventType::JobSubmit: {
      Job& job = jobs_[index_.at(event.job)];
      queue_.submit(&job);
      if (submits_pending_ > 0) --submits_pending_;
      SimMetrics::get().submits.add();
      break;
    }
    case EventType::JobEnd: {
      Job& job = jobs_[index_.at(event.job)];
      // A kill bumps the incarnation; completion events scheduled for a
      // dead incarnation are stale and ignored (always 0 == 0 when
      // fault-free).
      if (event.aux != job.incarnation) break;
      const auto rec = cluster_.release(job.id);
      assert(rec.has_value());
      (void)rec;
      runstate_.erase(job.id);
      metrics_.record_completion(job);
      queue_.on_job_finished(job.id);
      last_end_ = std::max(last_end_, job.end_time);
      SimMetrics::get().completions.add();
      // A job whose true runtime exceeds its estimate was cut short at the
      // walltime bound (§II-A): surface those kills distinctly.
      if (job.runtime_actual > job.runtime_estimate) {
        SimMetrics::get().kills.add();
        if (tracer_ != nullptr) {
          tracer_->instant(
              "kill_walltime", now_,
              {obs::targ("job", job.id),
               obs::targ("walltime_s", job.runtime_estimate),
               obs::targ("overrun_s",
                         job.runtime_actual - job.runtime_estimate)});
        }
      }
      break;
    }
    case EventType::ReservationReady:
      // Pure trigger: forces a scheduling instance at the reserved start.
      break;
    case EventType::NodeFailure:
      handle_node_failure(event);
      break;
    case EventType::NodeRepair:
      cluster_.repair_node();
      break;
    case EventType::CkptStart: {
      Job& job = jobs_[index_.at(event.job)];
      if (event.aux != job.incarnation) break;
      handle_ckpt_start(job);
      break;
    }
    case EventType::CkptDone: {
      Job& job = jobs_[index_.at(event.job)];
      if (event.aux != job.incarnation) break;
      handle_ckpt_done(job);
      break;
    }
  }
}

void Simulator::schedule_next_phase(Job& job, JobRun& run) {
  const Time total = job.effective_runtime();
  const Time progress = run.progress_at_segment;
  Time boundary = total;
  if (faults_.checkpoints_active()) {
    // Progress is accumulated as differences of absolute event times, so
    // a segment that ends on a checkpoint boundary can land a hair below
    // it (e.g. 799.999999999998 for boundary 800).  Both callers reach
    // here with any boundary at or within that hair already banked, so a
    // relative tolerance of 1e-6 intervals snaps to the NEXT boundary —
    // without it the job re-checkpoints the same boundary forever,
    // advancing by one float ulp per write.
    const double k =
        std::floor(progress / faults_.ckpt_interval + 1e-6) + 1.0;
    boundary = k * faults_.ckpt_interval;
  }
  if (boundary >= total) {
    job.end_time = now_ + std::max(0.0, total - progress);
    events_.push(
        Event{job.end_time, EventType::JobEnd, job.id, job.incarnation});
  } else {
    events_.push(Event{now_ + (boundary - progress), EventType::CkptStart,
                       job.id, job.incarnation});
  }
}

void Simulator::handle_ckpt_start(Job& job) {
  JobRun& run = runstate_.at(job.id);
  // Compute reached the checkpoint boundary; I/O now queues on the
  // shared channel, during which no compute progress is made.
  run.progress_at_segment += now_ - run.segment_start;
  run.segment_start = now_;
  run.in_ckpt = true;
  run.pending_saved = run.progress_at_segment;
  const double duration = static_cast<double>(job.size) *
                          faults_.ckpt_seconds_per_node /
                          faults_.io_bandwidth;
  const Time io_start = std::max(now_, io_busy_until_);
  io_busy_until_ = io_start + duration;
  events_.push(
      Event{io_busy_until_, EventType::CkptDone, job.id, job.incarnation});
  if (tracer_ != nullptr) {
    tracer_->instant("ckpt_start", now_,
                     {obs::targ("job", job.id),
                      obs::targ("io_wait_s", io_start - now_),
                      obs::targ("io_s", duration)});
  }
}

void Simulator::handle_ckpt_done(Job& job) {
  JobRun& run = runstate_.at(job.id);
  run.in_ckpt = false;
  job.progress_saved = run.pending_saved;
  run.segment_start = now_;
  metrics_.record_checkpoint();
  SimMetrics::get().checkpoints.add();
  schedule_next_phase(job, run);
}

void Simulator::schedule_group_failure(std::size_t group) {
  if (!job_progress_possible()) return;  // nothing left to disturb
  const FaultNodeGroup& g = fault_groups_[group];
  const double rate = static_cast<double>(g.nodes) / g.mtbf;
  const Time when = now_ + fault_rng_.exponential(rate);
  events_.push(Event{when, EventType::NodeFailure, kInvalidJob,
                     static_cast<std::int64_t>(group)});
}

void Simulator::handle_node_failure(const Event& event) {
  // Constant-rate chain: drawing the group's next failure first keeps
  // the stream independent of what this failure does below.
  schedule_group_failure(static_cast<std::size_t>(event.aux));
  metrics_.record_failure();
  SimMetrics::get().node_failures.add();
  recent_failures_.push_back(now_);
  // Trim entries that fell out of the feature window.
  const Time horizon = now_ - faults_.feature_window;
  std::size_t stale = 0;
  while (stale < recent_failures_.size() && recent_failures_[stale] < horizon)
    ++stale;
  if (stale > 0)
    recent_failures_.erase(recent_failures_.begin(),
                           recent_failures_.begin() + stale);

  // The struck node is uniform over the (interchangeable) machine:
  // [0, down) already-down nodes absorb the hit, [down, down+free) free
  // nodes go down quietly, the rest kill the owning job.
  const int down = cluster_.down_nodes();
  const int free = cluster_.free_nodes();
  const int victim = static_cast<int>(fault_rng_.uniform_index(
      static_cast<std::uint64_t>(cluster_.total_nodes())));
  if (victim < down) return;
  if (victim >= down + free) {
    auto running = cluster_.running_jobs();
    std::sort(running.begin(), running.end(),
              [](const RunningJob& a, const RunningJob& b) {
                return a.id < b.id;
              });
    int cursor = down + free;
    Job* owner = nullptr;
    for (const RunningJob& rec : running) {
      if (victim < cursor + rec.size) {
        owner = &jobs_[index_.at(rec.id)];
        break;
      }
      cursor += rec.size;
    }
    assert(owner != nullptr);
    kill_running_job(*owner);
  }
  cluster_.fail_free_node(now_ + faults_.repair_time);
  events_.push(Event{now_ + faults_.repair_time, EventType::NodeRepair,
                     kInvalidJob, 0});
  if (tracer_ != nullptr) {
    tracer_->instant("node_failure", now_,
                     {obs::targ("down_nodes", cluster_.down_nodes())});
  }
}

void Simulator::kill_running_job(Job& job) {
  const auto rec = cluster_.release(job.id);
  assert(rec.has_value());
  (void)rec;
  const JobRun run = runstate_.at(job.id);
  runstate_.erase(job.id);
  // Everything this incarnation computed beyond its last durable
  // checkpoint is lost; the wall time it occupied nodes minus the
  // durable progress it banked is the waste.
  const double durable_gain = job.progress_saved - run.initial_progress;
  const double waste =
      static_cast<double>(job.size) *
      std::max(0.0, (now_ - job.start_time) - durable_gain);
  job.wasted_node_seconds += waste;
  job.incarnation += 1;
  job.start_time = kUnsetTime;
  job.end_time = kUnsetTime;
  job.mode = ExecMode::None;
  metrics_.record_kill(waste);
  SimMetrics::get().fault_kills.add();
  if (tracer_ != nullptr) {
    tracer_->instant("kill_node_failure", now_,
                     {obs::targ("job", job.id), obs::targ("size", job.size),
                      obs::targ("wasted_node_s", waste)});
  }
  switch (faults_.requeue) {
    case RequeuePolicy::Resubmit:
      job.submit_time = now_;
      [[fallthrough]];
    case RequeuePolicy::Requeue:
      ++job.requeues;
      requeued_backlog_ += static_cast<double>(job.size) *
                           (job.effective_runtime() - job.progress_saved);
      metrics_.record_requeue();
      SimMetrics::get().requeues.add();
      queue_.submit(&job);
      break;
    case RequeuePolicy::Drop:
      break;  // counted as unfinished at the end of the run
  }
}

bool Simulator::job_progress_possible() const noexcept {
  return submits_pending_ > 0 || cluster_.running_count() > 0 ||
         queue_.visible_count() > 0;
}

double Simulator::fraction_down() const noexcept {
  return static_cast<double>(cluster_.down_nodes()) /
         static_cast<double>(cluster_.total_nodes());
}

std::size_t Simulator::queued_user_count() const noexcept {
  // The visible queue is small (tens of jobs); a linear distinct-count
  // avoids allocating on the scheduling hot path.
  const auto& visible = queue_.visible();
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < visible.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j)
      seen = visible[j]->user_id == visible[i]->user_id;
    if (!seen) ++distinct;
  }
  return distinct;
}

double Simulator::recent_fault_rate() const noexcept {
  if (recent_failures_.empty()) return 0.0;
  const Time horizon = now_ - faults_.feature_window;
  std::size_t count = 0;
  for (auto it = recent_failures_.rbegin(); it != recent_failures_.rend();
       ++it) {
    if (*it < horizon) break;
    ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(cluster_.total_nodes());
}

void Simulator::reset(const Trace& trace) {
  cluster_.clear();
  events_.clear();
  queue_.clear();
  ledger_.clear();
  metrics_.clear();
  shares_.reset();
  ever_reserved_.clear();
  jobs_ = trace;
  index_.clear();
  index_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Job& job = jobs_[i];
    job.start_time = kUnsetTime;
    job.end_time = kUnsetTime;
    job.mode = ExecMode::None;
    job.incarnation = 0;
    job.requeues = 0;
    job.progress_saved = 0.0;
    job.wasted_node_seconds = 0.0;
    if (!index_.emplace(job.id, i).second)
      throw std::invalid_argument(
          util::format("duplicate job id {} in trace", job.id));
  }
  for (const Job& job : jobs_) {
    if (job.size > cluster_.total_nodes())
      throw std::invalid_argument(
          util::format("job {} needs {} nodes but the machine has {}", job.id,
                      job.size, cluster_.total_nodes()));
    for (const JobId dep : job.dependencies) {
      if (!index_.contains(dep))
        throw std::invalid_argument(util::format(
            "job {} depends on unknown job {}", job.id, dep));
    }
  }
  now_ = jobs_.empty() ? 0.0 : jobs_.front().submit_time;
  first_submit_ = now_;
  last_end_ = now_;
  instances_ = 0;
  started_jobs_ = 0;
  for (const Job& job : jobs_)
    events_.push(Event{job.submit_time, EventType::JobSubmit, job.id});

  // Fault engine state (all dormant when the config is fault-free).
  faults_enabled_ = faults_.enabled();
  runstate_.clear();
  io_busy_until_ = 0.0;
  recent_failures_.clear();
  requeued_backlog_ = 0.0;
  submits_pending_ = jobs_.size();
  fault_groups_.clear();
  if (faults_.failures_active()) {
    fault_rng_ = util::Rng(util::derive_seed(faults_.seed, "sim-fault"));
    if (faults_.groups.empty()) {
      fault_groups_.push_back(
          FaultNodeGroup{cluster_.total_nodes(), faults_.mtbf});
    } else {
      for (const FaultNodeGroup& group : faults_.groups)
        if (group.nodes > 0 && group.mtbf > 0.0)
          fault_groups_.push_back(group);
    }
    for (std::size_t i = 0; i < fault_groups_.size(); ++i)
      schedule_group_failure(i);
  }
}

SimulationResult Simulator::run(const Trace& trace, Scheduler& policy) {
  {
    Trace sorted = trace;
    normalize_trace(sorted);
    reset(sorted);
  }
  policy.begin_episode();
  SimMetrics& m = SimMetrics::get();
  m.runs.add();

  SchedulingContext ctx(*this);
  while (!events_.empty()) {
    // Under faults the failure/repair chain can outlive the workload;
    // once no job can ever make progress again the run is over.
    if (faults_enabled_ && !job_progress_possible()) break;
    const Time batch_time = events_.top().time;
    metrics_.advance(now_, batch_time, cluster_.used_nodes());
    now_ = batch_time;
    while (!events_.empty() && events_.top().time == batch_time)
      handle_event(events_.pop());

    // Reservations are system commitments ("reserves a set of nodes for
    // its execution at the earliest available time", §III-B): they persist
    // until the reserved job starts, and the environment starts a reserved
    // job as soon as it fits — which may be before the reserved time when
    // running jobs finish under their estimates.
    auto_start_reserved(ctx);

    if (queue_.visible_count() > 0) {
      ++instances_;
      m.instances.add();
      m.queue_depth.observe(static_cast<double>(queue_.visible_count()));
      if (tracer_ != nullptr) {
        tracer_->instant(
            "scheduling_instance", now_,
            {obs::targ("instance", static_cast<std::uint64_t>(instances_)),
             obs::targ("queue_depth",
                       static_cast<std::uint64_t>(queue_.visible_count())),
             obs::targ("free_nodes", cluster_.free_nodes())});
      }
      {
        const obs::ScopedTimer timer(m.schedule_us);
        policy.schedule(ctx);
      }
      if (tracer_ != nullptr) {
        // Post-decision samples: these render as counter tracks showing
        // queue pressure and machine utilization over simulated time.
        tracer_->counter("queue_depth", now_,
                         static_cast<double>(queue_.visible_count()));
        tracer_->counter("used_nodes", now_,
                         static_cast<double>(cluster_.used_nodes()));
      }
    }
  }
  if (tracer_ != nullptr) {
    tracer_->counter("queue_depth", now_, 0.0);
    tracer_->counter("used_nodes", now_,
                     static_cast<double>(cluster_.used_nodes()));
  }
  policy.end_episode();

  SimulationResult result;
  result.jobs = metrics_.records();
  result.unfinished_jobs = jobs_.size() - result.jobs.size();
  result.used_node_seconds = metrics_.used_node_seconds();
  result.elapsed_node_seconds = metrics_.elapsed_node_seconds();
  result.utilization = metrics_.utilization();
  result.makespan = last_end_ - first_submit_;
  result.scheduling_instances = instances_;
  result.faults = metrics_.faults();
  return result;
}

}  // namespace dras::sim
