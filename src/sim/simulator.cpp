#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"

namespace dras::sim {

namespace {

// Registered once per process; every op is a no-op unless obs::enabled().
struct SimMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& instances = reg.counter("sim.scheduling_instances");
  obs::Counter& submits = reg.counter("sim.jobs.submitted");
  obs::Counter& completions = reg.counter("sim.jobs.completed");
  obs::Counter& starts_ready = reg.counter("sim.jobs.started_ready");
  obs::Counter& starts_backfill = reg.counter("sim.jobs.started_backfill");
  obs::Counter& starts_reserved = reg.counter("sim.jobs.started_reserved");
  obs::Counter& reservations = reg.counter("sim.reservations");
  obs::Counter& kills = reg.counter("sim.jobs.killed_walltime");
  obs::Counter& runs = reg.counter("sim.runs");
  obs::Histogram& wait_s = reg.histogram(
      "sim.job_wait_s", obs::Histogram::exponential_bounds(1.0, 4.0, 10));
  obs::Histogram& queue_depth = reg.histogram(
      "sim.queue_depth", obs::Histogram::linear_bounds(0.0, 16.0, 16));
  obs::Histogram& schedule_us = reg.histogram(
      "sim.schedule_us", obs::Histogram::exponential_bounds(1.0, 4.0, 12));

  static SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// SchedulingContext
// ---------------------------------------------------------------------------

Time SchedulingContext::now() const noexcept { return sim_.now_; }

const Cluster& SchedulingContext::cluster() const noexcept {
  return sim_.cluster_;
}

const std::vector<Job*>& SchedulingContext::queue() const noexcept {
  return sim_.queue_.visible();
}

const ReservationLedger& SchedulingContext::reservation() const noexcept {
  return sim_.ledger_;
}

bool SchedulingContext::is_reserved(JobId id) const noexcept {
  return sim_.ledger_.holds(id);
}

std::size_t SchedulingContext::instance() const noexcept {
  return sim_.instances_;
}

Time SchedulingContext::max_queued_time() const noexcept {
  return sim_.queue_.max_queued_time(sim_.now_);
}

bool SchedulingContext::start_now(JobId id) {
  return sim_.action_start(id, /*as_backfill=*/false);
}

bool SchedulingContext::reserve(JobId id) { return sim_.action_reserve(id); }

bool SchedulingContext::backfill(JobId id) {
  return sim_.action_start(id, /*as_backfill=*/true);
}

std::vector<Job*> SchedulingContext::backfill_candidates() const {
  if (!sim_.ledger_.active()) return {};
  if (sim_.ledger_.depth() == 1) {
    return dras::sim::backfill_candidates(sim_.cluster_, sim_.ledger_.get(),
                                          sim_.queue_.visible(), sim_.now_);
  }
  // Multi-reservation path: plan against the availability profile.
  const AvailabilityProfile profile(sim_.cluster_, sim_.ledger_.all(),
                                    sim_.now_);
  std::vector<Job*> candidates;
  for (Job* job : sim_.queue_.visible()) {
    if (sim_.ledger_.holds(job->id)) continue;
    if (profile.can_start_now(job->size, job->runtime_estimate))
      candidates.push_back(job);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator(int total_nodes, int reservation_depth)
    : cluster_(total_nodes),
      ledger_(static_cast<std::size_t>(std::max(reservation_depth, 1))),
      metrics_(total_nodes),
      tracer_(obs::default_tracer()) {}

void Simulator::notify_observers(const SchedulingContext& ctx,
                                 const Job& job) {
  for (const ActionObserver& observer : observers_) observer(ctx, job);
}

std::vector<Reservation> Simulator::reservations_except(
    JobId excluded) const {
  std::vector<Reservation> others;
  for (const Reservation& r : ledger_.all())
    if (r.job != excluded) others.push_back(r);
  return others;
}

bool Simulator::start_is_reservation_safe(const Job& job) const {
  if (!ledger_.active()) return true;
  if (ledger_.depth() == 1)
    return backfill_legal(cluster_, ledger_.get(), job, now_);
  const AvailabilityProfile profile(cluster_, ledger_.all(), now_);
  return profile.can_start_now(job.size, job.runtime_estimate);
}

Job* Simulator::find_queued(JobId id) noexcept {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  Job& job = jobs_[it->second];
  if (job.started()) return nullptr;
  return &job;
}

bool Simulator::action_start(JobId id, bool as_backfill) {
  Job* job = find_queued(id);
  if (job == nullptr) return false;
  if (ledger_.holds(id)) return false;  // reserved jobs start automatically
  if (as_backfill && !ledger_.active()) return false;
  if (!cluster_.fits(job->size)) return false;
  // Starting a job while reservations are outstanding must not delay any
  // of them, whatever the policy chooses to call the action.
  if (!start_is_reservation_safe(*job)) return false;
  ExecMode mode;
  if (ever_reserved_.contains(id)) {
    mode = ExecMode::Reserved;
  } else if (as_backfill) {
    mode = ExecMode::Backfilled;
  } else {
    mode = ExecMode::Ready;
  }
  start_job(*job, mode);
  if (!observers_.empty()) {
    SchedulingContext ctx(*this);
    notify_observers(ctx, *job);
  }
  return true;
}

bool Simulator::action_reserve(JobId id) {
  if (ledger_.full()) return false;
  Job* job = find_queued(id);
  if (job == nullptr) return false;
  if (ledger_.holds(id)) return false;
  // A job that can legally start right now must be started instead.
  if (cluster_.fits(job->size) && start_is_reservation_safe(*job))
    return false;
  Reservation r;
  r.job = id;
  r.size = job->size;
  r.duration = job->runtime_estimate;
  if (ledger_.depth() == 1) {
    r.start = cluster_.earliest_start(job->size, now_);
  } else {
    const AvailabilityProfile profile(cluster_, ledger_.all(), now_);
    r.start = profile.earliest_start(job->size, job->runtime_estimate);
  }
  const bool added = ledger_.add(r);
  assert(added);
  (void)added;
  ever_reserved_.insert(id);
  // Guarantee a scheduling instance at the reserved start even if no job
  // event lands there (the job usually starts earlier via auto-start).
  if (r.start > now_)
    events_.push(Event{r.start, EventType::ReservationReady, id});
  SimMetrics::get().reservations.add();
  if (tracer_ != nullptr) {
    tracer_->instant("reserve", now_,
                     {obs::targ("job", job->id), obs::targ("size", job->size),
                      obs::targ("reserved_start", r.start)});
  }
  if (!observers_.empty()) {
    SchedulingContext ctx(*this);
    notify_observers(ctx, *job);
  }
  return true;
}

void Simulator::auto_start_reserved(const SchedulingContext& ctx) {
  bool progress = true;
  while (progress && ledger_.active()) {
    progress = false;
    for (const Reservation& r : ledger_.all()) {
      Job& job = jobs_[index_.at(r.job)];
      if (!cluster_.fits(job.size)) continue;
      if (ledger_.depth() > 1) {
        // Starting this reserved job must not jeopardise the others.
        const auto others = reservations_except(r.job);
        const AvailabilityProfile profile(cluster_, others, now_);
        if (!profile.can_start_now(job.size, job.runtime_estimate)) continue;
      }
      ledger_.remove(r.job);
      start_job(job, ExecMode::Reserved);
      notify_observers(ctx, job);
      progress = true;
      break;  // ledger mutated; restart the scan
    }
  }
}

void Simulator::start_job(Job& job, ExecMode mode) {
  const bool removed = queue_.remove(job.id);
  assert(removed);
  (void)removed;
  const bool allocated = cluster_.allocate(job, now_);
  assert(allocated);
  (void)allocated;
  job.start_time = now_;
  job.end_time = now_ + job.effective_runtime();
  job.mode = mode;
  ++started_jobs_;
  events_.push(Event{job.end_time, EventType::JobEnd, job.id});

  SimMetrics& m = SimMetrics::get();
  switch (mode) {
    case ExecMode::Backfilled: m.starts_backfill.add(); break;
    case ExecMode::Reserved: m.starts_reserved.add(); break;
    default: m.starts_ready.add(); break;
  }
  m.wait_s.observe(job.wait_time());
  if (tracer_ != nullptr) {
    tracer_->complete(to_string(mode), job.start_time,
                      job.effective_runtime(),
                      {obs::targ("job", job.id), obs::targ("size", job.size),
                       obs::targ("wait_s", job.wait_time())});
  }
}

void Simulator::handle_event(const Event& event) {
  switch (event.type) {
    case EventType::JobSubmit: {
      Job& job = jobs_[index_.at(event.job)];
      queue_.submit(&job);
      SimMetrics::get().submits.add();
      break;
    }
    case EventType::JobEnd: {
      Job& job = jobs_[index_.at(event.job)];
      const auto rec = cluster_.release(job.id);
      assert(rec.has_value());
      (void)rec;
      metrics_.record_completion(job);
      queue_.on_job_finished(job.id);
      last_end_ = std::max(last_end_, job.end_time);
      SimMetrics::get().completions.add();
      // A job whose true runtime exceeds its estimate was cut short at the
      // walltime bound (§II-A): surface those kills distinctly.
      if (job.runtime_actual > job.runtime_estimate) {
        SimMetrics::get().kills.add();
        if (tracer_ != nullptr) {
          tracer_->instant(
              "kill_walltime", now_,
              {obs::targ("job", job.id),
               obs::targ("walltime_s", job.runtime_estimate),
               obs::targ("overrun_s",
                         job.runtime_actual - job.runtime_estimate)});
        }
      }
      break;
    }
    case EventType::ReservationReady:
      // Pure trigger: forces a scheduling instance at the reserved start.
      break;
  }
}

void Simulator::reset(const Trace& trace) {
  cluster_.clear();
  events_.clear();
  queue_.clear();
  ledger_.clear();
  metrics_.clear();
  ever_reserved_.clear();
  jobs_ = trace;
  index_.clear();
  index_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Job& job = jobs_[i];
    job.start_time = kUnsetTime;
    job.end_time = kUnsetTime;
    job.mode = ExecMode::None;
    if (!index_.emplace(job.id, i).second)
      throw std::invalid_argument(
          util::format("duplicate job id {} in trace", job.id));
  }
  for (const Job& job : jobs_) {
    if (job.size > cluster_.total_nodes())
      throw std::invalid_argument(
          util::format("job {} needs {} nodes but the machine has {}", job.id,
                      job.size, cluster_.total_nodes()));
    for (const JobId dep : job.dependencies) {
      if (!index_.contains(dep))
        throw std::invalid_argument(util::format(
            "job {} depends on unknown job {}", job.id, dep));
    }
  }
  now_ = jobs_.empty() ? 0.0 : jobs_.front().submit_time;
  first_submit_ = now_;
  last_end_ = now_;
  instances_ = 0;
  started_jobs_ = 0;
  for (const Job& job : jobs_)
    events_.push(Event{job.submit_time, EventType::JobSubmit, job.id});
}

SimulationResult Simulator::run(const Trace& trace, Scheduler& policy) {
  {
    Trace sorted = trace;
    normalize_trace(sorted);
    reset(sorted);
  }
  policy.begin_episode();
  SimMetrics& m = SimMetrics::get();
  m.runs.add();

  SchedulingContext ctx(*this);
  while (!events_.empty()) {
    const Time batch_time = events_.top().time;
    metrics_.advance(now_, batch_time, cluster_.used_nodes());
    now_ = batch_time;
    while (!events_.empty() && events_.top().time == batch_time)
      handle_event(events_.pop());

    // Reservations are system commitments ("reserves a set of nodes for
    // its execution at the earliest available time", §III-B): they persist
    // until the reserved job starts, and the environment starts a reserved
    // job as soon as it fits — which may be before the reserved time when
    // running jobs finish under their estimates.
    auto_start_reserved(ctx);

    if (queue_.visible_count() > 0) {
      ++instances_;
      m.instances.add();
      m.queue_depth.observe(static_cast<double>(queue_.visible_count()));
      if (tracer_ != nullptr) {
        tracer_->instant(
            "scheduling_instance", now_,
            {obs::targ("instance", static_cast<std::uint64_t>(instances_)),
             obs::targ("queue_depth",
                       static_cast<std::uint64_t>(queue_.visible_count())),
             obs::targ("free_nodes", cluster_.free_nodes())});
      }
      {
        const obs::ScopedTimer timer(m.schedule_us);
        policy.schedule(ctx);
      }
      if (tracer_ != nullptr) {
        // Post-decision samples: these render as counter tracks showing
        // queue pressure and machine utilization over simulated time.
        tracer_->counter("queue_depth", now_,
                         static_cast<double>(queue_.visible_count()));
        tracer_->counter("used_nodes", now_,
                         static_cast<double>(cluster_.used_nodes()));
      }
    }
  }
  if (tracer_ != nullptr) {
    tracer_->counter("queue_depth", now_, 0.0);
    tracer_->counter("used_nodes", now_,
                     static_cast<double>(cluster_.used_nodes()));
  }
  policy.end_episode();

  SimulationResult result;
  result.jobs = metrics_.records();
  result.unfinished_jobs = jobs_.size() - result.jobs.size();
  result.used_node_seconds = metrics_.used_node_seconds();
  result.elapsed_node_seconds = metrics_.elapsed_node_seconds();
  result.utilization = metrics_.utilization();
  result.makespan = last_end_ - first_submit_;
  result.scheduling_instances = instances_;
  return result;
}

}  // namespace dras::sim
