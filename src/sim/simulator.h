// Trace-driven, event-based scheduling simulator (CQSim substrate, §IV-B).
//
// "A real system takes jobs from user submission, while CQSim takes jobs
//  by reading the job arrival information in the trace.  Rather than
//  executing jobs on system, CQSim simulates the execution by advancing
//  the simulation clock according to the job runtime information."
//
// The simulator owns the per-run copy of the trace, the cluster, the wait
// queue, the event queue, the (single) reservation ledger and the metrics
// collector.  A Scheduler is invoked at every scheduling instance and acts
// through SchedulingContext.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/job.h"
#include "sim/metrics_collector.h"
#include "sim/profile.h"
#include "sim/reservation.h"
#include "sim/scheduler.h"
#include "sim/wait_queue.h"

namespace dras::obs {
class EventTracer;
}  // namespace dras::obs

namespace dras::sim {

/// Outcome of one full simulation run.
struct SimulationResult {
  std::vector<JobRecord> jobs;        ///< Completed jobs.
  std::size_t unfinished_jobs = 0;    ///< Jobs never started (policy bug or
                                      ///< unsatisfiable dependency).
  double used_node_seconds = 0.0;
  double elapsed_node_seconds = 0.0;
  double utilization = 0.0;           ///< §IV-E system-level metric.
  Time makespan = 0.0;                ///< First submit to last completion.
  std::size_t scheduling_instances = 0;
};

class Simulator {
 public:
  /// `reservation_depth` = 1 gives the paper's single-reservation EASY
  /// behaviour; larger depths enable the conservative-backfilling
  /// extension where several queued jobs hold future node claims planned
  /// through the AvailabilityProfile (see reservation.h / profile.h).
  explicit Simulator(int total_nodes, int reservation_depth = 1);

  /// Run `trace` to completion under `policy`.  The trace is copied; the
  /// caller's jobs are untouched.  Throws std::invalid_argument when a job
  /// is larger than the machine or references an unknown dependency.
  SimulationResult run(const Trace& trace, Scheduler& policy);

  [[nodiscard]] int total_nodes() const noexcept {
    return cluster_.total_nodes();
  }

  /// Invoked after every successful start / reserve / backfill action with
  /// the post-action state and the acting job.  Lets evaluation code
  /// account per-action rewards for policies that do not compute them
  /// (the Fig. 5 reward curves of the heuristic methods).  Any number of
  /// observers may be registered; they are notified in registration order.
  using ActionObserver =
      std::function<void(const SchedulingContext&, const Job&)>;
  void add_action_observer(ActionObserver observer) {
    observers_.push_back(std::move(observer));
  }
  /// Replace all registered observers with `observer` (historical
  /// single-observer semantics).  Prefer add_action_observer.
  void set_action_observer(ActionObserver observer) {
    observers_.clear();
    observers_.push_back(std::move(observer));
  }

  /// Attach a telemetry tracer (non-owning; nullptr detaches).  New
  /// simulators pick up obs::default_tracer() automatically; this
  /// overrides that choice.  The tracer receives one instant event per
  /// scheduling instance, one complete event per started job, queue-depth
  /// and used-node counter tracks, and reservation / walltime-kill
  /// instants — all stamped with simulation time.
  void set_tracer(obs::EventTracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::EventTracer* tracer() const noexcept { return tracer_; }

 private:
  friend class SchedulingContext;

  // --- SchedulingContext backing operations ---
  bool action_start(JobId id, bool as_backfill);
  bool action_reserve(JobId id);
  [[nodiscard]] Job* find_queued(JobId id) noexcept;

  /// Starting `job` now keeps every outstanding reservation satisfiable.
  [[nodiscard]] bool start_is_reservation_safe(const Job& job) const;
  /// All outstanding reservations except the one for `excluded`.
  [[nodiscard]] std::vector<Reservation> reservations_except(
      JobId excluded) const;
  /// Start any reserved jobs that now fit without jeopardising the rest.
  void auto_start_reserved(const SchedulingContext& ctx);

  void start_job(Job& job, ExecMode mode);
  void handle_event(const Event& event);
  void reset(const Trace& trace);
  void notify_observers(const SchedulingContext& ctx, const Job& job);

  Cluster cluster_;
  EventQueue events_;
  WaitQueue queue_;
  ReservationLedger ledger_;
  MetricsCollector metrics_;

  std::vector<Job> jobs_;                       // per-run trace copy
  std::unordered_map<JobId, std::size_t> index_;  // id -> jobs_ slot
  std::unordered_set<JobId> ever_reserved_;
  Time now_ = 0.0;
  Time first_submit_ = 0.0;
  Time last_end_ = 0.0;
  std::size_t instances_ = 0;
  std::size_t started_jobs_ = 0;
  std::vector<ActionObserver> observers_;
  obs::EventTracer* tracer_ = nullptr;
};

}  // namespace dras::sim
