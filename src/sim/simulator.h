// Trace-driven, event-based scheduling simulator (CQSim substrate, §IV-B).
//
// "A real system takes jobs from user submission, while CQSim takes jobs
//  by reading the job arrival information in the trace.  Rather than
//  executing jobs on system, CQSim simulates the execution by advancing
//  the simulation clock according to the job runtime information."
//
// The simulator owns the per-run copy of the trace, the cluster, the wait
// queue, the event queue, the (single) reservation ledger and the metrics
// collector.  A Scheduler is invoked at every scheduling instance and acts
// through SchedulingContext.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fair/share_tracker.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/job.h"
#include "sim/metrics_collector.h"
#include "sim/profile.h"
#include "sim/reservation.h"
#include "sim/scheduler.h"
#include "sim/wait_queue.h"
#include "util/rng.h"

namespace dras::obs {
class EventTracer;
}  // namespace dras::obs

namespace dras::sim {

/// Outcome of one full simulation run.
struct SimulationResult {
  std::vector<JobRecord> jobs;        ///< Completed jobs.
  std::size_t unfinished_jobs = 0;    ///< Jobs never started (policy bug or
                                      ///< unsatisfiable dependency).
  double used_node_seconds = 0.0;
  double elapsed_node_seconds = 0.0;
  double utilization = 0.0;           ///< §IV-E system-level metric.
  Time makespan = 0.0;                ///< First submit to last completion.
  std::size_t scheduling_instances = 0;
  FaultStats faults;                  ///< All zero in fault-free runs.
};

class Simulator {
 public:
  /// `reservation_depth` = 1 gives the paper's single-reservation EASY
  /// behaviour; larger depths enable the conservative-backfilling
  /// extension where several queued jobs hold future node claims planned
  /// through the AvailabilityProfile (see reservation.h / profile.h).
  explicit Simulator(int total_nodes, int reservation_depth = 1);

  /// Run `trace` to completion under `policy`.  The trace is copied; the
  /// caller's jobs are untouched.  Throws std::invalid_argument when a job
  /// is larger than the machine or references an unknown dependency.
  SimulationResult run(const Trace& trace, Scheduler& policy);

  [[nodiscard]] int total_nodes() const noexcept {
    return cluster_.total_nodes();
  }

  /// Install the failure / checkpoint-I/O scenario for subsequent runs
  /// (sim/fault.h).  A config with enabled() == false — the default —
  /// leaves every code path byte-identical to the fault-free simulator.
  /// The failure stream derives from config.seed, so a given (config,
  /// trace, policy) triple is reproducible at any parallelism.
  void set_fault_config(FaultConfig config) { faults_ = std::move(config); }
  [[nodiscard]] const FaultConfig& fault_config() const noexcept {
    return faults_;
  }

  /// Invoked after every successful start / reserve / backfill action with
  /// the post-action state and the acting job.  Lets evaluation code
  /// account per-action rewards for policies that do not compute them
  /// (the Fig. 5 reward curves of the heuristic methods).  Any number of
  /// observers may be registered; they are notified in registration order.
  using ActionObserver =
      std::function<void(const SchedulingContext&, const Job&)>;
  void add_action_observer(ActionObserver observer) {
    observers_.push_back(std::move(observer));
  }
  /// Replace all registered observers with `observer` (historical
  /// single-observer semantics).  Prefer add_action_observer.
  void set_action_observer(ActionObserver observer) {
    observers_.clear();
    observers_.push_back(std::move(observer));
  }

  /// Attach a telemetry tracer (non-owning; nullptr detaches).  New
  /// simulators pick up obs::default_tracer() automatically; this
  /// overrides that choice.  The tracer receives one instant event per
  /// scheduling instance, one complete event per started job, queue-depth
  /// and used-node counter tracks, and reservation / walltime-kill
  /// instants — all stamped with simulation time.
  void set_tracer(obs::EventTracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::EventTracer* tracer() const noexcept { return tracer_; }

 private:
  friend class SchedulingContext;

  // --- SchedulingContext backing operations ---
  bool action_start(JobId id, bool as_backfill);
  bool action_reserve(JobId id);
  [[nodiscard]] Job* find_queued(JobId id) noexcept;

  /// Starting `job` now keeps every outstanding reservation satisfiable.
  [[nodiscard]] bool start_is_reservation_safe(const Job& job) const;
  /// All outstanding reservations except the one for `excluded`.
  [[nodiscard]] std::vector<Reservation> reservations_except(
      JobId excluded) const;
  /// Start any reserved jobs that now fit without jeopardising the rest.
  void auto_start_reserved(const SchedulingContext& ctx);

  void start_job(Job& job, ExecMode mode);
  void handle_event(const Event& event);
  void reset(const Trace& trace);
  void notify_observers(const SchedulingContext& ctx, const Job& job);

  // --- Fault engine (active only when faults_.enabled()) ---
  /// Per-running-job compute/checkpoint phase state.
  struct JobRun {
    Time segment_start = 0.0;       ///< Wall time compute last resumed.
    Time progress_at_segment = 0.0; ///< Compute-seconds done at that point.
    Time initial_progress = 0.0;    ///< progress_saved when this
                                    ///< incarnation started.
    Time pending_saved = 0.0;       ///< Progress a CkptDone will commit.
    bool in_ckpt = false;           ///< Currently writing a checkpoint.
  };
  /// Schedule the next phase boundary (CkptStart or final JobEnd) for a
  /// job whose compute just (re)started at now_.
  void schedule_next_phase(Job& job, JobRun& run);
  /// Push the next failure event of fault group `group` (constant-rate
  /// exponential chain), unless no job progress is possible any more.
  void schedule_group_failure(std::size_t group);
  void handle_node_failure(const Event& event);
  void handle_ckpt_start(Job& job);
  void handle_ckpt_done(Job& job);
  /// Kill `job` (node failure), account the lost work, and apply the
  /// configured requeue policy.
  void kill_running_job(Job& job);
  /// Can any job still make progress?  False once every trace job has
  /// been submitted and nothing is visible or running — the run-loop
  /// exit that keeps an infinite failure chain from spinning forever.
  [[nodiscard]] bool job_progress_possible() const noexcept;

  // --- Fault state-feature accessors (SchedulingContext backing) ---
  [[nodiscard]] double fraction_down() const noexcept;
  [[nodiscard]] double recent_fault_rate() const noexcept;
  [[nodiscard]] double requeued_backlog() const noexcept {
    return requeued_backlog_;
  }

  // --- Fairness accessors (SchedulingContext backing, src/fair) ---
  [[nodiscard]] double user_share(int user) const noexcept {
    return shares_.fraction(user, now_);
  }
  [[nodiscard]] std::size_t queued_user_count() const noexcept;

  Cluster cluster_;
  EventQueue events_;
  WaitQueue queue_;
  ReservationLedger ledger_;
  MetricsCollector metrics_;
  fair::ShareTracker shares_;

  std::vector<Job> jobs_;                       // per-run trace copy
  std::unordered_map<JobId, std::size_t> index_;  // id -> jobs_ slot
  std::unordered_set<JobId> ever_reserved_;
  Time now_ = 0.0;
  Time first_submit_ = 0.0;
  Time last_end_ = 0.0;
  std::size_t instances_ = 0;
  std::size_t started_jobs_ = 0;
  std::vector<ActionObserver> observers_;
  obs::EventTracer* tracer_ = nullptr;

  FaultConfig faults_;
  bool faults_enabled_ = false;               // cached per run
  util::Rng fault_rng_{1};
  std::vector<FaultNodeGroup> fault_groups_;  // resolved at reset
  std::unordered_map<JobId, JobRun> runstate_;
  Time io_busy_until_ = 0.0;     // shared checkpoint channel
  std::vector<Time> recent_failures_;
  double requeued_backlog_ = 0.0;  // node-seconds of killed work queued
  std::size_t submits_pending_ = 0;
};

}  // namespace dras::sim
