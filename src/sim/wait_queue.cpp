#include "sim/wait_queue.h"

#include <algorithm>

namespace dras::sim {

bool WaitQueue::ready(const Job& job) const {
  return std::all_of(job.dependencies.begin(), job.dependencies.end(),
                     [&](JobId dep) { return finished_.contains(dep); });
}

void WaitQueue::insert_visible(Job* job) {
  // Keep (submit_time, id) order; jobs released from hold may arrive out of
  // order relative to the tail of the visible queue.
  const auto pos = std::upper_bound(
      visible_.begin(), visible_.end(), job, [](const Job* a, const Job* b) {
        if (a->submit_time != b->submit_time)
          return a->submit_time < b->submit_time;
        return a->id < b->id;
      });
  visible_.insert(pos, job);
}

void WaitQueue::submit(Job* job) {
  if (ready(*job)) {
    insert_visible(job);
  } else {
    held_.push_back(job);
  }
}

void WaitQueue::on_job_finished(JobId id) {
  finished_.insert(id);
  for (auto it = held_.begin(); it != held_.end();) {
    if (ready(**it)) {
      insert_visible(*it);
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

bool WaitQueue::remove(JobId id) {
  const auto it = std::find_if(visible_.begin(), visible_.end(),
                               [id](const Job* j) { return j->id == id; });
  if (it == visible_.end()) return false;
  visible_.erase(it);
  return true;
}

Time WaitQueue::max_queued_time(Time now) const noexcept {
  Time longest = 0.0;
  for (const Job* job : visible_)
    longest = std::max(longest, now - job->submit_time);
  return longest;
}

void WaitQueue::clear() {
  visible_.clear();
  held_.clear();
  finished_.clear();
}

}  // namespace dras::sim
