// Arrival-ordered wait queue with dependency gating.
//
// Jobs with unfinished parents are *held* — invisible to the scheduler —
// until every dependency has completed (this is how Theta's Cobalt handles
// the 2.25 % of dependent jobs, §IV-C).  The visible queue preserves
// submission order, which FCFS and the DRAS window (§III-B) rely on.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/job.h"

namespace dras::sim {

class WaitQueue {
 public:
  /// Submit a job.  It becomes visible immediately unless it has parents
  /// that have not yet finished.  The pointer must outlive the queue.
  void submit(Job* job);

  /// Notify completion of `id`; any held job whose parents are now all
  /// complete moves into the visible queue (in original submit order).
  void on_job_finished(JobId id);

  /// Remove a visible job (it was started).  Returns false if not present.
  bool remove(JobId id);

  /// Visible jobs in arrival order.
  [[nodiscard]] const std::vector<Job*>& visible() const noexcept {
    return visible_;
  }
  [[nodiscard]] std::size_t visible_count() const noexcept {
    return visible_.size();
  }
  [[nodiscard]] std::size_t held_count() const noexcept {
    return held_.size();
  }
  [[nodiscard]] bool empty() const noexcept {
    return visible_.empty() && held_.empty();
  }

  /// Longest current wait among visible jobs; 0 when the queue is empty.
  [[nodiscard]] Time max_queued_time(Time now) const noexcept;

  void clear();

 private:
  [[nodiscard]] bool ready(const Job& job) const;
  void insert_visible(Job* job);

  std::vector<Job*> visible_;               // arrival order
  std::vector<Job*> held_;                  // arrival order
  std::unordered_set<JobId> finished_;
};

}  // namespace dras::sim
