#include "train/convergence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/binio.h"

namespace dras::train {

ConvergenceMonitor::ConvergenceMonitor(ConvergenceOptions options)
    : options_(options) {
  if (options_.window == 0) options_.window = 1;
}

double ConvergenceMonitor::recent_average() const noexcept {
  if (rewards_.empty()) return 0.0;
  const std::size_t n = std::min(options_.window, rewards_.size());
  const double sum = std::accumulate(rewards_.end() - static_cast<long>(n),
                                     rewards_.end(), 0.0);
  return sum / static_cast<double>(n);
}

bool ConvergenceMonitor::record(double validation_reward) {
  rewards_.push_back(validation_reward);
  if (converged_) return true;
  const std::size_t w = options_.window;
  if (rewards_.size() < 2 * w) return false;

  const auto tail = rewards_.end();
  const double recent =
      std::accumulate(tail - static_cast<long>(w), tail, 0.0) /
      static_cast<double>(w);
  const double previous =
      std::accumulate(tail - static_cast<long>(2 * w),
                      tail - static_cast<long>(w), 0.0) /
      static_cast<double>(w);
  const double scale = std::max({std::fabs(recent), std::fabs(previous),
                                 1e-12});
  if (std::fabs(recent - previous) / scale <= options_.tolerance) {
    converged_ = true;
    converged_at_ = rewards_.size() - 1;
  }
  return converged_;
}

void ConvergenceMonitor::reset() {
  rewards_.clear();
  converged_ = false;
  converged_at_.reset();
}

void ConvergenceMonitor::save_state(util::BinaryWriter& out) const {
  out.section("CONV", 1);
  out.f64_span(rewards_);
  out.boolean(converged_);
  out.boolean(converged_at_.has_value());
  if (converged_at_) out.u64(*converged_at_);
}

void ConvergenceMonitor::load_state(util::BinaryReader& in) {
  in.section("CONV", 1);
  rewards_ = in.f64_vector();
  converged_ = in.boolean();
  converged_at_.reset();
  if (in.boolean()) converged_at_ = in.u64();
}

}  // namespace dras::train
