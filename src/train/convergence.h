// Convergence detection for episodic training (paper §IV-D: "Both DRAS
// methods converge at 40 episodes.  Hence, we use the model trained after
// the 40th episode for testing").
//
// A reward sequence is declared converged when the moving average over
// the last `window` episodes changes by less than `tolerance` (relative)
// compared to the preceding window.  Used by the trainer examples to
// pick the snapshot episode the way the paper picks its 40th/50th-episode
// models.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::train {

struct ConvergenceOptions {
  std::size_t window = 5;     ///< Episodes per moving-average window.
  double tolerance = 0.02;    ///< Relative change below which = converged.
};

class ConvergenceMonitor {
 public:
  explicit ConvergenceMonitor(ConvergenceOptions options = {});

  /// Record one episode's validation reward.  Returns true once the
  /// sequence has converged (and keeps returning true afterwards).
  bool record(double validation_reward);

  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// Episode index (0-based) at which convergence was first declared.
  [[nodiscard]] std::optional<std::size_t> converged_at() const noexcept {
    return converged_at_;
  }
  [[nodiscard]] std::size_t episodes() const noexcept {
    return rewards_.size();
  }
  [[nodiscard]] const std::vector<double>& rewards() const noexcept {
    return rewards_;
  }
  /// Moving average of the most recent window (0 when empty).
  [[nodiscard]] double recent_average() const noexcept;

  void reset();

  /// Checkpoint hooks ("CONV" section): the reward window and the
  /// convergence verdict, so a resumed run declares convergence at the
  /// same episode an uninterrupted one would.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  ConvergenceOptions options_;
  std::vector<double> rewards_;
  bool converged_ = false;
  std::optional<std::size_t> converged_at_;
};

}  // namespace dras::train
