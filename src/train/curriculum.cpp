#include "train/curriculum.h"

#include "util/format.h"
#include <stdexcept>

#include "util/binio.h"
#include "util/rng.h"
#include "workload/jobset.h"
#include "workload/synthetic.h"

namespace dras::train {

std::string_view to_string(JobsetPhase phase) noexcept {
  switch (phase) {
    case JobsetPhase::Sampled: return "sampled";
    case JobsetPhase::Real: return "real";
    case JobsetPhase::Synthetic: return "synthetic";
  }
  return "?";
}

std::vector<Jobset> build_curriculum(
    const workload::WorkloadModel& model,
    const sim::Trace& real_training_trace, const CurriculumOptions& options) {
  if (real_training_trace.empty())
    throw std::invalid_argument("curriculum needs a non-empty real trace");

  // Phase 2 material: weekly slices of the real training trace.
  const auto week_slices =
      workload::split_by_duration(real_training_trace, 7.0 * 86400.0);

  std::vector<Jobset> curriculum;
  std::size_t sampled_made = 0, real_made = 0, synthetic_made = 0;
  for (const JobsetPhase phase : options.order) {
    switch (phase) {
      case JobsetPhase::Sampled:
        for (std::size_t i = 0; i < options.sampled_sets; ++i) {
          Jobset set;
          set.phase = phase;
          set.name = util::format("sampled-{}", sampled_made);
          set.trace = workload::sampled_jobset(
              real_training_trace, options.jobs_per_set,
              util::derive_seed(options.seed,
                                util::format("sampled-{}", sampled_made)));
          curriculum.push_back(std::move(set));
          ++sampled_made;
        }
        break;
      case JobsetPhase::Real:
        if (week_slices.empty())
          throw std::invalid_argument("real trace yields no weekly slices");
        for (std::size_t i = 0; i < options.real_sets; ++i) {
          Jobset set;
          set.phase = phase;
          set.name = util::format("real-week-{}", real_made);
          set.trace = week_slices[real_made % week_slices.size()];
          curriculum.push_back(std::move(set));
          ++real_made;
        }
        break;
      case JobsetPhase::Synthetic:
        for (std::size_t i = 0; i < options.synthetic_sets; ++i) {
          workload::GenerateOptions gen;
          gen.num_jobs = options.jobs_per_set;
          gen.seed = util::derive_seed(
              options.seed, util::format("synthetic-{}", synthetic_made));
          Jobset set;
          set.phase = phase;
          set.name = util::format("synthetic-{}", synthetic_made);
          set.trace = workload::generate_trace(model, gen);
          curriculum.push_back(std::move(set));
          ++synthetic_made;
        }
        break;
    }
  }
  return curriculum;
}

Curriculum::Curriculum(std::vector<Jobset> jobsets)
    : jobsets_(std::move(jobsets)) {}

const Jobset& Curriculum::current() const {
  if (done()) throw std::out_of_range("curriculum exhausted");
  return jobsets_[next_];
}

void Curriculum::advance() {
  if (done()) throw std::out_of_range("curriculum exhausted");
  ++next_;
}

void Curriculum::seek(std::size_t position) {
  if (position > jobsets_.size())
    throw std::out_of_range(util::format(
        "curriculum position {} past its {} jobsets", position,
        jobsets_.size()));
  next_ = position;
}

std::uint64_t Curriculum::fingerprint() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix_byte = [&h](unsigned char byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  const auto mix_u64 = [&mix_byte](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte)
      mix_byte(static_cast<unsigned char>((v >> (8 * byte)) & 0xFFu));
  };
  mix_u64(jobsets_.size());
  for (const Jobset& set : jobsets_) {
    for (const char c : set.name) mix_byte(static_cast<unsigned char>(c));
    mix_byte(0);  // name terminator, so "ab"+"c" != "a"+"bc"
    mix_u64(static_cast<std::uint64_t>(set.phase));
    mix_u64(set.trace.size());
  }
  return h;
}

void Curriculum::save_state(util::BinaryWriter& out) const {
  out.section("CURR", 1);
  out.u64(fingerprint());
  out.u64(next_);
}

void Curriculum::load_state(util::BinaryReader& in) {
  in.section("CURR", 1);
  const std::uint64_t stored = in.u64();
  if (stored != fingerprint())
    throw util::SerializationError(
        "checkpoint was written against a different curriculum "
        "(jobset names, phases or sizes differ); refusing to restore");
  const std::uint64_t position = in.u64();
  if (position > jobsets_.size())
    throw util::SerializationError(util::format(
        "checkpoint cursor {} past the curriculum's {} jobsets", position,
        jobsets_.size()));
  next_ = position;
}

}  // namespace dras::train
