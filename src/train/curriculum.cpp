#include "train/curriculum.h"

#include "util/format.h"
#include <stdexcept>

#include "util/rng.h"
#include "workload/jobset.h"
#include "workload/synthetic.h"

namespace dras::train {

std::string_view to_string(JobsetPhase phase) noexcept {
  switch (phase) {
    case JobsetPhase::Sampled: return "sampled";
    case JobsetPhase::Real: return "real";
    case JobsetPhase::Synthetic: return "synthetic";
  }
  return "?";
}

std::vector<Jobset> build_curriculum(
    const workload::WorkloadModel& model,
    const sim::Trace& real_training_trace, const CurriculumOptions& options) {
  if (real_training_trace.empty())
    throw std::invalid_argument("curriculum needs a non-empty real trace");

  // Phase 2 material: weekly slices of the real training trace.
  const auto week_slices =
      workload::split_by_duration(real_training_trace, 7.0 * 86400.0);

  std::vector<Jobset> curriculum;
  std::size_t sampled_made = 0, real_made = 0, synthetic_made = 0;
  for (const JobsetPhase phase : options.order) {
    switch (phase) {
      case JobsetPhase::Sampled:
        for (std::size_t i = 0; i < options.sampled_sets; ++i) {
          Jobset set;
          set.phase = phase;
          set.name = util::format("sampled-{}", sampled_made);
          set.trace = workload::sampled_jobset(
              real_training_trace, options.jobs_per_set,
              util::derive_seed(options.seed,
                                util::format("sampled-{}", sampled_made)));
          curriculum.push_back(std::move(set));
          ++sampled_made;
        }
        break;
      case JobsetPhase::Real:
        if (week_slices.empty())
          throw std::invalid_argument("real trace yields no weekly slices");
        for (std::size_t i = 0; i < options.real_sets; ++i) {
          Jobset set;
          set.phase = phase;
          set.name = util::format("real-week-{}", real_made);
          set.trace = week_slices[real_made % week_slices.size()];
          curriculum.push_back(std::move(set));
          ++real_made;
        }
        break;
      case JobsetPhase::Synthetic:
        for (std::size_t i = 0; i < options.synthetic_sets; ++i) {
          workload::GenerateOptions gen;
          gen.num_jobs = options.jobs_per_set;
          gen.seed = util::derive_seed(
              options.seed, util::format("synthetic-{}", synthetic_made));
          Jobset set;
          set.phase = phase;
          set.name = util::format("synthetic-{}", synthetic_made);
          set.trace = workload::generate_trace(model, gen);
          curriculum.push_back(std::move(set));
          ++synthetic_made;
        }
        break;
    }
  }
  return curriculum;
}

}  // namespace dras::train
