// Three-phase training curriculum (paper §III-C, §IV-D).
//
// "Three types of jobsets are used to train DRAS in order: (1) a set of
//  sampled jobs from real job traces, (2) a period of real job traces,
//  and (3) a set of synthetic jobs generated according to job patterns on
//  the target system."
//
// The curriculum builder produces the ordered jobset list; alternate
// orderings (real-first, synthetic-first) back the Fig. 4 ablation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/job.h"
#include "workload/models.h"

namespace dras::util {
class BinaryWriter;
class BinaryReader;
}  // namespace dras::util

namespace dras::train {

enum class JobsetPhase { Sampled, Real, Synthetic };

[[nodiscard]] std::string_view to_string(JobsetPhase phase) noexcept;

struct Jobset {
  std::string name;
  JobsetPhase phase = JobsetPhase::Sampled;
  sim::Trace trace;
};

struct CurriculumOptions {
  std::size_t sampled_sets = 9;    ///< Paper: 9 sampled jobsets on Theta.
  std::size_t real_sets = 9;       ///< Paper: nine one-week slices.
  std::size_t synthetic_sets = 82; ///< Paper: 82 synthetic jobsets.
  std::size_t jobs_per_set = 3200; ///< Paper: 320,000 jobs / 100 jobsets.
  std::uint64_t seed = 1;
  /// Phase ordering; the paper's best is Sampled → Real → Synthetic.
  std::vector<JobsetPhase> order = {JobsetPhase::Sampled, JobsetPhase::Real,
                                    JobsetPhase::Synthetic};
};

/// Build the ordered curriculum.  Real jobsets are contiguous slices of
/// `real_training_trace` (cycled if fewer slices exist than requested);
/// sampled jobsets are drawn from it; synthetic jobsets come from `model`
/// with per-set seeds.
[[nodiscard]] std::vector<Jobset> build_curriculum(
    const workload::WorkloadModel& model,
    const sim::Trace& real_training_trace, const CurriculumOptions& options);

/// An ordered jobset sequence plus a resumable cursor — the unit the
/// crash-safe trainer consumes.  Jobsets are regenerated from seeds on
/// every process start (they are cheap and deterministic), so checkpoints
/// persist only the cursor plus a fingerprint of the sequence; restoring
/// against a curriculum built from different options fails loudly
/// instead of silently training on the wrong slices.
class Curriculum {
 public:
  Curriculum() = default;
  explicit Curriculum(std::vector<Jobset> jobsets);

  [[nodiscard]] std::size_t size() const noexcept { return jobsets_.size(); }
  [[nodiscard]] std::span<const Jobset> jobsets() const noexcept {
    return jobsets_;
  }
  /// Index of the next jobset to train on.
  [[nodiscard]] std::size_t position() const noexcept { return next_; }
  [[nodiscard]] bool done() const noexcept { return next_ >= jobsets_.size(); }
  /// The next jobset; throws std::out_of_range when done().
  [[nodiscard]] const Jobset& current() const;
  void advance();
  /// Jump the cursor (tests, manual resume).  Throws std::out_of_range
  /// past size().
  void seek(std::size_t position);

  /// Order-sensitive fingerprint over (name, phase, job count) of every
  /// jobset — the identity a checkpoint pins.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Checkpoint hooks ("CURR" section): fingerprint + cursor.
  /// load_state() throws util::SerializationError when the fingerprint
  /// does not match this curriculum.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

 private:
  std::vector<Jobset> jobsets_;
  std::size_t next_ = 0;
};

}  // namespace dras::train
