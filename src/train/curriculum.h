// Three-phase training curriculum (paper §III-C, §IV-D).
//
// "Three types of jobsets are used to train DRAS in order: (1) a set of
//  sampled jobs from real job traces, (2) a period of real job traces,
//  and (3) a set of synthetic jobs generated according to job patterns on
//  the target system."
//
// The curriculum builder produces the ordered jobset list; alternate
// orderings (real-first, synthetic-first) back the Fig. 4 ablation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/job.h"
#include "workload/models.h"

namespace dras::train {

enum class JobsetPhase { Sampled, Real, Synthetic };

[[nodiscard]] std::string_view to_string(JobsetPhase phase) noexcept;

struct Jobset {
  std::string name;
  JobsetPhase phase = JobsetPhase::Sampled;
  sim::Trace trace;
};

struct CurriculumOptions {
  std::size_t sampled_sets = 9;    ///< Paper: 9 sampled jobsets on Theta.
  std::size_t real_sets = 9;       ///< Paper: nine one-week slices.
  std::size_t synthetic_sets = 82; ///< Paper: 82 synthetic jobsets.
  std::size_t jobs_per_set = 3200; ///< Paper: 320,000 jobs / 100 jobsets.
  std::uint64_t seed = 1;
  /// Phase ordering; the paper's best is Sampled → Real → Synthetic.
  std::vector<JobsetPhase> order = {JobsetPhase::Sampled, JobsetPhase::Real,
                                    JobsetPhase::Synthetic};
};

/// Build the ordered curriculum.  Real jobsets are contiguous slices of
/// `real_training_trace` (cycled if fewer slices exist than requested);
/// sampled jobsets are drawn from it; synthetic jobsets come from `model`
/// with per-set seeds.
[[nodiscard]] std::vector<Jobset> build_curriculum(
    const workload::WorkloadModel& model,
    const sim::Trace& real_training_trace, const CurriculumOptions& options);

}  // namespace dras::train
