#include "train/evaluator.h"

namespace dras::train {

Evaluation evaluate(int total_nodes, const sim::Trace& trace,
                    sim::Scheduler& policy,
                    const core::RewardFunction* reward) {
  sim::Simulator simulator(total_nodes);
  Evaluation evaluation;
  evaluation.method = std::string(policy.name());
  if (reward != nullptr) {
    simulator.add_action_observer(
        [&](const sim::SchedulingContext& ctx, const sim::Job& job) {
          evaluation.total_reward += reward->step_reward(ctx, job);
        });
  }
  evaluation.result = simulator.run(trace, policy);
  evaluation.summary = metrics::summarize(evaluation.result);
  return evaluation;
}

}  // namespace dras::train
