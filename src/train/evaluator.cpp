#include "train/evaluator.h"

namespace dras::train {

Evaluation evaluate(int total_nodes, const sim::Trace& trace,
                    sim::Scheduler& policy, const EvalOptions& options) {
  sim::Simulator simulator(total_nodes, options.reservation_depth);
  simulator.set_fault_config(options.faults);
  Evaluation evaluation;
  evaluation.method = std::string(policy.name());
  if (options.reward != nullptr) {
    simulator.add_action_observer(
        [&](const sim::SchedulingContext& ctx, const sim::Job& job) {
          evaluation.total_reward += options.reward->step_reward(ctx, job);
        });
  }
  evaluation.result = simulator.run(trace, policy);
  evaluation.summary = metrics::summarize(evaluation.result);
  return evaluation;
}

Evaluation evaluate(int total_nodes, const sim::Trace& trace,
                    sim::Scheduler& policy,
                    const core::RewardFunction* reward) {
  EvalOptions options;
  options.reward = reward;
  return evaluate(total_nodes, trace, policy, options);
}

}  // namespace dras::train
