// Evaluation runner: execute one policy over one trace and collect the
// §IV-E summary plus (optionally) the total per-action reward, which is
// the quantity Fig. 5 plots for every method including the heuristics.
#pragma once

#include <optional>
#include <string>

#include "core/reward.h"
#include "metrics/stats.h"
#include "sim/simulator.h"

namespace dras::train {

struct Evaluation {
  std::string method;
  metrics::Summary summary;
  double total_reward = 0.0;  ///< Valid when a reward function was given.
  sim::SimulationResult result;
};

/// Knobs for an evaluation run beyond (nodes, trace, policy).
struct EvalOptions {
  /// When set, every successful action is scored on the post-action state
  /// and accumulated into Evaluation::total_reward.
  const core::RewardFunction* reward = nullptr;
  /// Simulator reservation depth (how many reservations a policy may hold
  /// concurrently); 1 matches the paper's EASY-style baseline.
  int reservation_depth = 1;
  /// Failure scenario injected into the simulator (sim/fault.h).  The
  /// default is disabled, which leaves the simulation bit-identical to a
  /// fault-free run.
  sim::FaultConfig faults;
};

/// Run `policy` on `trace` with a machine of `total_nodes` nodes.  Reward
/// accounting registers an additional action observer, so it coexists
/// with telemetry tracers and any other observers.
[[nodiscard]] Evaluation evaluate(int total_nodes, const sim::Trace& trace,
                                  sim::Scheduler& policy,
                                  const EvalOptions& options);

/// Convenience overload preserving the original (reward-only) signature.
[[nodiscard]] Evaluation evaluate(int total_nodes, const sim::Trace& trace,
                                  sim::Scheduler& policy,
                                  const core::RewardFunction* reward = nullptr);

}  // namespace dras::train
