#include "train/trainer.h"

#include "util/format.h"

#include "nn/serialize.h"
#include "sim/simulator.h"
#include "util/logging.h"

namespace dras::train {

Trainer::Trainer(core::DrasAgent& agent, int total_nodes,
                 sim::Trace validation, TrainerOptions options)
    : agent_(agent),
      total_nodes_(total_nodes),
      validation_(std::move(validation)),
      options_(std::move(options)) {}

EpisodeResult Trainer::validate() {
  EpisodeResult result;
  result.episode = episodes_done_;
  const bool was_training = agent_.training();
  agent_.set_training(false);
  sim::Simulator simulator(total_nodes_);
  const sim::SimulationResult run = simulator.run(validation_, agent_);
  result.validation_reward = agent_.episode_reward();
  result.validation_summary = metrics::summarize(run);
  agent_.set_training(was_training);
  return result;
}

EpisodeResult Trainer::run_episode(const Jobset& jobset) {
  EpisodeResult result;
  result.episode = episodes_done_;
  result.jobset = jobset.name;
  result.phase = jobset.phase;

  agent_.set_training(true);
  sim::Simulator simulator(total_nodes_);
  simulator.run(jobset.trace, agent_);
  result.training_reward = agent_.episode_reward();

  if (options_.validate_each_episode && !validation_.empty()) {
    const EpisodeResult validation = validate();
    result.validation_reward = validation.validation_reward;
    result.validation_summary = validation.validation_summary;
  }

  if (options_.snapshot_dir) {
    std::filesystem::create_directories(*options_.snapshot_dir);
    const auto path =
        *options_.snapshot_dir /
        util::format("{}-episode-{}.bin", agent_.name(), episodes_done_);
    nn::save_network_file(path, agent_.network());
  }

  util::log_info("episode {} [{}] train reward {:.3f} validation {:.3f}",
                 episodes_done_, jobset.name, result.training_reward,
                 result.validation_reward);
  ++episodes_done_;
  return result;
}

std::vector<EpisodeResult> Trainer::run(std::span<const Jobset> curriculum) {
  std::vector<EpisodeResult> results;
  results.reserve(curriculum.size());
  for (const Jobset& jobset : curriculum)
    results.push_back(run_episode(jobset));
  return results;
}

}  // namespace dras::train
