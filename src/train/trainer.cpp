#include "train/trainer.h"

#include <chrono>

#include "ckpt/manager.h"
#include "exec/parallel_runner.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/run_manifest.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "robust/health.h"
#include "robust/recovery.h"
#include "rollout/rollout_pool.h"
#include "sim/simulator.h"
#include "train/convergence.h"
#include "util/binio.h"
#include "util/format.h"
#include "util/logging.h"

namespace dras::train {

namespace {

struct TrainMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& episodes = reg.counter("train.episodes");
  obs::Counter& snapshots = reg.counter("train.snapshots");
  obs::Counter& validations = reg.counter("train.validations");
  // Wall-time distributions are hdr histograms: p50/p90/p99/p999 with
  // ~0.4% relative error, mergeable across rollout shards.
  obs::HdrHistogram& episode_wall_s = reg.hdr("train.episode_wall_s");
  obs::HdrHistogram& validation_wall_s = reg.hdr("train.validation_wall_s");
  obs::HdrHistogram& round_wall_s = reg.hdr("train.round_wall_s");
  // Loss keeps the fixed-bucket histogram: it can be negative, which
  // the log-bucketed hdr kind would clamp away.
  obs::Histogram& loss = reg.histogram(
      "train.loss", obs::Histogram::exponential_bounds(1e-4, 10.0, 10));
  obs::Counter& divergence_events = reg.counter("robust.divergence_events");

  static TrainMetrics& get() {
    static TrainMetrics metrics;
    return metrics;
  }
};

}  // namespace

Trainer::Trainer(core::DrasAgent& agent, int total_nodes,
                 sim::Trace validation, TrainerOptions options)
    : agent_(agent),
      total_nodes_(total_nodes),
      validation_(std::move(validation)),
      options_(std::move(options)) {}

EpisodeResult Trainer::validate_on(const sim::Trace& trace,
                                   core::DrasAgent& agent) const {
  obs::EventTracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::default_tracer();
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start =
      tracer != nullptr ? tracer->wall_seconds() : 0.0;

  EpisodeResult result;
  result.episode = episodes_done_;
  const bool was_training = agent.training();
  agent.set_training(false);
  sim::Simulator simulator(total_nodes_);
  const sim::SimulationResult run = simulator.run(trace, agent);
  result.validation_reward = agent.episode_reward();
  result.validation_summary = metrics::summarize(run);
  agent.set_training(was_training);

  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  TrainMetrics& m = TrainMetrics::get();
  m.validations.add();
  m.validation_wall_s.observe(result.wall_seconds);
  if (tracer != nullptr) {
    tracer->complete(
        "validate", trace_start, tracer->wall_seconds() - trace_start,
        {obs::targ("episode", static_cast<std::uint64_t>(episodes_done_)),
         obs::targ("validation_reward", result.validation_reward),
         obs::targ("jobs", static_cast<std::uint64_t>(trace.size()))},
        obs::kTrainPid);
  }
  return result;
}

EpisodeResult Trainer::validate() { return validate_on(validation_, agent_); }

std::vector<EpisodeResult> Trainer::validate_many(
    std::span<const sim::Trace> traces) {
  exec::ParallelRunner runner(options_.validation_jobs);
  if (runner.jobs() <= 1 || traces.size() <= 1) {
    std::vector<EpisodeResult> results;
    results.reserve(traces.size());
    for (const sim::Trace& trace : traces)
      results.push_back(validate_on(trace, agent_));
    return results;
  }
  // Each task validates a private clone: validation is greedy and
  // mutates only transient episode state, and the clone starts
  // bit-identical to the live agent, so results match the serial path.
  // Per-task spans parent to the caller's span (cross-thread, seq = the
  // stable trace index) so --jobs N fan-out is visible in the trace;
  // validate_on records each task's duration into the
  // train.validation_wall_s hdr histogram.
  const obs::SpanContext parent = obs::Span::current();
  return runner.map(
      traces.size(),
      [&](std::size_t i) {
        obs::Span task_span(
            "validate.task", parent, i,
            {obs::targ("trace", static_cast<std::uint64_t>(i))});
        const auto clone = agent_.clone_agent();
        return validate_on(traces[i], *clone);
      },
      "validate");
}

EpisodeResult Trainer::run_episode(const Jobset& jobset) {
  obs::EventTracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::default_tracer();
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_start =
      tracer != nullptr ? tracer->wall_seconds() : 0.0;

  EpisodeResult result;
  result.episode = episodes_done_;
  result.jobset = jobset.name;
  result.phase = jobset.phase;

  agent_.set_training(true);
  sim::Simulator simulator(total_nodes_);
  if (options_.faults.enabled()) {
    // One failure stream per global episode index, matching the rollout
    // pool's per-slot derivation, so serial and batched collection see
    // identical failures for the same episode.
    sim::FaultConfig faults = options_.faults;
    faults.seed =
        exec::task_seed(options_.faults.seed, "fault", episodes_done_);
    simulator.set_fault_config(faults);
  }
  const sim::SimulationResult sim_result = simulator.run(jobset.trace, agent_);
  result.faults = sim_result.faults;
  result.training_reward = agent_.episode_reward();
  result.loss = agent_.last_update_loss();
  result.grad_norm = agent_.last_update_grad_norm();
  result.epsilon = agent_.epsilon();

  if (options_.validate_each_episode && !validation_.empty()) {
    const EpisodeResult validation = validate();
    result.validation_reward = validation.validation_reward;
    result.validation_summary = validation.validation_summary;
  }

  if (options_.snapshot_dir) {
    std::filesystem::create_directories(*options_.snapshot_dir);
    const auto path =
        *options_.snapshot_dir /
        util::format("{}-episode-{}.bin", agent_.name(), episodes_done_);
    nn::save_network_file(path, agent_.network());
    TrainMetrics::get().snapshots.add();
    if (tracer != nullptr) {
      tracer->instant("snapshot", tracer->wall_seconds(),
                      {obs::targ("path", path.string()),
                       obs::targ(
                           "episode",
                           static_cast<std::uint64_t>(episodes_done_))},
                      obs::kTrainPid);
    }
  }

  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  TrainMetrics& m = TrainMetrics::get();
  m.episodes.add();
  m.episode_wall_s.observe(result.wall_seconds);
  m.loss.observe(result.loss);
  if (tracer != nullptr) {
    tracer->complete(
        util::format("episode {}", episodes_done_), trace_start,
        tracer->wall_seconds() - trace_start,
        {obs::targ("jobset", jobset.name),
         obs::targ("training_reward", result.training_reward),
         obs::targ("validation_reward", result.validation_reward),
         obs::targ("loss", result.loss),
         obs::targ("grad_norm", result.grad_norm),
         obs::targ("epsilon", result.epsilon)},
        obs::kTrainPid);
  }

  util::log_info("episode {} [{}] train reward {:.3f} validation {:.3f}",
                 episodes_done_, jobset.name, result.training_reward,
                 result.validation_reward);
  ++episodes_done_;
  return result;
}

std::vector<EpisodeResult> Trainer::run(std::span<const Jobset> curriculum) {
  std::vector<EpisodeResult> results;
  results.reserve(curriculum.size());
  for (const Jobset& jobset : curriculum)
    results.push_back(run_episode(jobset));
  return results;
}

std::vector<EpisodeResult> Trainer::run(Curriculum& curriculum,
                                        const RunOptions& run_options) {
  if (run_options.recovery != nullptr) {
    if (run_options.health == nullptr)
      throw std::invalid_argument(
          "RunOptions.recovery needs RunOptions.health to detect the "
          "divergences it rolls back from");
    if (run_options.checkpoints == nullptr)
      throw std::invalid_argument(
          "RunOptions.recovery needs RunOptions.checkpoints to supply "
          "rollback targets");
  }
  const auto stopped = [&run_options] {
    return run_options.stop != nullptr &&
           run_options.stop->load(std::memory_order_relaxed);
  };
  const auto make_state = [this, &run_options, &curriculum] {
    ckpt::TrainingState state;
    state.agent = &agent_;
    state.trainer = this;
    state.curriculum = &curriculum;
    state.monitor = run_options.monitor;
    state.recovery = run_options.recovery != nullptr
                         ? &run_options.recovery->state()
                         : nullptr;
    state.faults = run_options.fault_scenario;
    return state;
  };
  const auto save_checkpoint = [this, &run_options, &make_state] {
    const std::filesystem::path path =
        run_options.checkpoints->save(make_state(), episodes_done_);
    if (run_options.on_checkpoint)
      run_options.on_checkpoint(episodes_done_, path);
  };

  // A rollback needs somewhere to roll back *to*: guarantee a baseline
  // snapshot before the first guarded episode runs.
  if (run_options.recovery != nullptr &&
      run_options.checkpoints->list().empty()) {
    save_checkpoint();
  }

  obs::EventTracer* tracer =
      options_.tracer != nullptr ? options_.tracer : obs::default_tracer();
  const std::size_t start_episode = episodes_done_;
  // Episodes per round: 1 = the legacy per-episode loop; a rollout pool
  // with batch() > 1 switches to batched parallel collection.  Rounds
  // are atomic — checkpoints, health checks and rollback happen only at
  // round boundaries, so every snapshot is a round boundary and a
  // restored run re-derives identical rounds from the cursor.
  const std::size_t round_size =
      run_options.rollout != nullptr
          ? std::max<std::size_t>(run_options.rollout->batch(), 1)
          : 1;
  std::vector<EpisodeResult> results;
  results.reserve(curriculum.size() - curriculum.position());
  bool interrupted = false;
  std::uint64_t rounds_committed = 0;
  while (!curriculum.done()) {
    if (stopped()) {
      interrupted = true;
      break;
    }
    const auto round_start = std::chrono::steady_clock::now();
    const std::size_t first_episode = episodes_done_;
    // The round span covers collection, validation, guardrails and the
    // boundary checkpoint — the full critical path of one round.  Slot
    // spans opened by the rollout pool parent themselves here via
    // obs::Span::current().
    obs::Span round_span(
        "round",
        {obs::targ("first_episode",
                   static_cast<std::uint64_t>(first_episode))});
    std::vector<EpisodeResult> batch;
    if (round_size > 1) {
      const std::size_t remaining =
          curriculum.size() - curriculum.position();
      const std::span<const Jobset> slots = curriculum.jobsets().subspan(
          curriculum.position(), std::min(round_size, remaining));
      rollout::RoundResult round = run_options.rollout->collect(
          agent_, total_nodes_, slots, episodes_done_);
      episodes_done_ += round.episodes.size();
      batch = std::move(round.episodes);
      if (options_.validate_each_episode && !validation_.empty()) {
        // Every slot shares the post-round parameters: validate the
        // frozen agent once and stamp the round with it.
        const EpisodeResult validation = validate();
        for (EpisodeResult& result : batch) {
          result.validation_reward = validation.validation_reward;
          result.validation_summary = validation.validation_summary;
        }
      }
      TrainMetrics& m = TrainMetrics::get();
      for (const EpisodeResult& result : batch) {
        m.episodes.add();
        m.episode_wall_s.observe(result.wall_seconds);
        m.loss.observe(result.loss);
        util::log_info(
            "episode {} [{}] train reward {:.3f} validation {:.3f}",
            result.episode, result.jobset, result.training_reward,
            result.validation_reward);
      }
    } else {
      batch.push_back(run_episode(curriculum.current()));
    }
    // Guardrails, per episode result in slot order.  The first tripped
    // invariant rolls the whole round back (the batched update is one
    // unit) and retries from the restored cursor.
    bool rolled_back = false;
    for (EpisodeResult& result : batch) {
      if (run_options.sabotage) run_options.sabotage(agent_, result);
      if (run_options.health == nullptr) continue;
      const robust::HealthReport report =
          run_options.health->check(agent_, result);
      if (report.ok()) continue;
      if (tracer != nullptr) {
        tracer->instant(
            "divergence", tracer->wall_seconds(),
            {obs::targ("fault", to_string(report.fault)),
             obs::targ("episode",
                       static_cast<std::uint64_t>(result.episode))},
            obs::kTrainPid);
      }
      util::log_warn("health invariant tripped: {}", report.detail);
      if (run_options.recovery == nullptr) {
        TrainMetrics::get().divergence_events.add();
        throw robust::DivergenceError(util::format(
            "training diverged with no recovery policy wired: {}",
            report.detail));
      }
      const auto restored = run_options.recovery->recover(
          report, make_state(), run_options.health);
      // Counted only after the rollback: a successful restore rewinds
      // the telemetry registry ("OBSC" section) to the snapshot, so an
      // increment made before recover() would be silently erased.
      TrainMetrics::get().divergence_events.add();
      if (!restored)
        throw robust::DivergenceError(
            util::format("training diverged and recovery gave up: {}",
                         report.detail),
            run_options.recovery->options().diagnostics_path);
      // Persist the advanced rollback state (compounded LR backoff,
      // fresh nonce) immediately: a crash — or a repeat divergence —
      // before the next cadence save would otherwise restore the
      // pre-rollback snapshot and resume with the stale discipline.
      save_checkpoint();
      // The restore rewound agent/trainer/curriculum/monitor; drop the
      // results past the restored boundary so the vector matches what
      // this call has (now) durably completed.
      const std::size_t done = episodes_done_ > start_episode
                                   ? episodes_done_ - start_episode
                                   : 0;
      if (results.size() > done) results.resize(done);
      rolled_back = true;
      break;
    }
    if (rolled_back) continue;  // retry from the restored cursor
    // Round aggregates, captured before the results are moved out.
    obs::RoundRecord round_record;
    round_record.round = rounds_committed;
    round_record.first_episode = first_episode;
    round_record.episodes = batch.size();
    for (const EpisodeResult& result : batch) {
      round_record.mean_loss += result.loss;
      round_record.mean_training_reward += result.training_reward;
      round_record.validation_reward = result.validation_reward;
      round_record.epsilon = result.epsilon;
    }
    if (!batch.empty()) {
      round_record.mean_loss /= static_cast<double>(batch.size());
      round_record.mean_training_reward /=
          static_cast<double>(batch.size());
    }
    for (EpisodeResult& result : batch) {
      curriculum.advance();
      // Fault statistics commit with the round: a rolled-back round's
      // failures never land here, and the checkpoint restore above
      // rewinds the scenario's "FALT" section to match.
      if (run_options.fault_scenario != nullptr)
        run_options.fault_scenario->stats.merge(result.faults);
      if (run_options.monitor != nullptr)
        run_options.monitor->record(result.validation_reward);
      // A healthy episode feeds the LR recovery streak (no-op unless a
      // rollback left lr_scale < 1 and recovery is configured for it).
      if (run_options.recovery != nullptr)
        run_options.recovery->note_healthy(agent_);
      results.push_back(std::move(result));
    }
    if (run_options.checkpoints != nullptr &&
        run_options.checkpoints->should_save(episodes_done_)) {
      save_checkpoint();
    }
    ++rounds_committed;
    round_record.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    if (run_options.recovery != nullptr) {
      const ckpt::RecoveryState& recovery_state =
          run_options.recovery->state();
      round_record.lr_scale = recovery_state.lr_scale;
      round_record.rollbacks = recovery_state.rollbacks;
    }
    TrainMetrics::get().round_wall_s.observe(round_record.wall_seconds);
    round_span.arg(obs::targ("loss", round_record.mean_loss));
    round_span.arg(
        obs::targ("episodes",
                  static_cast<std::uint64_t>(round_record.episodes)));
    if (run_options.run != nullptr)
      run_options.run->record_round(round_record);
  }
  if (interrupted)
    util::log_warn("training stopped after {} episodes; flushing checkpoint",
                   episodes_done_);
  // Final flush, unless the cadence already saved this exact boundary.
  if (run_options.checkpoints != nullptr &&
      run_options.checkpoints->last_saved_episode() != episodes_done_) {
    save_checkpoint();
  }
  return results;
}

void Trainer::save_state(util::BinaryWriter& out) const {
  out.section("TRNR", 1);
  out.u64(episodes_done_);
}

void Trainer::load_state(util::BinaryReader& in) {
  in.section("TRNR", 1);
  episodes_done_ = in.u64();
}

}  // namespace dras::train
