// Episodic trainer (paper §III-C).
//
// "We train the neural network in episodes ... For each episode, the
//  environment is first set to its initial state (all nodes idle).  An
//  episode terminates when all jobs in the jobset have been scheduled.
//  We monitor the progress of the training by taking a snapshot of the
//  model after each episode.  The next episode uses a new jobset to
//  refine the previous model."
//
// After each episode the trainer optionally evaluates the frozen agent on
// a validation trace (training disabled, greedy actions); the resulting
// total-reward sequence is the Fig. 4 / Fig. 5 learning curve.
#pragma once

#include <atomic>
#include <filesystem>
#include <functional>
#include <optional>
#include <vector>

#include "core/dras_agent.h"
#include "metrics/stats.h"
#include "sim/fault.h"
#include "train/curriculum.h"

namespace dras::obs {
class EventTracer;
class RunRecorder;
}  // namespace dras::obs

namespace dras::ckpt {
class CheckpointManager;
}  // namespace dras::ckpt

namespace dras::robust {
class HealthMonitor;
class RecoveryPolicy;
}  // namespace dras::robust

namespace dras::rollout {
class RolloutPool;
}  // namespace dras::rollout

namespace dras::train {

class ConvergenceMonitor;

struct EpisodeResult {
  std::size_t episode = 0;
  std::string jobset;
  JobsetPhase phase = JobsetPhase::Sampled;
  double training_reward = 0.0;    ///< Reward collected during the episode.
  double validation_reward = 0.0;  ///< Greedy reward on the validation set.
  metrics::Summary validation_summary;
  // --- Training telemetry ---
  double loss = 0.0;          ///< Policy loss of the last update.
  double grad_norm = 0.0;     ///< Gradient L2 norm of the last update.
  double epsilon = 0.0;       ///< DQL exploration rate (0 for PG).
  double wall_seconds = 0.0;  ///< Wall-clock cost of the training episode.
  /// Failure/requeue accounting of the training episode's simulation
  /// (all zero when TrainerOptions::faults is disabled).
  sim::FaultStats faults;
};

struct TrainerOptions {
  bool validate_each_episode = true;
  /// When set, a model snapshot is written per episode as
  /// "<dir>/<agent>-episode-<k>.bin".
  std::optional<std::filesystem::path> snapshot_dir;
  /// Telemetry tracer for episode begin/end, loss/reward/epsilon and
  /// snapshot-write events (non-owning).  Falls back to
  /// obs::default_tracer() when null.
  obs::EventTracer* tracer = nullptr;
  /// Maximum concurrent validations in validate_many(); 1 = serial,
  /// 0 = hardware concurrency.  Parallel validation evaluates a private
  /// clone of the agent per trace, so results are bit-identical to the
  /// serial path (see exec::ParallelRunner's determinism contract).
  std::size_t validation_jobs = 1;
  /// Failure scenario injected into every *training* episode's simulator
  /// (sim/fault.h).  Episode k derives its own failure stream as
  /// exec::task_seed(faults.seed, "fault", k) — the same derivation the
  /// rollout pool uses per slot — so fault runs stay byte-identical at
  /// any worker count.  Validation always runs fault-free (the learning
  /// curve measures scheduling quality, not luck with failures).
  /// Disabled by default.
  sim::FaultConfig faults;
};

/// Crash-safety knobs for Trainer::run(Curriculum&, ...).  All pointers
/// are non-owning and may be null (feature off).
struct RunOptions {
  /// When set, a full training snapshot (agent + trainer + curriculum
  /// cursor + convergence window + telemetry counters) is written at the
  /// episode boundaries the manager's cadence selects, and once more
  /// when the loop ends or is stopped.
  ckpt::CheckpointManager* checkpoints = nullptr;
  /// Fed each episode's validation reward; included in checkpoints.
  ConvergenceMonitor* monitor = nullptr;
  /// Polled at every episode boundary; when it reads true the loop
  /// flushes a final checkpoint and returns early with the episodes run
  /// so far (wire util::InterruptGuard::flag() here for SIGINT/SIGTERM).
  const std::atomic<bool>* stop = nullptr;
  /// Called after each checkpoint write with (episodes_done, path) —
  /// the fault-injection hook the crash-resume tests kill the process
  /// from.
  std::function<void(std::size_t, const std::filesystem::path&)>
      on_checkpoint;

  // --- Self-healing (src/robust) ---

  /// When set, every episode's telemetry + the live network are checked
  /// against the monitor's invariants at the episode boundary.  A
  /// tripped invariant triggers `recovery` (below), or throws
  /// robust::DivergenceError when no recovery policy is wired.  With
  /// healthy training the guarded run is byte-identical to an unguarded
  /// one (the checks only read).
  robust::HealthMonitor* health = nullptr;
  /// Divergence response: roll back to the newest snapshot, back off
  /// the LR, perturb the episode RNG stream, retry within budget.
  /// Requires `health` and `checkpoints`; a baseline snapshot is
  /// written on entry when the checkpoint directory holds none, so the
  /// very first episodes have a rollback target.  Throws
  /// robust::DivergenceError when the policy gives up.
  robust::RecoveryPolicy* recovery = nullptr;
  /// Drill hook run right after each episode, before the health check —
  /// `dras_sim --inject-numeric-fault` and tests/robust corrupt the
  /// live state here (see robust::apply_numeric_fault).
  std::function<void(core::DrasAgent&, EpisodeResult&)> sabotage;

  // --- Data-parallel rollout (src/rollout) ---

  /// When set with batch() > 1, the loop consumes the curriculum in
  /// rounds of batch() episodes collected on clones in parallel, with
  /// one reduced update per round.  Rounds are atomic: checkpoints,
  /// health checks, sabotage and rollback all happen at round
  /// boundaries (per-slot results are checked in slot order; the first
  /// tripped invariant rolls the whole round back).  Validation runs
  /// once per round on the post-update parameters and is stamped into
  /// every slot's result.  A pool with batch() <= 1 routes through the
  /// legacy per-episode path, byte-identical to no pool at all.
  rollout::RolloutPool* rollout = nullptr;

  // --- Run manifests (src/obs) ---

  /// When set, every committed round is appended to the recorder's
  /// rounds.jsonl time series (loss, reward, epsilon, LR scale,
  /// rollbacks, round wall time).  Purely observational: recording
  /// reads results after the round commits and changes no trained
  /// parameter (see the rollout determinism contract).
  obs::RunRecorder* run = nullptr;

  // --- Failure accounting (sim/fault.h) ---

  /// When set, each committed round's fault statistics (node failures,
  /// kills, requeues, wasted node-seconds) are merged into
  /// scenario->stats, and the scenario rides in checkpoints as the
  /// "FALT" section — so crash-resume keeps cumulative waste accounting
  /// exact and a rolled-back round's failures are un-counted along with
  /// its update.  Non-owning.
  sim::FaultScenario* fault_scenario = nullptr;
};

class Trainer {
 public:
  /// `validation` may be empty when options.validate_each_episode is off.
  Trainer(core::DrasAgent& agent, int total_nodes, sim::Trace validation,
          TrainerOptions options = {});

  /// Train one episode on `jobset`, then (optionally) validate & snapshot.
  EpisodeResult run_episode(const Jobset& jobset);

  /// Run a whole curriculum in order.
  std::vector<EpisodeResult> run(std::span<const Jobset> curriculum);

  /// Crash-safe curriculum run: consumes `curriculum` from its cursor,
  /// checkpointing and honouring the stop flag per `run_options`.  To
  /// resume a killed run, restore agent/trainer/curriculum through
  /// ckpt::CheckpointManager::restore_latest() first — the cursor then
  /// starts past the completed episodes and the results vector covers
  /// only the episodes this call ran.  Determinism contract: interrupt
  /// at any episode boundary + restore + rerun produces byte-identical
  /// final parameters to an uninterrupted run (see tests/ckpt).
  std::vector<EpisodeResult> run(Curriculum& curriculum,
                                 const RunOptions& run_options);

  [[nodiscard]] std::size_t episodes_done() const noexcept {
    return episodes_done_;
  }

  /// Checkpoint hooks ("TRNR" section): the episode counter.
  void save_state(util::BinaryWriter& out) const;
  void load_state(util::BinaryReader& in);

  /// Greedy evaluation on the validation trace (no learning, no
  /// exploration).  The agent's training flag is restored afterwards.
  /// Records its wall time and emits a "validate" event on the tracer.
  [[nodiscard]] EpisodeResult validate();

  /// Greedy evaluation on several traces, up to
  /// options.validation_jobs at a time.  Results are indexed like
  /// `traces` regardless of the degree of parallelism, and each parallel
  /// validation runs a private clone of the agent, so the output matches
  /// the serial path exactly.
  [[nodiscard]] std::vector<EpisodeResult> validate_many(
      std::span<const sim::Trace> traces);

 private:
  /// Shared body of validate()/validate_many(): greedy evaluation of
  /// `agent` on `trace` with wall-time + tracer + metrics accounting.
  [[nodiscard]] EpisodeResult validate_on(const sim::Trace& trace,
                                          core::DrasAgent& agent) const;

  core::DrasAgent& agent_;
  int total_nodes_;
  sim::Trace validation_;
  TrainerOptions options_;
  std::size_t episodes_done_ = 0;
};

}  // namespace dras::train
