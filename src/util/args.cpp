#include "util/args.h"

#include <algorithm>
#include <stdexcept>

#include "util/format.h"

namespace dras::util {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& known_flags) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    std::string key = token.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_value = true;
    }
    if (key.empty())
      throw std::invalid_argument("empty option name '--'");
    const bool is_flag =
        std::find(known_flags.begin(), known_flags.end(), key) !=
        known_flags.end();
    if (is_flag) {
      if (has_value)
        throw std::invalid_argument(
            format("flag --{} does not take a value", key));
      flags_[key] = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument(
            format("option --{} expects a value", key));
      value = argv[++i];
    }
    values_[key] = std::move(value);
  }
}

bool Args::has(const std::string& key) const {
  touched_[key] = true;
  return values_.contains(key);
}

bool Args::flag(const std::string& key) const {
  touched_[key] = true;
  const auto it = flags_.find(key);
  return it != flags_.end() && it->second;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long Args::get_int(const std::string& key, long long fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        format("option --{} expects an integer, got '{}'", key, it->second));
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(
        format("option --{} expects a number, got '{}'", key, it->second));
  }
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> unread;
  for (const auto& [key, value] : values_)
    if (!touched_.contains(key)) unread.push_back(key);
  for (const auto& [key, set] : flags_)
    if (set && !touched_.contains(key)) unread.push_back(key);
  return unread;
}

}  // namespace dras::util
