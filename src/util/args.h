// Minimal command-line argument parser for the dras tools.
//
// Supports "--key value", "--key=value" and boolean "--flag" options plus
// positional arguments.  Typed getters with defaults; unknown-option and
// type errors surface as std::invalid_argument with a helpful message.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dras::util {

class Args {
 public:
  /// Parse argv.  `known_flags` lists boolean options (present/absent);
  /// everything else beginning with "--" expects a value.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& known_flags = {});

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool flag(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Keys that were provided but never read — for catching typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace dras::util
