#include "util/binio.h"

#include <array>

#include "util/format.h"

namespace dras::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

SerializationError BinaryReader::error(const std::string& what) const {
  return SerializationError(
      format("binary input at byte {}: {}", offset_, what));
}

void BinaryReader::raw(void* out, std::size_t n) {
  if (n > remaining())
    throw error(format("need {} bytes, {} left (truncated input)", n,
                       remaining()));
  if (n == 0) return;  // empty vectors hand us a null data() pointer
  std::memcpy(out, data_.data() + offset_, n);
  offset_ += n;
}

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  if (n > remaining())
    throw error(format("string of {} bytes exceeds the {} remaining", n,
                       remaining()));
  std::string s(data_.substr(offset_, n));
  offset_ += n;
  return s;
}

// Divide instead of multiply: `n * sizeof(T)` could wrap for a corrupt
// length prefix and sneak past the bound into a giant allocation.
std::vector<float> BinaryReader::f32_vector() {
  const std::uint64_t n = u64();
  if (n > remaining() / sizeof(float))
    throw error(format("float vector of {} entries exceeds input", n));
  std::vector<float> v(n);
  raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<double> BinaryReader::f64_vector() {
  const std::uint64_t n = u64();
  if (n > remaining() / sizeof(double))
    throw error(format("double vector of {} entries exceeds input", n));
  std::vector<double> v(n);
  raw(v.data(), n * sizeof(double));
  return v;
}

std::vector<std::uint64_t> BinaryReader::u64_vector() {
  const std::uint64_t n = u64();
  if (n > remaining() / sizeof(std::uint64_t))
    throw error(format("u64 vector of {} entries exceeds input", n));
  std::vector<std::uint64_t> v(n);
  raw(v.data(), n * sizeof(std::uint64_t));
  return v;
}

void BinaryReader::f32_into(std::span<float> out) {
  const std::uint64_t n = u64();
  if (n != out.size())
    throw error(format("float vector length mismatch: stored {}, expected {}",
                       n, out.size()));
  raw(out.data(), n * sizeof(float));
}

std::uint32_t BinaryReader::section(std::string_view tag4,
                                    std::uint32_t max_version) {
  char tag[4];
  raw(tag, sizeof(tag));
  if (std::string_view(tag, 4) != tag4)
    throw error(format("expected section '{}', found '{}'", tag4,
                       std::string_view(tag, 4)));
  const std::uint32_t version = u32();
  if (version == 0 || version > max_version)
    throw error(format("section '{}' has unsupported version {} (max {})",
                       tag4, version, max_version));
  return version;
}

void BinaryReader::expect_exhausted() const {
  if (!exhausted())
    throw error(format("{} trailing bytes after the last field", remaining()));
}

}  // namespace dras::util
