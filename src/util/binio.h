// Bounds-checked little-endian binary (de)serialisation primitives.
//
// BinaryWriter appends typed values to an in-memory buffer; BinaryReader
// consumes the same layout and throws SerializationError the moment a
// read would run past the end of the input — truncated or corrupted
// payloads surface as structured errors, never as UB.  Both sides carry
// 4-byte section tags + versions so composite formats (the src/ckpt
// checkpoint above all) can validate that the components they expect are
// present, in order, and at a version they understand.
//
// All multi-byte values are written little-endian via memcpy, so the
// encoding is identical across the platforms we build for and safe on
// any alignment.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dras::util {

/// Malformed / truncated binary input.  What `what()` carries is a
/// human-readable description including the reader's byte offset.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
/// crc32("123456789") == 0xCBF43926 — the standard check value, pinned
/// by tests so the checkpoint checksum can never silently change.
[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u64) byte string.
  void str(std::string_view s) {
    u64(s.size());
    buffer_.append(s.data(), s.size());
  }
  /// Length-prefixed (u64) float vector.
  void f32_span(std::span<const float> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
  void f64_span(std::span<const double> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }
  void u64_span(std::span<const std::uint64_t> v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint64_t));
  }

  /// 4-character section tag + u32 version header.
  void section(std::string_view tag4, std::uint32_t version) {
    if (tag4.size() != 4)
      throw SerializationError("section tag must be 4 characters");
    buffer_.append(tag4.data(), 4);
    u32(version);
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }
  [[nodiscard]] std::string take() noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  void raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty spans hand us a null data() pointer
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] float f32() {
    float v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] double f64() {
    double v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<float> f32_vector();
  [[nodiscard]] std::vector<double> f64_vector();
  [[nodiscard]] std::vector<std::uint64_t> u64_vector();
  /// Read a float vector into `out`; its length must match the stored one.
  void f32_into(std::span<float> out);

  /// Consume a section header; throws when the tag differs or the stored
  /// version exceeds `max_version`.  Returns the stored version.
  std::uint32_t section(std::string_view tag4, std::uint32_t max_version);

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }
  /// Throws unless every input byte was consumed (trailing garbage check).
  void expect_exhausted() const;

 private:
  void raw(void* out, std::size_t n);
  [[nodiscard]] SerializationError error(const std::string& what) const;

  std::string_view data_;
  std::size_t offset_ = 0;
};

}  // namespace dras::util
