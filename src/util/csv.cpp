#include "util/csv.h"

#include <cassert>
#include <cmath>
#include <ostream>

namespace dras::util {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  assert(!header_written_ && !in_row_);
  header_written_ = true;
  bool first = true;
  for (const auto& c : columns) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::row() {
  if (in_row_) end_row();
  in_row_ = true;
  row_has_field_ = false;
  return *this;
}

CsvWriter& CsvWriter::field(std::string_view value) {
  assert(in_row_);
  if (row_has_field_) out_ << ',';
  out_ << escape(value);
  row_has_field_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value) {
  assert(in_row_);
  if (row_has_field_) out_ << ',';
  if (std::isnan(value)) {
    out_ << "nan";
  } else {
    out_ << value;
  }
  row_has_field_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(long long value) {
  assert(in_row_);
  if (row_has_field_) out_ << ',';
  out_ << value;
  row_has_field_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(unsigned long long value) {
  assert(in_row_);
  if (row_has_field_) out_ << ',';
  out_ << value;
  row_has_field_ = true;
  return *this;
}

void CsvWriter::end_row() {
  if (!in_row_) return;
  out_ << '\n';
  in_row_ = false;
}

std::string CsvWriter::escape(std::string_view value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(value);
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted.push_back('"');
  for (const char c : value) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace dras::util
