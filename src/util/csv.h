// Minimal CSV emission used by the bench harnesses.
//
// Every figure/table bench prints machine-readable CSV rows (plus a short
// human-readable header) so downstream plotting never has to parse ad-hoc
// formats.  Values are quoted only when needed.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dras::util {

/// Streaming CSV writer.  Not thread-safe; one writer per stream.
class CsvWriter {
 public:
  /// Writes to `out`; the caller keeps ownership of the stream.
  explicit CsvWriter(std::ostream& out);

  /// Emit the header row.  Must be called at most once, before any row.
  void header(const std::vector<std::string>& columns);

  /// Begin a new row.  Fields are appended with `field()` / `operator<<`.
  CsvWriter& row();
  CsvWriter& field(std::string_view value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  CsvWriter& field(unsigned long long value);
  CsvWriter& field(int value) { return field(static_cast<long long>(value)); }
  CsvWriter& field(std::size_t value) {
    return field(static_cast<unsigned long long>(value));
  }

  /// Flush the current row (also done implicitly by the next `row()`).
  void end_row();

  /// Quote/escape a single CSV field per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view value);

 private:
  std::ostream& out_;
  bool in_row_ = false;
  bool row_has_field_ = false;
  bool header_written_ = false;
};

}  // namespace dras::util
