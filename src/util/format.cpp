#include "util/format.h"

#include <stdexcept>

namespace dras::util::detail {

std::string vformat(std::string_view fmt, const Field* fields,
                    std::size_t count) {
  std::ostringstream out;
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out << '{';
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos)
        throw std::invalid_argument("unterminated format field");
      std::string_view body = fmt.substr(i + 1, close - i - 1);
      std::string_view spec;
      if (const std::size_t colon = body.find(':');
          colon != std::string_view::npos) {
        spec = body.substr(colon + 1);
        body = body.substr(0, colon);
      }
      if (!body.empty())
        throw std::invalid_argument("only automatic field numbering is supported");
      if (next_arg >= count)
        throw std::invalid_argument("not enough format arguments");
      fields[next_arg].write(out, spec, fields[next_arg].value);
      ++next_arg;
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') {
        out << '}';
        ++i;
        continue;
      }
      throw std::invalid_argument("stray '}' in format string");
    } else {
      out << c;
    }
  }
  return out.str();
}

}  // namespace dras::util::detail
