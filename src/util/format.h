// Minimal std::format stand-in for toolchains without <format> (GCC 12).
//
// Supports the subset this codebase uses: positional "{}" fields in order,
// fixed-precision float specs "{:.Nf}", and "{{" / "}}" escapes.  Unknown
// specs fall back to default streaming.  Replace with std::format when the
// baseline toolchain moves to GCC 13+.
#pragma once

#include <array>
#include <cstddef>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace dras::util {

namespace detail {

template <typename T>
void write_value(std::ostream& out, std::string_view spec, const T& value) {
  if constexpr (std::is_floating_point_v<T>) {
    // Recognise ".Nf" fixed-precision specs.
    if (spec.size() >= 3 && spec.front() == '.' && spec.back() == 'f') {
      int precision = 0;
      for (std::size_t i = 1; i + 1 < spec.size(); ++i) {
        const char c = spec[i];
        if (c < '0' || c > '9') {
          precision = -1;
          break;
        }
        precision = precision * 10 + (c - '0');
      }
      if (precision >= 0) {
        const auto flags = out.flags();
        const auto old_precision = out.precision();
        out << std::fixed << std::setprecision(precision) << value;
        out.flags(flags);
        out.precision(old_precision);
        return;
      }
    }
  }
  out << value;
}

struct Field {
  void (*write)(std::ostream&, std::string_view, const void*) = nullptr;
  const void* value = nullptr;
};

template <typename T>
Field make_field(const T& value) {
  return Field{
      [](std::ostream& out, std::string_view spec, const void* p) {
        write_value(out, spec, *static_cast<const T*>(p));
      },
      &value};
}

std::string vformat(std::string_view fmt, const Field* fields,
                    std::size_t count);

}  // namespace detail

/// Format `fmt` with the given arguments (see file comment for the
/// supported subset).  Throws std::invalid_argument on malformed format
/// strings or argument-count mismatches.
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return detail::vformat(fmt, nullptr, 0);
  } else {
    const std::array<detail::Field, sizeof...(Args)> fields{
        detail::make_field(args)...};
    return detail::vformat(fmt, fields.data(), fields.size());
  }
}

}  // namespace dras::util
