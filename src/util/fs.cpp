#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/format.h"

namespace dras::util {

namespace {

[[noreturn]] void fail(const std::filesystem::path& path,
                       std::string_view action) {
  throw std::runtime_error(format("cannot {} '{}': {}", action, path.string(),
                                  std::strerror(errno)));
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best effort: some filesystems refuse to open directories for writing.
void sync_parent_dir(const std::filesystem::path& path) {
  const auto dir = path.has_parent_path() ? path.parent_path()
                                          : std::filesystem::path(".");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  const std::filesystem::path tmp =
      path.string() + format(".tmp.{}", static_cast<long>(::getpid()));

  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(tmp, "open");

  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = saved;
      fail(tmp, "write");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    errno = saved;
    fail(tmp, "fsync");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(tmp, "close");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail(path, "rename into");
  }
  sync_parent_dir(path);
}

std::string read_file(const std::filesystem::path& path,
                      std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error(
        format("cannot open '{}' for reading", path.string()));
  std::string contents;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    contents.append(chunk, static_cast<std::size_t>(in.gcount()));
    if (contents.size() > max_bytes)
      throw std::runtime_error(format("'{}' exceeds the {}-byte read limit",
                                      path.string(), max_bytes));
  }
  return contents;
}

bool is_atomic_temp_file(const std::filesystem::path& path) {
  return path.filename().string().find(".tmp.") != std::string::npos;
}

}  // namespace dras::util
