// Crash-safe filesystem helpers.
//
// atomic_write_file() implements the classic write-temp → fsync → rename
// discipline: readers of the destination path either see the previous
// complete file or the new complete file, never a truncated intermediate,
// no matter where the process dies.  Every artifact the tools emit
// (checkpoints, --metrics-out dumps, model files, bench CSV/JSON) goes
// through it; a crash can at worst leave a stray "<name>.tmp.<pid>" file
// behind, which writers ignore and a later successful write of the same
// destination cleans up.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace dras::util {

/// Atomically replace `path` with `contents`.  Parent directories are
/// created as needed.  Throws std::runtime_error (with errno context) on
/// any failure; on failure the destination is left untouched.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents);

/// Read a whole file into a string.  Throws std::runtime_error when the
/// file cannot be opened or grows past `max_bytes` (default 1 GiB, a
/// guard against mistakenly loading a device file as a checkpoint).
[[nodiscard]] std::string read_file(const std::filesystem::path& path,
                                    std::size_t max_bytes = 1ull << 30);

/// True when `path` looks like an in-flight temporary left behind by
/// atomic_write_file (".tmp." infix); directory scans skip these.
[[nodiscard]] bool is_atomic_temp_file(const std::filesystem::path& path);

}  // namespace dras::util
