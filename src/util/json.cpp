#include "util/json.h"

#include <cctype>
#include <charconv>
#include <stdexcept>
#include <utility>

#include "util/format.h"

namespace dras::util::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string quote(std::string_view text) {
  return '"' + escape(text) + '"';
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

namespace {
[[noreturn]] void kind_error(std::string_view wanted) {
  throw std::invalid_argument(
      util::format("JSON value is not a {}", wanted));
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return object_;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Value Value::make_null() { return {}; }

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::Number;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(std::string_view what) const {
    throw std::invalid_argument(
        util::format("JSON parse error at offset {}: {}", pos_, what));
  }

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(util::format("expected '{}'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for telemetry).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      digits();
    }
    if (!any) fail("invalid number");
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size())
      fail("invalid number");
    return Value::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace dras::util::json
