// Minimal JSON support: string escaping for writers and a small
// recursive-descent parser for readers.
//
// The obs/ tracer emits Chrome trace-event JSON and JSONL; tests (and any
// tooling that wants to round-trip those files) parse them back with
// json::parse.  This is deliberately a tiny strict subset implementation —
// UTF-8 pass-through, no comments, no trailing commas — not a general
// JSON library.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dras::util::json {

/// Escape `text` for inclusion inside a JSON string literal (quotes not
/// added).  Control characters become \uXXXX escapes.
[[nodiscard]] std::string escape(std::string_view text);

/// Quote and escape: `"..."`.
[[nodiscard]] std::string quote(std::string_view text);

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& as_array() const;
  [[nodiscard]] const std::map<std::string, Value>& as_object() const;

  /// Object lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const noexcept;
  /// `find(key) != nullptr`.
  [[nodiscard]] bool contains(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parse one complete JSON document.  Trailing whitespace is allowed;
/// anything else after the document throws.  Throws std::invalid_argument
/// with an offset-bearing message on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace dras::util::json
