#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dras::util {

namespace {

using Clock = std::chrono::steady_clock;

std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Clock::time_point process_start() noexcept {
  static const Clock::time_point start = Clock::now();
  return start;
}

LogLevel initial_level() noexcept {
  if (const char* env = std::getenv("DRAS_LOG")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::Warn;
}

std::atomic<LogLevel>& level_slot() noexcept {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  std::string lowered;
  lowered.reserve(name.size());
  for (const char c : name)
    lowered += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  if (lowered == "debug") return LogLevel::Debug;
  if (lowered == "info") return LogLevel::Info;
  if (lowered == "warn" || lowered == "warning") return LogLevel::Warn;
  if (lowered == "error") return LogLevel::Error;
  if (lowered == "off" || lowered == "none") return LogLevel::Off;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept {
  level_slot().store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return level_slot().load(std::memory_order_relaxed);
}

double log_uptime_seconds() noexcept {
  return std::chrono::duration<double>(Clock::now() - process_start())
      .count();
}

std::string format_log_line(LogLevel level, std::string_view message) {
  std::string stamp = format("{:.3f}", log_uptime_seconds());
  if (stamp.size() < 8) stamp.insert(0, 8 - stamp.size(), ' ');
  return format("[{}] [{}] {}", stamp, level_name(level), message);
}

void log_message(LogLevel level, std::string_view message) {
  const std::string line = format_log_line(level, message);
  const std::scoped_lock lock(g_mutex);
  std::cerr << line << '\n';
}

}  // namespace dras::util
