// Lightweight leveled logging.
//
// The library itself is silent by default (level = Warn); trainers and
// bench harnesses raise the level for progress reporting.  Messages below
// the active level are formatted lazily (never at all).
#pragma once

#include <string_view>

#include "util/format.h"

namespace dras::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line to stderr as "[LEVEL] message".  Thread-safe.
void log_message(LogLevel level, std::string_view message);

template <typename... Args>
void log_debug(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, format(fmt, args...));
}

template <typename... Args>
void log_info(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, format(fmt, args...));
}

template <typename... Args>
void log_warn(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, format(fmt, args...));
}

template <typename... Args>
void log_error(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, format(fmt, args...));
}

}  // namespace dras::util
