// Lightweight leveled logging.
//
// The library itself is silent by default (level = Warn); trainers and
// bench harnesses raise the level for progress reporting, and the
// `DRAS_LOG` environment variable (debug|info|warn|error|off) overrides
// the initial level without code changes.  Messages below the active
// level are formatted lazily (never at all).  Every emitted line is
// prefixed with a monotonic seconds-since-process-start timestamp:
//
//   [   12.345] [INFO] episode 3 ...
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/format.h"

namespace dras::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parse a level name ("debug", "INFO", "off", ...); nullopt on unknown.
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view name) noexcept;

/// Process-wide minimum level; messages below it are dropped.  The
/// initial value honours DRAS_LOG and defaults to Warn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Monotonic seconds since the logging subsystem was first touched.
[[nodiscard]] double log_uptime_seconds() noexcept;

/// The exact line log_message emits (timestamp + level + message), for
/// sinks and tests: "[   12.345] [INFO] message".
[[nodiscard]] std::string format_log_line(LogLevel level,
                                          std::string_view message);

/// Emit one line to stderr (see format_log_line).  Thread-safe.
void log_message(LogLevel level, std::string_view message);

template <typename... Args>
void log_debug(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Debug)
    log_message(LogLevel::Debug, format(fmt, args...));
}

template <typename... Args>
void log_info(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Info)
    log_message(LogLevel::Info, format(fmt, args...));
}

template <typename... Args>
void log_warn(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Warn)
    log_message(LogLevel::Warn, format(fmt, args...));
}

template <typename... Args>
void log_error(std::string_view fmt, const Args&... args) {
  if (log_level() <= LogLevel::Error)
    log_message(LogLevel::Error, format(fmt, args...));
}

}  // namespace dras::util
