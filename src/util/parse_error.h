// Structured parse failure carrying file:line context.
//
// Thrown by the input parsers (SWF above all) in strict mode so a bad
// job record points at the exact offending line instead of surfacing as
// a silent skip, a garbage job, or UB downstream.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/format.h"

namespace dras::util {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string file, std::size_t line, const std::string& message)
      : std::runtime_error(format("{}:{}: {}", file, line, message)),
        file_(std::move(file)),
        line_(line) {}

  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::string file_;
  std::size_t line_;
};

}  // namespace dras::util
