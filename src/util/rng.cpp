#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dras::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view stream) noexcept {
  // FNV-1a over the label, folded into the master seed via splitmix.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = master ^ h;
  return splitmix64(s);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa construction: uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling (with rejection).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  // Box-Muller; draw u1 away from zero to keep the log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::log_uniform(double lo, double hi) noexcept {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const double* weights, std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i];
  if (total <= 0.0) return n;
  double target = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;  // numerical tail
}

Rng Rng::spawn(std::string_view stream) noexcept {
  return Rng(derive_seed(next(), stream));
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0)
    throw std::invalid_argument("all-zero xoshiro256** state");
  state_ = state;
}

}  // namespace dras::util
