// Deterministic random number generation for dras.
//
// Every stochastic component in the library (workload generation, network
// initialisation, epsilon-greedy exploration, stochastic policy draws)
// pulls randomness from a named, explicitly seeded Rng instance, never from
// global state.  This makes every simulation, training run, test and bench
// bit-reproducible for a given seed.
//
// The generator is xoshiro256**, seeded through splitmix64 so that small /
// correlated user seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dras::util {

/// Counter-based seed mixer.  Used to derive independent child seeds from a
/// master seed plus a stream label, so sub-systems never share a stream.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive a child seed for a named stream (e.g. "workload", "policy-init").
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::string_view stream) noexcept;

/// xoshiro256** pseudo random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the built-in helpers below are preferred because they
/// are stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (deterministic; no cached spare).
  [[nodiscard]] double normal() noexcept;
  /// Normal with given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Exponential with given rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;
  /// Log-uniform in [lo, hi]; both bounds must be > 0.
  [[nodiscard]] double log_uniform(double lo, double hi) noexcept;
  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Sample an index from an unnormalised non-negative weight vector.
  /// Returns n if all weights are zero (caller decides the fallback).
  [[nodiscard]] std::size_t weighted_index(const double* weights,
                                           std::size_t n) noexcept;

  /// Spawn an independent child generator for a named sub-stream.
  [[nodiscard]] Rng spawn(std::string_view stream) noexcept;

  /// The full generator state, for checkpoint save/restore.  Restoring a
  /// saved state resumes the stream at exactly the saved position.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }
  /// Restore a previously captured state.  Throws std::invalid_argument
  /// on the all-zero state (a xoshiro fixed point that would make the
  /// generator emit zeros forever — only a corrupted checkpoint produces
  /// it).
  void set_state(const std::array<std::uint64_t, 4>& state);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace dras::util
