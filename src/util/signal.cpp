#include "util/signal.h"

#include <csignal>
#include <stdexcept>

namespace dras::util {

namespace {

std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_guard_live{false};

struct sigaction g_previous_int;
struct sigaction g_previous_term;

void handle_signal(int signo) {
  // Async-signal-safe: lock-free atomic stores only.
  g_interrupted.store(true, std::memory_order_relaxed);
  g_signal.store(signo, std::memory_order_relaxed);
  // Second signal → default disposition, so another ^C terminates.
  std::signal(signo, SIG_DFL);
}

}  // namespace

InterruptGuard::InterruptGuard() {
  if (g_guard_live.exchange(true))
    throw std::logic_error("only one InterruptGuard may be active");
  g_interrupted.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
  struct sigaction action = {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking I/O promptly
  ::sigaction(SIGINT, &action, &g_previous_int);
  ::sigaction(SIGTERM, &action, &g_previous_term);
}

InterruptGuard::~InterruptGuard() {
  ::sigaction(SIGINT, &g_previous_int, nullptr);
  ::sigaction(SIGTERM, &g_previous_term, nullptr);
  g_guard_live.store(false);
}

bool InterruptGuard::interrupted() noexcept {
  return g_interrupted.load(std::memory_order_relaxed);
}

const std::atomic<bool>& InterruptGuard::flag() noexcept {
  return g_interrupted;
}

void InterruptGuard::reset() noexcept {
  g_interrupted.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

int InterruptGuard::signal_received() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

}  // namespace dras::util
