#include "util/signal.h"

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace dras::util {

namespace {

std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};
std::atomic<bool> g_guard_live{false};

struct sigaction g_previous_int;
struct sigaction g_previous_term;

// Self-pipe: the handler writes one byte, the watcher thread (started by
// the guard constructor) wakes up and runs the flush hooks in ordinary
// thread context.  -1 when no guard is live or pipe() failed.
std::atomic<int> g_pipe_write{-1};
int g_pipe_read = -1;
std::thread g_watcher;

std::mutex g_hooks_mutex;
std::vector<std::function<void()>> g_hooks;

/// Move the registered hooks out (so each runs at most once) and run
/// them.  Safe to race between the watcher and a clean-shutdown caller:
/// whoever takes the mutex first consumes them.
void consume_hooks() noexcept {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(g_hooks_mutex);
    hooks.swap(g_hooks);
  }
  for (auto& hook : hooks) {
    try {
      hook();
    } catch (...) {
      // A failing flush must not take down the interrupt path.
    }
  }
}

void handle_signal(int signo) {
  // Async-signal-safe: lock-free atomic stores and one write().
  g_interrupted.store(true, std::memory_order_relaxed);
  g_signal.store(signo, std::memory_order_relaxed);
  const int fd = g_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
  // Second signal → default disposition, so another ^C terminates.
  std::signal(signo, SIG_DFL);
}

void watch_pipe(int read_fd) {
  for (;;) {
    char byte = 0;
    const ssize_t n = ::read(read_fd, &byte, 1);
    if (n == 1) {
      consume_hooks();
      continue;  // drain further wakeups until the write end closes
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // EOF (guard destroyed) or unrecoverable error
  }
}

}  // namespace

InterruptGuard::InterruptGuard() {
  if (g_guard_live.exchange(true))
    throw std::logic_error("only one InterruptGuard may be active");
  g_interrupted.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    g_pipe_read = fds[0];
    g_pipe_write.store(fds[1], std::memory_order_relaxed);
    g_watcher = std::thread(watch_pipe, g_pipe_read);
  }
  // pipe() failure is survivable: the flag still works, hooks just only
  // run through run_flush_hooks().
  struct sigaction action = {};
  action.sa_handler = handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking I/O promptly
  ::sigaction(SIGINT, &action, &g_previous_int);
  ::sigaction(SIGTERM, &action, &g_previous_term);
}

InterruptGuard::~InterruptGuard() {
  ::sigaction(SIGINT, &g_previous_int, nullptr);
  ::sigaction(SIGTERM, &g_previous_term, nullptr);
  const int write_fd = g_pipe_write.exchange(-1, std::memory_order_relaxed);
  if (write_fd >= 0) ::close(write_fd);  // EOF wakes the watcher
  if (g_watcher.joinable()) g_watcher.join();
  if (g_pipe_read >= 0) {
    ::close(g_pipe_read);
    g_pipe_read = -1;
  }
  clear_flush_hooks();
  g_guard_live.store(false);
}

bool InterruptGuard::interrupted() noexcept {
  return g_interrupted.load(std::memory_order_relaxed);
}

const std::atomic<bool>& InterruptGuard::flag() noexcept {
  return g_interrupted;
}

void InterruptGuard::reset() noexcept {
  g_interrupted.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

int InterruptGuard::signal_received() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

void InterruptGuard::add_flush_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.push_back(std::move(hook));
}

void InterruptGuard::run_flush_hooks() noexcept { consume_hooks(); }

void InterruptGuard::clear_flush_hooks() noexcept {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.clear();
}

}  // namespace dras::util
