// Cooperative SIGINT/SIGTERM handling for long-running tools.
//
// Training a full curriculum takes hours; ^C or a scheduler-issued
// SIGTERM must not discard the run.  InterruptGuard installs async-
// signal-safe handlers that only set a lock-free flag; the training loop
// polls the flag at episode boundaries, flushes a final checkpoint and
// returns cleanly.  A second signal while the first is still being
// handled restores the default disposition, so an impatient double-^C
// still kills the process immediately.
#pragma once

#include <atomic>

namespace dras::util {

class InterruptGuard {
 public:
  /// Installs handlers for SIGINT and SIGTERM.  Only one guard may be
  /// live at a time (enforced; throws std::logic_error otherwise).
  InterruptGuard();
  /// Restores the previous handlers.  The flag keeps its value.
  ~InterruptGuard();

  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

  /// Has a SIGINT/SIGTERM arrived since construction (or the last reset)?
  [[nodiscard]] static bool interrupted() noexcept;
  /// The flag itself, for APIs that poll a stop token
  /// (train::RunOptions::stop).
  [[nodiscard]] static const std::atomic<bool>& flag() noexcept;
  /// Clear the flag (tests; re-arming after a handled interruption).
  static void reset() noexcept;

  /// The signal number received, 0 when none.  For exit-code selection
  /// (128 + signal, the shell convention).
  [[nodiscard]] static int signal_received() noexcept;
};

}  // namespace dras::util
