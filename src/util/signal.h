// Cooperative SIGINT/SIGTERM handling for long-running tools.
//
// Training a full curriculum takes hours; ^C or a scheduler-issued
// SIGTERM must not discard the run.  InterruptGuard installs async-
// signal-safe handlers that only set a lock-free flag; the training loop
// polls the flag at episode boundaries, flushes a final checkpoint and
// returns cleanly.  A second signal while the first is still being
// handled restores the default disposition, so an impatient double-^C
// still kills the process immediately.
#pragma once

#include <atomic>
#include <functional>

namespace dras::util {

class InterruptGuard {
 public:
  /// Installs handlers for SIGINT and SIGTERM.  Only one guard may be
  /// live at a time (enforced; throws std::logic_error otherwise).
  InterruptGuard();
  /// Restores the previous handlers and drops all flush hooks.  The
  /// flag keeps its value.
  ~InterruptGuard();

  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

  /// Has a SIGINT/SIGTERM arrived since construction (or the last reset)?
  [[nodiscard]] static bool interrupted() noexcept;
  /// The flag itself, for APIs that poll a stop token
  /// (train::RunOptions::stop).
  [[nodiscard]] static const std::atomic<bool>& flag() noexcept;
  /// Clear the flag (tests; re-arming after a handled interruption).
  static void reset() noexcept;

  /// The signal number received, 0 when none.  For exit-code selection
  /// (128 + signal, the shell convention).
  [[nodiscard]] static int signal_received() noexcept;

  // --- Telemetry flush hooks (src/obs integration) ---
  //
  // A signal handler may only touch async-signal-safe state, but an
  // interrupted run should still keep its partial telemetry (trace
  // buffer, run manifest, metric dumps).  The guard therefore uses the
  // classic self-pipe: the handler write()s one byte, a watcher thread
  // blocks on the read end and runs the registered hooks in ordinary
  // thread context.  Hooks must be thread-safe against the main loop
  // (EventTracer::flush / RunRecorder::flush are) and tolerate running
  // while training continues — the cooperative loop still exits through
  // its normal checkpoint-and-return path afterwards.

  /// Register a hook to run (once) after the first SIGINT/SIGTERM.
  /// Hooks run on the watcher thread in registration order.  They are
  /// cleared when the live guard is destroyed.
  static void add_flush_hook(std::function<void()> hook);
  /// Run all registered hooks now, on the calling thread.  For clean
  /// shutdown paths and tests; hooks already consumed by a signal are
  /// not run twice.
  static void run_flush_hooks() noexcept;
  /// Drop all hooks (tests).
  static void clear_flush_hooks() noexcept;
};

}  // namespace dras::util
