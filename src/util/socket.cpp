#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dras::util {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Poll `fd` for `events` until `deadline`.  Returns true when ready,
/// false when the deadline expired.  EINTR retries with the remaining
/// budget.
bool wait_fd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() < 0) remaining = std::chrono::milliseconds(0);
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

struct sockaddr_un make_unix_addr(const std::string& path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path invalid or too long (" +
                      std::to_string(path.size()) + " bytes, max " +
                      std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

struct sockaddr_in make_tcp_addr(const std::string& host, std::uint16_t port) {
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost" || host.empty())
                                   ? std::string("127.0.0.1")
                                   : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("cannot parse IPv4 host: " + host);
  }
  return addr;
}

int open_socket(SocketAddress::Kind kind) {
  int domain = kind == SocketAddress::Kind::Unix ? AF_UNIX : AF_INET;
  int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) throw_errno("socket");
  return fd;
}

}  // namespace

SocketAddress SocketAddress::unix_path(std::string path) {
  SocketAddress address;
  address.kind = Kind::Unix;
  address.path = std::move(path);
  return address;
}

SocketAddress SocketAddress::tcp(std::string host, std::uint16_t port) {
  SocketAddress address;
  address.kind = Kind::Tcp;
  address.host = std::move(host);
  address.port = port;
  return address;
}

SocketAddress SocketAddress::parse(std::string_view spec) {
  if (spec.rfind("unix:", 0) == 0) {
    return unix_path(std::string(spec.substr(5)));
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon + 1 >= rest.size()) {
      throw std::invalid_argument("tcp address needs HOST:PORT: " +
                                  std::string(spec));
    }
    const std::string port_text(rest.substr(colon + 1));
    unsigned long port = 0;
    try {
      port = std::stoul(port_text);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad tcp port: " + std::string(spec));
    }
    if (port > 65535) {
      throw std::invalid_argument("tcp port out of range: " + std::string(spec));
    }
    return tcp(std::string(rest.substr(0, colon)),
               static_cast<std::uint16_t>(port));
  }
  if (spec.empty()) {
    throw std::invalid_argument("empty socket address");
  }
  // Bare path: treat as a unix socket (covers "serve.sock", "/tmp/x.sock").
  return unix_path(std::string(spec));
}

std::string SocketAddress::describe() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::Socket(int fd) : fd_(fd) {
  if (fd_ >= 0) set_nonblocking(fd_);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(std::string_view data, Clock::time_point deadline) {
  if (fd_ < 0) throw SocketError("send on closed socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_fd(fd_, POLLOUT, deadline)) {
        throw SocketTimeout("send timed out after " +
                            std::to_string(sent) + "/" +
                            std::to_string(data.size()) + " bytes");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw SocketClosed("peer closed connection during send");
    }
    throw_errno("send");
  }
}

std::size_t Socket::recv_some(char* buffer, std::size_t capacity,
                              Clock::time_point deadline) {
  if (fd_ < 0) throw SocketError("recv on closed socket");
  for (;;) {
    ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_fd(fd_, POLLIN, deadline)) {
        throw SocketTimeout("recv timed out");
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      throw SocketClosed("connection reset during recv");
    }
    throw_errno("recv");
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), address_(std::move(other.address_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    other.fd_ = -1;
  }
  return *this;
}

Listener Listener::bind_and_listen(const SocketAddress& address, int backlog) {
  Listener listener;
  listener.fd_ = open_socket(address.kind);
  listener.address_ = address;
  try {
    if (address.kind == SocketAddress::Kind::Unix) {
      // A stale socket file from a crashed server would fail the bind.
      ::unlink(address.path.c_str());
      auto addr = make_unix_addr(address.path);
      if (::bind(listener.fd_, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        throw_errno("bind " + address.describe());
      }
    } else {
      int one = 1;
      ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      auto addr = make_tcp_addr(address.host, address.port);
      if (::bind(listener.fd_, reinterpret_cast<struct sockaddr*>(&addr),
                 sizeof(addr)) < 0) {
        throw_errno("bind " + address.describe());
      }
    }
    if (::listen(listener.fd_, backlog) < 0) {
      throw_errno("listen " + address.describe());
    }
  } catch (...) {
    listener.close();
    throw;
  }
  return listener;
}

std::optional<Socket> Listener::accept(std::chrono::milliseconds wait) {
  if (fd_ < 0) throw SocketClosed("accept on closed listener");
  if (!wait_fd(fd_, POLLIN, Clock::now() + wait)) return std::nullopt;
  int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return std::nullopt;
    }
    throw_errno("accept");
  }
  Socket socket(fd);
  if (address_.kind == SocketAddress::Kind::Tcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return socket;
}

SocketAddress Listener::local_address() const {
  if (address_.kind == SocketAddress::Kind::Unix || fd_ < 0) return address_;
  struct sockaddr_in addr {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return address_;
  }
  SocketAddress resolved = address_;
  resolved.port = ntohs(addr.sin_port);
  return resolved;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (address_.kind == SocketAddress::Kind::Unix && !address_.path.empty()) {
      ::unlink(address_.path.c_str());
    }
  }
}

Socket connect_socket(const SocketAddress& address,
                      std::chrono::milliseconds timeout) {
  Socket socket(open_socket(address.kind));
  const auto deadline = Clock::now() + timeout;
  int rc = 0;
  if (address.kind == SocketAddress::Kind::Unix) {
    auto addr = make_unix_addr(address.path);
    rc = ::connect(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    auto addr = make_tcp_addr(address.host, address.port);
    rc = ::connect(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throw_errno("connect " + address.describe());
    }
    if (!wait_fd(socket.fd(), POLLOUT, deadline)) {
      throw SocketTimeout("connect timed out: " + address.describe());
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      throw SocketError("connect " + address.describe() + ": " +
                        std::strerror(err));
    }
  }
  if (address.kind == SocketAddress::Kind::Tcp) {
    int one = 1;
    ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return socket;
}

}  // namespace dras::util
