// Deadline-driven POSIX socket primitives for the serving transport.
//
// Everything here is poll()-based and non-blocking underneath: every
// receive and send takes an explicit deadline, so a wedged peer surfaces
// as a SocketTimeout at a time the caller chose instead of a thread
// parked forever inside the kernel.  Unix-domain sockets and localhost
// TCP sit behind the same SocketAddress interface — the serving stack is
// written once and tested against both.
//
// Error taxonomy (all derive from SocketError):
//   SocketTimeout — the deadline expired before the operation completed.
//   SocketClosed  — the peer closed the connection (orderly EOF on read,
//                   EPIPE/ECONNRESET on write).
// Plain SocketError carries errno context for everything else.  None of
// these are ever fatal to the process; the transport layer above maps
// them to retries, failover, or clean per-request failures.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dras::util {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deadline expired before the operation completed.
class SocketTimeout : public SocketError {
 public:
  using SocketError::SocketError;
};

/// Orderly peer close (EOF) or a write onto a reset connection.
class SocketClosed : public SocketError {
 public:
  using SocketError::SocketError;
};

/// A Unix-domain path or a TCP host:port, behind one interface.
struct SocketAddress {
  enum class Kind { Unix, Tcp };

  Kind kind = Kind::Unix;
  std::string path;            ///< Unix: filesystem path of the socket.
  std::string host;            ///< TCP: dotted quad or "localhost".
  std::uint16_t port = 0;      ///< TCP: port; 0 = ephemeral (bind only).

  [[nodiscard]] static SocketAddress unix_path(std::string path);
  [[nodiscard]] static SocketAddress tcp(std::string host, std::uint16_t port);

  /// Parse "unix:PATH", "tcp:HOST:PORT", or a bare filesystem path
  /// (treated as unix).  Throws std::invalid_argument on anything else.
  [[nodiscard]] static SocketAddress parse(std::string_view spec);

  /// Human-readable form, re-parseable by parse().
  [[nodiscard]] std::string describe() const;
};

/// RAII wrapper over one connected (or accepted) socket fd.  Move-only;
/// the destructor closes.  All I/O is deadline-bounded.
class Socket {
 public:
  Socket() = default;
  /// Adopt an fd (sets non-blocking).
  explicit Socket(int fd);
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;
  /// shutdown(SHUT_RDWR): unblocks a peer (or another thread) waiting in
  /// poll on this fd without racing the close of the descriptor itself.
  void shutdown() noexcept;

  /// Send all of `data` before `deadline`.  Throws SocketTimeout when
  /// the deadline passes first, SocketClosed when the peer is gone.
  void send_all(std::string_view data,
                std::chrono::steady_clock::time_point deadline);

  /// Receive up to `capacity` bytes into `buffer`.  Returns 0 on orderly
  /// EOF, otherwise the number of bytes read (>= 1).  Throws
  /// SocketTimeout when nothing arrived before `deadline`.
  [[nodiscard]] std::size_t recv_some(
      char* buffer, std::size_t capacity,
      std::chrono::steady_clock::time_point deadline);

 private:
  int fd_ = -1;
};

/// A bound, listening socket.  For TCP with port 0 the kernel-assigned
/// port is recoverable through local_address().
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen.  Unix: an existing socket file at the path is
  /// unlinked first (stale leftover from a crashed server); the file is
  /// unlinked again on close.  Throws SocketError on any failure.
  [[nodiscard]] static Listener bind_and_listen(const SocketAddress& address,
                                                int backlog = 16);

  /// Wait up to `wait` for one connection.  nullopt on timeout — the
  /// accept loop's stop-flag poll tick.  Throws SocketError on failure,
  /// SocketClosed once close() was called.
  [[nodiscard]] std::optional<Socket> accept(std::chrono::milliseconds wait);

  /// The bound address; for TCP this resolves an ephemeral port to the
  /// real one.
  [[nodiscard]] SocketAddress local_address() const;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  SocketAddress address_;
};

/// Connect to `address` within `timeout` (non-blocking connect + poll).
/// Throws SocketTimeout / SocketError (e.g. connection refused).
[[nodiscard]] Socket connect_socket(const SocketAddress& address,
                                    std::chrono::milliseconds timeout);

}  // namespace dras::util
