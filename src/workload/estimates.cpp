#include "workload/estimates.h"

#include <algorithm>
#include <array>

#include "util/rng.h"

namespace dras::workload {

std::string_view to_string(EstimateModel model) noexcept {
  switch (model) {
    case EstimateModel::Exact: return "exact";
    case EstimateModel::Factor: return "factor";
    case EstimateModel::Rounded: return "rounded";
    case EstimateModel::MaxedOut: return "maxed-out";
  }
  return "?";
}

namespace {
constexpr std::array<double, 10> kRoundWalltimes = {
    900.0,    1800.0,   3600.0,    7200.0,    14400.0,
    28800.0,  43200.0,  86400.0,   172800.0,  604800.0};
}  // namespace

std::span<const double> round_walltimes() noexcept {
  return kRoundWalltimes;
}

sim::Trace apply_estimates(const sim::Trace& trace,
                           const EstimateOptions& options) {
  util::Rng rng(util::derive_seed(options.seed, "estimates"));
  sim::Trace rewritten = trace;
  for (sim::Job& job : rewritten) {
    double estimate = job.runtime_actual;
    switch (options.model) {
      case EstimateModel::Exact:
        break;
      case EstimateModel::Factor:
        estimate = job.runtime_actual *
                   rng.uniform(1.0, std::max(1.0, options.max_factor));
        break;
      case EstimateModel::Rounded: {
        estimate = kRoundWalltimes.back();
        for (const double wall : kRoundWalltimes) {
          if (wall >= job.runtime_actual) {
            estimate = wall;
            break;
          }
        }
        break;
      }
      case EstimateModel::MaxedOut:
        estimate = options.walltime_limit;
        break;
    }
    estimate = std::min(estimate, options.walltime_limit);
    // An estimate is a kill bound: never let the cap push it below a
    // second of runtime (degenerate inputs aside, actual <= limit).
    job.runtime_estimate = std::max(estimate, 1.0);
  }
  return rewritten;
}

double mean_overestimate(const sim::Trace& trace) noexcept {
  if (trace.empty()) return 0.0;
  double sum = 0.0;
  for (const sim::Job& job : trace)
    sum += job.runtime_estimate / std::max(job.runtime_actual, 1.0);
  return sum / static_cast<double>(trace.size());
}

}  // namespace dras::workload
