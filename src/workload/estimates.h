// User runtime-estimate behaviour models.
//
// Everything in EASY-style scheduling — reservations, backfill legality,
// kill-by-walltime — keys off the *user-supplied* runtime estimate, and
// real users are systematically imprecise (the DRAS authors study this in
// their CLUSTER'17 paper on runtime-estimate accuracy).  This module
// rewrites the estimates of an existing trace under controlled behaviour
// models so their effect on scheduling can be measured
// (bench/ablation_estimate_quality):
//
//   Exact      — estimate = actual runtime (oracle users)
//   Factor     — estimate = actual × U(1, k)       (uniform pessimism)
//   Rounded    — estimate = actual rounded *up* to the next "round"
//                walltime (30 min, 1 h, 2 h, 4 h, ...): the dominant
//                real-world pattern (users request round numbers)
//   MaxedOut   — estimate = queue walltime limit (lazy users who always
//                request the maximum)
#pragma once

#include <cstdint>
#include <span>

#include "sim/job.h"

namespace dras::workload {

enum class EstimateModel {
  Exact,
  Factor,
  Rounded,
  MaxedOut,
};

[[nodiscard]] std::string_view to_string(EstimateModel model) noexcept;

struct EstimateOptions {
  EstimateModel model = EstimateModel::Factor;
  /// Factor model: estimates drawn from actual × U(1, max_factor).
  double max_factor = 3.0;
  /// Cap applied to every estimate (the queue's walltime limit).
  double walltime_limit = 86400.0;
  std::uint64_t seed = 1;
};

/// Return a copy of `trace` with runtime estimates rewritten under the
/// given behaviour model.  Actual runtimes are untouched; every estimate
/// satisfies  actual <= estimate <= walltime_limit  except under
/// MaxedOut/Rounded where the cap may truncate (the simulator then kills
/// the job at its estimate, as real schedulers do).
[[nodiscard]] sim::Trace apply_estimates(const sim::Trace& trace,
                                         const EstimateOptions& options);

/// The "round" walltime grid used by the Rounded model (seconds):
/// 15 min, 30 min, 1 h, 2 h, 4 h, 8 h, 12 h, 24 h, 48 h, 7 d.
[[nodiscard]] std::span<const double> round_walltimes() noexcept;

/// Mean overestimation factor (estimate / actual) of a trace — a quick
/// measure of how pessimistic its users are.
[[nodiscard]] double mean_overestimate(const sim::Trace& trace) noexcept;

}  // namespace dras::workload
