#include "workload/jobset.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace dras::workload {

namespace {
/// Remove dependencies whose parent job is not part of `trace`.
void drop_external_dependencies(sim::Trace& trace) {
  std::unordered_set<sim::JobId> present;
  present.reserve(trace.size());
  for (const sim::Job& job : trace) present.insert(job.id);
  for (sim::Job& job : trace) {
    std::erase_if(job.dependencies, [&](sim::JobId dep) {
      return !present.contains(dep);
    });
  }
}
}  // namespace

sim::Trace rebase(sim::Trace trace) {
  if (trace.empty()) return trace;
  const double offset =
      std::min_element(trace.begin(), trace.end(),
                       [](const sim::Job& a, const sim::Job& b) {
                         return a.submit_time < b.submit_time;
                       })
          ->submit_time;
  for (sim::Job& job : trace) job.submit_time -= offset;
  return trace;
}

std::vector<sim::Trace> split_by_duration(const sim::Trace& trace,
                                          double duration) {
  if (duration <= 0.0)
    throw std::invalid_argument("slice duration must be positive");
  if (trace.empty()) return {};

  sim::Trace sorted = trace;
  sim::normalize_trace(sorted);
  const double origin = sorted.front().submit_time;

  std::vector<sim::Trace> slices;
  for (const sim::Job& job : sorted) {
    const auto slot = static_cast<std::size_t>(
        (job.submit_time - origin) / duration);
    if (slot >= slices.size()) slices.resize(slot + 1);
    slices[slot].push_back(job);
  }
  std::erase_if(slices, [](const sim::Trace& s) { return s.empty(); });
  for (sim::Trace& slice : slices) {
    drop_external_dependencies(slice);
    slice = rebase(std::move(slice));
  }
  return slices;
}

TraceSplit split_trace(const sim::Trace& trace, double train_fraction,
                       double validation_fraction) {
  if (train_fraction <= 0.0 || validation_fraction <= 0.0 ||
      train_fraction + validation_fraction > 1.0)
    throw std::invalid_argument("invalid split fractions");

  sim::Trace sorted = trace;
  sim::normalize_trace(sorted);

  const auto n = sorted.size();
  const auto train_end = static_cast<std::size_t>(n * train_fraction);
  const auto val_end = static_cast<std::size_t>(
      n * (train_fraction + validation_fraction));

  TraceSplit split;
  split.train.assign(sorted.begin(), sorted.begin() + train_end);
  split.validation.assign(sorted.begin() + train_end,
                          sorted.begin() + val_end);
  split.test.assign(sorted.begin() + val_end, sorted.end());
  for (sim::Trace* part : {&split.train, &split.validation, &split.test}) {
    drop_external_dependencies(*part);
    *part = rebase(std::move(*part));
  }
  return split;
}

}  // namespace dras::workload
