// Jobset utilities: slicing a long trace into training episodes and
// train/validation/test splits (paper §IV-C: "we use the first 2-month
// data for training, the next month for validating model convergence, and
// the rest for testing").
#pragma once

#include <string>
#include <vector>

#include "sim/job.h"

namespace dras::workload {

/// Shift all submit times so the first job arrives at t = 0, renumbering
/// nothing else.  Episode traces start from an idle machine (§III-C).
[[nodiscard]] sim::Trace rebase(sim::Trace trace);

/// Split a trace into contiguous slices of `duration` seconds of submit
/// time (the paper's one-week real jobsets).  Each slice is rebased.
/// Dependencies crossing a slice boundary are dropped (the parent is not
/// in the slice).
[[nodiscard]] std::vector<sim::Trace> split_by_duration(
    const sim::Trace& trace, double duration);

/// Fractional three-way split by job count, preserving order; each part
/// is rebased.  Fractions must be positive and sum to <= 1.
struct TraceSplit {
  sim::Trace train;
  sim::Trace validation;
  sim::Trace test;
};
[[nodiscard]] TraceSplit split_trace(const sim::Trace& trace,
                                     double train_fraction,
                                     double validation_fraction);

}  // namespace dras::workload
