#include "workload/models.h"

#include <cmath>
#include "util/format.h"
#include <numeric>

namespace dras::workload {

namespace {

/// Office-hours diurnal shape: quiet overnight, ramp through the morning,
/// peak early afternoon (normalised to mean 1 in normalize()).
constexpr std::array<double, 24> kDiurnalShape = {
    0.45, 0.40, 0.35, 0.35, 0.40, 0.50, 0.65, 0.85, 1.10, 1.35, 1.50, 1.55,
    1.50, 1.55, 1.60, 1.55, 1.45, 1.30, 1.15, 1.00, 0.85, 0.70, 0.60, 0.50};

/// Mon..Fri busy, weekend quiet.
constexpr std::array<double, 7> kWeeklyShape = {1.15, 1.20, 1.20, 1.15,
                                                1.10, 0.65, 0.55};

template <std::size_t N>
std::array<double, N> normalize(const std::array<double, N>& weights) {
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::array<double, N> result{};
  for (std::size_t i = 0; i < N; ++i)
    result[i] = weights[i] * static_cast<double>(N) / sum;
  return result;
}

}  // namespace

double WorkloadModel::mean_size() const noexcept {
  double mean = 0.0;
  for (const auto& [size, probability] : size_mix)
    mean += size * probability;
  return mean;
}

double WorkloadModel::mean_runtime() const noexcept {
  if (max_runtime <= min_runtime) return min_runtime;
  return (max_runtime - min_runtime) / std::log(max_runtime / min_runtime);
}

double WorkloadModel::offered_load() const noexcept {
  return mean_size() * mean_runtime() /
         (mean_interarrival * static_cast<double>(system_nodes));
}

WorkloadModel WorkloadModel::with_load(double target) const {
  WorkloadModel copy = *this;
  copy.mean_interarrival = mean_size() * mean_runtime() /
                           (target * static_cast<double>(system_nodes));
  return copy;
}

WorkloadModel WorkloadModel::with_users(int users, double zipf_exponent,
                                        int projects) const {
  WorkloadModel copy = *this;
  copy.user_count = users;
  copy.user_zipf_exponent = zipf_exponent;
  copy.project_count = projects;
  return copy;
}

std::string WorkloadModel::validate() const {
  if (system_nodes <= 0) return "system_nodes must be positive";
  if (size_mix.empty()) return "size mix is empty";
  double total = 0.0;
  for (const auto& [size, probability] : size_mix) {
    if (size <= 0 || size > system_nodes)
      return util::format("size {} outside [1, {}]", size, system_nodes);
    if (probability < 0.0) return "negative size probability";
    total += probability;
  }
  if (std::abs(total - 1.0) > 1e-6)
    return util::format("size probabilities sum to {}, not 1", total);
  if (min_runtime <= 0.0 || max_runtime < min_runtime)
    return "invalid runtime bounds";
  if (mean_interarrival <= 0.0) return "invalid mean interarrival";
  if (max_overestimate_factor < 1.0) return "overestimate factor below 1";
  if (high_priority_fraction < 0.0 || high_priority_fraction > 1.0)
    return "priority fraction outside [0, 1]";
  if (user_count < 0) return "user_count must be non-negative";
  if (user_count > 0 && user_zipf_exponent < 0.0)
    return "user_zipf_exponent must be non-negative";
  if (project_count < 0) return "project_count must be non-negative";
  if (user_count == 0 && project_count > 0)
    return "project_count without user_count";
  return {};
}

WorkloadModel theta_workload() {
  WorkloadModel m;
  m.name = "theta";
  m.system_nodes = 4360;
  // Fig. 2 (left): counts concentrate in the smallest allowed sizes while
  // core-hours concentrate in the capability sizes.
  m.size_mix = {{128, 0.40}, {256, 0.22}, {512, 0.14},
                {1024, 0.12}, {2048, 0.08}, {4096, 0.04}};
  m.min_runtime = 600.0;     // 10 minutes
  m.max_runtime = 86400.0;   // 1 day (Table II)
  m.hourly_weights = normalize(kDiurnalShape);
  m.daily_weights = normalize(kWeeklyShape);
  m.high_priority_fraction = 0.10;
  m.max_overestimate_factor = 3.0;
  // 121,837 jobs over 24 months ≈ one arrival every 8.6 minutes.
  m.mean_interarrival = 517.0;
  return m;
}

WorkloadModel cori_workload() {
  WorkloadModel m;
  m.name = "cori";
  m.system_nodes = 12076;
  // Fig. 2 (right): counts dominated by 1-few-node jobs.
  m.size_mix = {{1, 0.50},   {2, 0.15},  {4, 0.11},  {8, 0.08},
                {16, 0.07},  {32, 0.05}, {64, 0.02}, {128, 0.015},
                {512, 0.005}};
  m.min_runtime = 300.0;          // 5 minutes
  m.max_runtime = 7.0 * 86400.0;  // 7 days (Table II)
  m.hourly_weights = normalize(kDiurnalShape);
  m.daily_weights = normalize(kWeeklyShape);
  m.high_priority_fraction = 0.05;
  m.max_overestimate_factor = 4.0;
  // 2,607,054 jobs over ~17 weeks ≈ one arrival every 4 seconds.
  m.mean_interarrival = 4.0;
  return m;
}

WorkloadModel theta_mini_workload() {
  WorkloadModel m = theta_workload();
  m.name = "theta-mini";
  m.system_nodes = 272;
  m.size_mix = {{8, 0.40}, {16, 0.22}, {32, 0.14},
                {64, 0.12}, {128, 0.08}, {256, 0.04}};
  // Target ≈85 % offered load on the scaled machine.
  return m.with_load(0.85);
}

WorkloadModel cori_mini_workload() {
  WorkloadModel m = cori_workload();
  m.name = "cori-mini";
  m.system_nodes = 256;
  m.size_mix = {{1, 0.50},  {2, 0.15},  {4, 0.11}, {8, 0.08},
                {16, 0.07}, {32, 0.05}, {64, 0.02}, {128, 0.015},
                {192, 0.005}};
  m.max_runtime = 2.0 * 86400.0;  // keep mini episodes short
  return m.with_load(0.85);
}

}  // namespace dras::workload
